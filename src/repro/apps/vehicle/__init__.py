"""Vehicle detection and classification (Sec. IV-A-1)."""

from repro.apps.vehicle.app import VehicleDetectionApp, StreamReport
from repro.apps.vehicle.amber import AmberAlertSearch, Sighting, Track

__all__ = ["VehicleDetectionApp", "StreamReport",
           "AmberAlertSearch", "Sighting", "Track"]
