"""AMBER-Alert vehicle search over indexed annotations (Sec. IV-A-1).

The paper motivates vehicle classification with "tracking cars that are
involved in criminal activities (e.g., tracking cars described in AMBER
Alerts)".  Once the detection pipeline has indexed per-frame annotations
(camera, time, make/model label, confidence) into the document store, an
alert becomes a query: find sightings matching the described vehicle,
order them in time, and hand investigators a cross-camera track.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class Sighting:
    """One matching detection."""

    camera_id: str
    time: float
    label: str
    score: float


@dataclass
class Track:
    """Time-ordered sightings of the alerted vehicle."""

    query: str
    sightings: List[Sighting] = field(default_factory=list)

    @property
    def cameras(self) -> List[str]:
        seen: List[str] = []
        for sighting in self.sightings:
            if sighting.camera_id not in seen:
                seen.append(sighting.camera_id)
        return seen

    @property
    def first_seen(self) -> Optional[float]:
        return self.sightings[0].time if self.sightings else None

    @property
    def last_seen(self) -> Optional[float]:
        return self.sightings[-1].time if self.sightings else None


class AmberAlertSearch:
    """Query indexed vehicle annotations for an alerted vehicle."""

    def __init__(self, collection, min_score: float = 0.3):
        if not 0.0 <= min_score <= 1.0:
            raise ValueError(f"min_score must be in [0, 1]: {min_score}")
        self.collection = collection
        self.min_score = min_score

    def index_sighting(self, camera_id: str, time: float, label: str,
                       score: float) -> None:
        """What the detection pipeline writes per confident detection."""
        self.collection.insert({
            "camera_id": camera_id,
            "time": time,
            "label": label,
            "score": score,
        })

    def search(self, description: str,
               time_range: Optional[Tuple[float, float]] = None) -> Track:
        """Find sightings whose label contains the description.

        ``description`` matches case-insensitively against the indexed
        make/model label ("Ford Sedan" matches "2014 Ford Sedan").
        """
        query: Dict = {
            "label": {"$regex": _escape_for_regex(description)},
            "score": {"$gte": self.min_score},
        }
        if time_range is not None:
            start, stop = time_range
            if stop < start:
                raise ValueError(f"empty time range: {time_range}")
            query["$and"] = [{"time": {"$gte": start}},
                             {"time": {"$lte": stop}}]
        documents = self.collection.find(query, sort="time")
        track = Track(query=description)
        for document in documents:
            track.sightings.append(Sighting(
                camera_id=document["camera_id"],
                time=document["time"],
                label=document["label"],
                score=document["score"]))
        return track

    def cameras_to_stake_out(self, description: str, top: int = 3
                             ) -> List[Tuple[str, int]]:
        """Cameras with the most sightings — where to watch next."""
        track = self.search(description)
        counts: Dict[str, int] = {}
        for sighting in track.sightings:
            counts[sighting.camera_id] = counts.get(sighting.camera_id, 0) + 1
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[:top]


def _escape_for_regex(text: str) -> str:
    import re
    return "(?i)" + re.escape(text)
