"""The vehicle detection & classification application (Fig. 5 / Fig. 6).

Pulls the pieces together: the scene generator stands in for DOTD camera
frames; an :class:`~repro.nn.models.yolo.EarlyExitDetector` plays the Tiny
YOLO (local) + YOLOv2 (server) pair; the fog layer prices the deployment;
results are indexed into a document store for the web layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.core import get_runtime

from repro import nn
from repro.cluster.machines import NetworkTopology
from repro.data.video import SceneGenerator, VehicleCatalog
from repro.fog.pipeline import FogPipeline
from repro.fog.split import model_split_from_early_exit, place_bottom_up
from repro.nn.flops import estimate_flops
from repro.nn.models.yolo import (
    EarlyExitDetector,
    YoloLoss,
    evaluate_detections,
)
from repro.nn.tensor import Tensor
from repro.runtime import get_runtime


@dataclass
class StreamReport:
    """Outcome of processing a camera stream through the early-exit model."""

    frames: int
    local_exits: int
    server_exits: int
    bytes_shipped: int
    detection_metrics: Dict[str, float]
    annotations: List[Dict] = field(default_factory=list)

    @property
    def local_fraction(self) -> float:
        return self.local_exits / self.frames if self.frames else 0.0


class VehicleDetectionApp:
    """End-to-end vehicle pipeline: data -> train -> deploy -> stream.

    Parameters are laptop-scale by default; the paper-scale configuration
    (400 classes, 32k images) is exercised by benchmark E10 through
    :meth:`build_classification_dataset`.
    """

    def __init__(self, num_classes: int = 6, image_size: int = 16,
                 grid: int = 4, seed: int = 0, runtime=None):
        self.runtime = runtime or get_runtime()
        self.num_classes = num_classes
        self.image_size = image_size
        self.grid = grid
        self.seed = seed
        self.catalog = VehicleCatalog(max(num_classes, 1))
        self.scenes = SceneGenerator(image_size=image_size,
                                     num_classes=num_classes, seed=seed)
        rng = get_runtime().rng.np_child("apps.vehicle.model", seed)
        self.model = EarlyExitDetector(1, image_size, num_classes,
                                       grid=grid, rng=rng)
        self.loss_fn = YoloLoss(grid=grid, num_classes=num_classes)

    # -- data ----------------------------------------------------------------
    def build_detection_dataset(self, num_scenes: int,
                                vehicles_per_scene: int = 1):
        return self.scenes.generate_batch(num_scenes, vehicles_per_scene)

    def build_classification_dataset(self, num_images: int):
        """Single-vehicle crops + labels (the Sec. IV-A-1 dataset shape)."""
        return self.scenes.classification_dataset(num_images)

    # -- training -------------------------------------------------------------
    def train(self, num_scenes: int = 48, epochs: int = 25,
              lr: float = 0.01, batch_size: int = 16) -> List[float]:
        """Joint training of both exits; returns per-epoch losses."""
        frames, truth = self.build_detection_dataset(num_scenes)
        optimizer = nn.Adam(self.model.parameters(), lr=lr)
        losses = []
        rng = get_runtime().rng.np_child("apps.vehicle.train", self.seed)
        for _ in range(epochs):
            order = rng.permutation(num_scenes)
            epoch_losses = []
            for start in range(0, num_scenes, batch_size):
                batch = order[start:start + batch_size]
                optimizer.zero_grad()
                loss = self.model.joint_loss(
                    Tensor(frames[batch]),
                    [truth[i] for i in batch], self.loss_fn)
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)))
            self.runtime.registry.histogram(
                "app.vehicle.epoch_loss", "per-epoch mean training loss"
            ).observe(losses[-1])
        return losses

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, num_scenes: int = 24, threshold: float = 0.5,
                 score_floor: float = 0.2,
                 batch_size: Optional[int] = None) -> StreamReport:
        """Run the early-exit pipeline over fresh scenes and score it.

        ``batch_size`` feeds frames to the detector in micro-batches (all
        at once if None) — the fog-device serving pattern.
        """
        frames, truth = self.build_detection_dataset(num_scenes)
        results = self.model.infer(Tensor(frames), threshold=threshold,
                                   score_floor=score_floor,
                                   batch_size=batch_size)
        predicted = [r["detections"] for r in results]
        metrics = evaluate_detections(predicted, truth)
        annotations = []
        for index, result in enumerate(results):
            for det in result["detections"]:
                annotations.append({
                    "frame": index,
                    "label": self.catalog.label(det.class_id)
                    if det.class_id < self.catalog.num_classes else str(det.class_id),
                    "score": det.score,
                    "box": [det.cx, det.cy, det.w, det.h],
                    "exit": result["exit_index"],
                })
        report = StreamReport(
            frames=num_scenes,
            local_exits=sum(1 for r in results if r["exit_index"] == 1),
            server_exits=sum(1 for r in results if r["exit_index"] == 2),
            bytes_shipped=sum(r["shipped_bytes"] for r in results),
            detection_metrics=metrics,
            annotations=annotations)
        registry = self.runtime.registry
        registry.counter("app.vehicle.frames").inc(report.frames)
        registry.counter("app.vehicle.exits").inc(report.local_exits,
                                                  tier="local")
        registry.counter("app.vehicle.exits").inc(report.server_exits,
                                                  tier="server")
        registry.counter("app.vehicle.bytes_shipped").inc(report.bytes_shipped)
        return report

    def threshold_sweep(self, thresholds: Sequence[float],
                        num_scenes: int = 24,
                        batch_size: Optional[int] = None) -> List[Dict]:
        """Accuracy/offload rows per threshold (the Fig. 5 tradeoff)."""
        rows = []
        for threshold in thresholds:
            report = self.evaluate(num_scenes=num_scenes, threshold=threshold,
                                   batch_size=batch_size)
            rows.append({
                "threshold": threshold,
                "f1": report.detection_metrics["f1"],
                "local_fraction": report.local_fraction,
                "bytes_shipped": report.bytes_shipped,
            })
        return rows

    # -- deployment -------------------------------------------------------------
    def fog_pipeline(self, topology: NetworkTopology,
                     edge_machine: str) -> FogPipeline:
        """Place the split model on the fog hierarchy (Fig. 3 x Fig. 5)."""
        shape = (1, self.image_size, self.image_size)
        stem_flops, stem_shape = estimate_flops(self.model.stem, shape)
        local_flops, local_shape = estimate_flops(
            self.model.local_branch, stem_shape)
        local_head_flops, _ = estimate_flops(self.model.local_head, local_shape)
        remote_flops, remote_shape = estimate_flops(
            self.model.remote_branch, stem_shape)
        remote_head_flops, _ = estimate_flops(
            self.model.remote_head, remote_shape)
        stages = model_split_from_early_exit(
            local_flops=stem_flops + local_flops,
            remote_flops=remote_flops + remote_head_flops,
            feature_bytes=self.model.feature_map_bytes(),
            input_bytes=self.model.raw_frame_bytes(),
            local_exit_flops=local_head_flops)
        return FogPipeline(place_bottom_up(topology, stages, edge_machine))

    def index_annotations(self, collection, report: StreamReport) -> int:
        """Write annotations into a document store (the Fig. 4 sink)."""
        for annotation in report.annotations:
            collection.insert(dict(annotation))
        return len(report.annotations)
