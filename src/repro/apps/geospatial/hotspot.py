"""CNNs over geospatial crime "images" (Sec. III-A).

The paper argues that geospatial data — "traffic congestion, criminal
activities, and economic development levels at different locations" — can
be viewed as images and analyzed with CNNs (the AlphaGo analogy).  This
app renders daily crime-incident locations into density grids with
:class:`~repro.compute.geospatial.GridAggregator` and trains a small CNN
to predict which quadrant of the city holds the emerging hotspot,
against a pixel-count baseline that ignores spatial structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.core import get_runtime

from repro import nn
from repro.compute.geospatial import GridAggregator
from repro.compute.mllib import LogisticRegression
from repro.nn import functional as F
from repro.nn.models.cnn import SimpleCNN
from repro.nn.tensor import Tensor


class HotspotCnnApp:
    """Predict the hot quadrant from a noisy daily crime-density grid.

    Each sample is one simulated day: a cluster of incidents in one
    quadrant plus uniform background noise, rasterized to ``grid`` x
    ``grid``.  The task is four-way quadrant classification; the
    interesting regime is high background noise, where counting incidents
    per quadrant (the non-spatial baseline) degrades but the CNN's local
    pattern detection holds up.
    """

    def __init__(self, grid: int = 8, seed: int = 0,
                 cluster_points: int = 10, noise_points: int = 200):
        if grid % 2:
            raise ValueError(f"grid must be even: {grid}")
        self.grid = grid
        self.cluster_points = cluster_points
        self.noise_points = noise_points
        self._rng = get_runtime().rng.np_child("apps.geospatial.hotspot", seed)
        self._aggregator = GridAggregator(rows=grid, cols=grid)
        self.model = SimpleCNN(1, grid, num_classes=4, channels=(8,),
                               rng=get_runtime().rng.np_child("apps.geospatial.hotspot.model", seed))

    def _quadrant_center(self, quadrant: int) -> Tuple[float, float]:
        cx = 0.25 if quadrant % 2 == 0 else 0.75
        cy = 0.25 if quadrant < 2 else 0.75
        return cx, cy

    def sample_day(self, quadrant: int) -> np.ndarray:
        """One day's density grid with the hotspot in ``quadrant``."""
        if not 0 <= quadrant < 4:
            raise ValueError(f"quadrant must be 0..3: {quadrant}")
        rng = self._rng
        cx, cy = self._quadrant_center(quadrant)
        cluster = np.clip(
            rng.normal([cx, cy], 0.06, (self.cluster_points, 2)), 0, 1)
        noise = rng.random((self.noise_points, 2))
        points = np.vstack([cluster, noise])
        return self._aggregator.density(points)

    def dataset(self, days_per_quadrant: int
                ) -> Tuple[np.ndarray, np.ndarray]:
        if days_per_quadrant < 1:
            raise ValueError(
                f"days_per_quadrant must be >= 1: {days_per_quadrant}")
        total = 4 * days_per_quadrant
        images = np.zeros((total, 1, self.grid, self.grid))
        labels = np.zeros(total, dtype=int)
        for index in range(total):
            quadrant = index % 4
            images[index, 0] = self.sample_day(quadrant)
            labels[index] = quadrant
        return images, labels

    def train(self, days_per_quadrant: int = 20, epochs: int = 30,
              lr: float = 0.01) -> List[float]:
        images, labels = self.dataset(days_per_quadrant)
        optimizer = nn.Adam(self.model.parameters(), lr=lr)
        losses = []
        for _ in range(epochs):
            optimizer.zero_grad()
            loss = F.cross_entropy(self.model(Tensor(images)), labels)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        return losses

    def evaluate(self, days_per_quadrant: int = 10) -> float:
        images, labels = self.dataset(days_per_quadrant)
        self.model.eval()
        accuracy = F.accuracy(self.model(Tensor(images)), labels)
        self.model.train()
        return accuracy

    def quadrant_count_baseline(self, train_days: int = 20,
                                test_days: int = 10) -> float:
        """Non-spatial baseline: logistic regression on per-quadrant sums.

        Collapses each density grid to four quadrant totals — exactly the
        information a district-count report contains — and classifies on
        those.  Ignoring within-quadrant structure costs accuracy in the
        noisy regime, which is the paper's argument for spatial CNNs.
        """
        def featurize(images: np.ndarray) -> np.ndarray:
            half = self.grid // 2
            return np.stack([
                images[:, 0, :half, :half].sum(axis=(1, 2)),
                images[:, 0, :half, half:].sum(axis=(1, 2)),
                images[:, 0, half:, :half].sum(axis=(1, 2)),
                images[:, 0, half:, half:].sum(axis=(1, 2)),
            ], axis=1)

        train_x, train_y = self.dataset(train_days)
        test_x, test_y = self.dataset(test_days)
        # one-vs-rest over four quadrants via four binary models
        features_train = featurize(train_x)
        features_test = featurize(test_x)
        scores = np.zeros((len(test_y), 4))
        for quadrant in range(4):
            model = LogisticRegression(lr=0.3, iterations=200)
            model.fit(features_train, (train_y == quadrant).astype(int))
            scores[:, quadrant] = model.predict_proba(features_test)
        return float((scores.argmax(axis=1) == test_y).mean())
