"""Spatial analysis over geospatial "images" (Sec. III-A)."""

from repro.apps.geospatial.hotspot import HotspotCnnApp

__all__ = ["HotspotCnnApp"]
