"""Audio+video gunshot detection by multimodal fusion (Sec. III-C).

The paper's example: combine video (image) and sound (audio) for gunshots.
The synthetic event generator is built so that *neither modality alone
separates the classes*:

- a **gunshot** has an impulsive audio signature *and* a muzzle-flash video
  signature;
- **fireworks** mimic the flash (video confuser) with a different audio
  envelope;
- a **car backfire** mimics the impulse (audio confuser) with no flash.

An audio-only or video-only classifier is therefore fooled by its confuser;
fusing the modalities — through a multimodal autoencoder or CCA — recovers
near-perfect separation.  This is the behaviour benchmark E11 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.runtime.core import get_runtime

from repro import nn
from repro.compute.mllib import LogisticRegression
from repro.nn.models.autoencoder import MultimodalAutoencoder
from repro.nn.models.cca import CCA
from repro.nn.tensor import Tensor

EVENT_CLASSES = ("gunshot", "fireworks", "backfire")


class GunshotEventGenerator:
    """Paired (audio, video) feature vectors with event labels.

    Audio features: a 20-bin spectrogram-like envelope.  Gunshots and
    backfires share an impulsive envelope; fireworks have a crackling,
    spread envelope.  Video features: a 16-dim brightness-transient vector.
    Gunshots and fireworks share a flash transient; backfires are flat.
    """

    def __init__(self, seed: int = 0, noise: float = 0.35):
        self._rng = get_runtime().rng.np_child("apps.fusion.gunshot", seed)
        self.noise = noise
        self.audio_dim = 20
        self.video_dim = 16
        # Prototype envelopes.
        t = np.linspace(0, 1, self.audio_dim)
        self._impulse = np.exp(-8 * t)                       # sharp decay
        self._crackle = 0.5 + 0.4 * np.sin(12 * np.pi * t)   # spread, bumpy
        v = np.linspace(0, 1, self.video_dim)
        self._flash = np.exp(-((v - 0.3) ** 2) / 0.01)       # bright transient
        self._flat = np.full(self.video_dim, 0.1)

    def sample(self, label: int) -> Tuple[np.ndarray, np.ndarray]:
        if label not in (0, 1, 2):
            raise ValueError(f"label must be 0..2: {label}")
        rng = self._rng
        name = EVENT_CLASSES[label]
        audio = self._impulse if name in ("gunshot", "backfire") else self._crackle
        video = self._flash if name in ("gunshot", "fireworks") else self._flat
        return (audio + rng.normal(0, self.noise, self.audio_dim),
                video + rng.normal(0, self.noise, self.video_dim))

    def dataset(self, per_class: int
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(audio, video, binary labels): 1 = gunshot, 0 = confuser."""
        if per_class < 1:
            raise ValueError(f"per_class must be >= 1: {per_class}")
        total = per_class * len(EVENT_CLASSES)
        audio = np.zeros((total, self.audio_dim))
        video = np.zeros((total, self.video_dim))
        labels = np.zeros(total, dtype=int)
        for index in range(total):
            event = index % len(EVENT_CLASSES)
            audio[index], video[index] = self.sample(event)
            labels[index] = 1 if event == 0 else 0
        return audio, video, labels


class GunshotFusionApp:
    """Trains single-modality baselines and both fusion methods."""

    def __init__(self, seed: int = 0, noise: float = 0.35):
        self.generator = GunshotEventGenerator(seed=seed, noise=noise)
        self.seed = seed

    def _fit_logistic(self, features: np.ndarray, labels: np.ndarray,
                      test_features: np.ndarray, test_labels: np.ndarray
                      ) -> float:
        model = LogisticRegression(lr=0.3, iterations=400)
        model.fit(features, labels)
        return model.accuracy(test_features, test_labels)

    def run(self, train_per_class: int = 60, test_per_class: int = 40,
            ae_epochs: int = 150) -> Dict[str, float]:
        """Accuracies of audio-only, video-only, AE fusion and CCA fusion."""
        audio_tr, video_tr, y_tr = self.generator.dataset(train_per_class)
        audio_te, video_te, y_te = self.generator.dataset(test_per_class)

        results = {
            "audio_only": self._fit_logistic(audio_tr, y_tr, audio_te, y_te),
            "video_only": self._fit_logistic(video_tr, y_tr, video_te, y_te),
            "concat": self._fit_logistic(
                np.hstack([audio_tr, video_tr]), y_tr,
                np.hstack([audio_te, video_te]), y_te),
        }

        # Autoencoder fusion: train reconstruction, classify on shared code.
        ae = MultimodalAutoencoder(
            self.generator.audio_dim, self.generator.video_dim,
            encoder_dim=16, code_dim=8,
            rng=get_runtime().rng.np_child("apps.fusion.gunshot.ae", self.seed))
        optimizer = nn.Adam(ae.parameters(), lr=0.01)
        for _ in range(ae_epochs):
            optimizer.zero_grad()
            loss = ae.reconstruction_loss(Tensor(audio_tr), Tensor(video_tr))
            loss.backward()
            optimizer.step()
        ae.eval()
        code_tr = ae.fuse(Tensor(audio_tr), Tensor(video_tr)).data
        code_te = ae.fuse(Tensor(audio_te), Tensor(video_te)).data
        results["ae_fusion"] = self._fit_logistic(code_tr, y_tr, code_te, y_te)

        # CCA fusion: canonical projections concatenated.  Weaker than the
        # trained autoencoder (it is unsupervised and linear) but still
        # beats either modality alone.
        cca = CCA(n_components=8).fit(audio_tr, video_tr)
        fused_tr = cca.fused_features(audio_tr, video_tr)
        fused_te = cca.fused_features(audio_te, video_te)
        results["cca_fusion"] = self._fit_logistic(fused_tr, y_tr,
                                                   fused_te, y_te)
        return results

    def missing_modality_accuracy(self, train_per_class: int = 60,
                                  test_per_class: int = 40,
                                  ae_epochs: int = 150) -> Dict[str, float]:
        """AE-fusion robustness when one modality is absent at test time."""
        audio_tr, video_tr, y_tr = self.generator.dataset(train_per_class)
        audio_te, video_te, y_te = self.generator.dataset(test_per_class)
        ae = MultimodalAutoencoder(
            self.generator.audio_dim, self.generator.video_dim,
            encoder_dim=16, code_dim=8,
            rng=get_runtime().rng.np_child("apps.fusion.gunshot.ae", self.seed))
        optimizer = nn.Adam(ae.parameters(), lr=0.01)
        for _ in range(ae_epochs):
            optimizer.zero_grad()
            loss = ae.reconstruction_loss(Tensor(audio_tr), Tensor(video_tr))
            loss.backward()
            optimizer.step()
        ae.eval()
        code_tr = ae.fuse(Tensor(audio_tr), Tensor(video_tr)).data
        classifier = LogisticRegression(lr=0.3, iterations=400)
        classifier.fit(code_tr, y_tr)
        full = classifier.accuracy(
            ae.fuse(Tensor(audio_te), Tensor(video_te)).data, y_te)
        audio_only = classifier.accuracy(
            ae.fuse_partial(a=Tensor(audio_te)).data, y_te)
        video_only = classifier.accuracy(
            ae.fuse_partial(b=Tensor(video_te)).data, y_te)
        return {"both": full, "audio_missing_video": audio_only,
                "video_missing_audio": video_only}
