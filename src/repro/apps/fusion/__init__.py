"""Multimodal audio+video fusion (Sec. III-C)."""

from repro.apps.fusion.gunshot import GunshotEventGenerator, GunshotFusionApp

__all__ = ["GunshotEventGenerator", "GunshotFusionApp"]
