"""Gang / co-offending network analysis (Sec. IV-B).

Builds the co-offending graph — either synthetically at the paper's scale
or from law-enforcement incident records — and answers the investigative
queries the paper describes: first- and second-degree associate fields,
their sizes (the "prohibitively large" problem), and key-player rankings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.core import get_runtime

from repro.compute.graphx import Graph
from repro.data.social import GangNetworkGenerator


@dataclass
class FieldSizeReport:
    """Investigative field sizes around one person of interest."""

    person: str
    first_degree: int
    second_degree: int


class SocialNetworkAnalysis:
    """Queries over a co-offending network."""

    def __init__(self, graph: Graph):
        self.graph = graph

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "SocialNetworkAnalysis":
        """The Sec. IV-B network: 67 gangs, 982 members, mean degree ~14."""
        return cls(GangNetworkGenerator(seed=seed).generate())

    @classmethod
    def from_incidents(cls, records: Sequence[Dict]) -> "SocialNetworkAnalysis":
        """Build from law-enforcement records: people co-listed on an
        incident report become linked (the paper's in-place-and-time rule)."""
        vertices: Dict[str, Dict] = {}
        edges = set()
        for record in records:
            people = list(record.get("suspects", ())) + \
                list(record.get("victims", ()))
            for person in people:
                vertices.setdefault(person, {"incidents": 0})
                vertices[person]["incidents"] += 1
            for i, a in enumerate(people):
                for b in people[i + 1:]:
                    if a != b:
                        edges.add(tuple(sorted((a, b))))
        return cls(Graph(vertices, sorted(edges)))

    # -- investigative queries ---------------------------------------------------
    def associates(self, person: str, degree: int = 1) -> set:
        return self.graph.n_degree_neighborhood(person, degree)

    def field_size_report(self, person: str) -> FieldSizeReport:
        return FieldSizeReport(
            person=person,
            first_degree=len(self.associates(person, 1)),
            second_degree=len(self.associates(person, 2)))

    def mean_field_sizes(self, sample: int = 100, seed: int = 0
                         ) -> Dict[str, float]:
        """Average first/second-degree field sizes over a member sample —
        the numbers the paper quotes (14 and ~200)."""
        rng = get_runtime().rng.np_child("apps.social.network.sample", seed)
        members = sorted(self.graph.vertices)
        if not members:
            return {"first_degree": 0.0, "second_degree": 0.0}
        take = min(sample, len(members))
        picks = rng.choice(len(members), take, replace=False)
        firsts, seconds = [], []
        for index in picks:
            report = self.field_size_report(members[index])
            firsts.append(report.first_degree)
            seconds.append(report.second_degree)
        return {"first_degree": float(np.mean(firsts)),
                "second_degree": float(np.mean(seconds))}

    def key_players(self, top: int = 10) -> List[tuple]:
        """Highest-pagerank members — candidates for focused attention."""
        ranks = self.graph.pagerank()
        ordered = sorted(ranks.items(), key=lambda kv: kv[1], reverse=True)
        return ordered[:top]

    def group_of(self, person: str) -> Optional[int]:
        attrs = self.graph.vertices.get(person)
        if attrs is None:
            raise KeyError(f"unknown person: {person}")
        return attrs.get("group")

    def shared_co_offenders(self, a: str, b: str) -> set:
        """People directly linked to both a and b (the second-degree path)."""
        return self.associates(a, 1) & self.associates(b, 1)
