"""Multimodal geo-temporal triangulation of persons of interest (Sec. IV-B).

The paper's narrowing procedure: start from the (prohibitively large)
second-degree associate field of a victim/suspect, then intersect with
tweet evidence — textual features (incident vocabulary), time window, and
location radius around the violent incident.  The result is a "much smaller
persons-of-interest field" for detailed investigation; the benchmark
measures the narrowing factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.apps.social.network import SocialNetworkAnalysis
from repro.compute.mllib import TfIdf, cosine_similarity, tokenize
from repro.data.social import Tweet

#: Vocabulary investigators watch for (matches the generator's incident pool).
INCIDENT_KEYWORDS = ("shots", "fired", "gunshot", "police", "sirens",
                     "fight", "robbery", "scared")


@dataclass
class TriangulationReport:
    """Stage-by-stage narrowing of the persons-of-interest field."""

    anchor: str
    field_size: int
    with_tweets: int
    after_text_filter: int
    after_geo_filter: int
    after_time_filter: int
    persons_of_interest: Set[str] = field(default_factory=set)

    @property
    def narrowing_factor(self) -> float:
        if not self.persons_of_interest:
            return float(self.field_size) if self.field_size else 0.0
        return self.field_size / len(self.persons_of_interest)

    def stages(self) -> List[Tuple[str, int]]:
        return [
            ("second_degree_field", self.field_size),
            ("tweeted_at_all", self.with_tweets),
            ("incident_text", self.after_text_filter),
            ("near_location", self.after_geo_filter),
            ("in_time_window", self.after_time_filter),
        ]


class MultimodalTriangulation:
    """Intersects the associate field with tweet text/geo/time evidence."""

    def __init__(self, analysis: SocialNetworkAnalysis,
                 keywords: Sequence[str] = INCIDENT_KEYWORDS):
        self.analysis = analysis
        self.keywords = [k.lower() for k in keywords]
        self._keyword_set = set(self.keywords)

    def _text_matches(self, tweet: Tweet) -> bool:
        return bool(self._keyword_set & set(tokenize(tweet.text)))

    def investigate(self, anchor: str, incident_location: Tuple[float, float],
                    incident_time: float, tweets: Sequence[Tweet],
                    geo_radius: float = 0.1, time_window: float = 2.0,
                    degree: int = 2) -> TriangulationReport:
        """Run the full narrowing pipeline around one incident.

        ``anchor`` is the victim or suspect whose associate field seeds the
        investigation; the three filters then apply in sequence.
        """
        field_members = self.analysis.associates(anchor, degree)
        by_user: Dict[str, List[Tweet]] = {}
        for tweet in tweets:
            if tweet.user_id in field_members:
                by_user.setdefault(tweet.user_id, []).append(tweet)

        with_tweets = set(by_user)
        text_hits = {user for user, user_tweets in by_user.items()
                     if any(self._text_matches(t) for t in user_tweets)}
        geo_hits = set()
        for user in text_hits:
            for tweet in by_user[user]:
                if not self._text_matches(tweet):
                    continue
                distance = np.hypot(tweet.location[0] - incident_location[0],
                                    tweet.location[1] - incident_location[1])
                if distance <= geo_radius:
                    geo_hits.add(user)
                    break
        time_hits = set()
        for user in geo_hits:
            for tweet in by_user[user]:
                if (self._text_matches(tweet)
                        and abs(tweet.time - incident_time) <= time_window):
                    time_hits.add(user)
                    break
        return TriangulationReport(
            anchor=anchor,
            field_size=len(field_members),
            with_tweets=len(with_tweets),
            after_text_filter=len(text_hits),
            after_geo_filter=len(geo_hits),
            after_time_filter=len(time_hits),
            persons_of_interest=time_hits)

    def rank_by_text_similarity(self, tweets: Sequence[Tweet],
                                candidates: Set[str]) -> List[Tuple[str, float]]:
        """TF-IDF ranking of candidates by similarity to the watch keywords.

        The "deep hybrid model ... NLP techniques" stage at laptop scale:
        candidates whose tweet text most resembles incident vocabulary rank
        first, giving investigators a priority order.
        """
        documents = {user: [] for user in candidates}
        for tweet in tweets:
            if tweet.user_id in documents:
                documents[tweet.user_id].extend(tokenize(tweet.text))
        users = [u for u, tokens in documents.items() if tokens]
        if not users:
            return []
        corpus = [documents[u] for u in users] + [list(self.keywords)]
        tfidf = TfIdf()
        matrix = tfidf.fit_transform(corpus)
        query = matrix[-1]
        scores = [(user, cosine_similarity(matrix[i], query))
                  for i, user in enumerate(users)]
        return sorted(scores, key=lambda kv: kv[1], reverse=True)
