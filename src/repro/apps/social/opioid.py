"""Opioid-epidemic analytics sketch — the paper's Sec. V future work.

Correlates per-district signals the paper plans to combine (overdose
locations, substance-related crime arrests, 911 calls) to surface districts
where the signals co-move.  Implemented as an extension over the synthetic
open-city data.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence

import numpy as np

from repro.runtime.core import get_runtime

from repro.data.city import DISTRICT_RATES, OpenCityData


class OpioidAnalytics:
    """Multi-source district-level correlation analysis."""

    def __init__(self, seed: int = 0):
        self._rng = get_runtime().rng.np_child("apps.social.opioid", seed)
        self._ids = itertools.count(1)

    def synthetic_overdoses(self, days: int, base_daily_rate: float = 1.0
                            ) -> List[Dict]:
        """Overdose events whose district profile follows crime intensity
        (the hypothesis the paper wants to test against real data)."""
        records = []
        for day in range(days):
            for district, multiplier in DISTRICT_RATES.items():
                count = self._rng.poisson(base_daily_rate * multiplier)
                for _ in range(count):
                    records.append({
                        "overdose_id": next(self._ids),
                        "district": district,
                        "day": day,
                        "fatal": bool(self._rng.random() < 0.1),
                    })
        return records

    @staticmethod
    def district_counts(records: Sequence[Dict]) -> Dict[int, int]:
        counts: Dict[int, int] = {d: 0 for d in DISTRICT_RATES}
        for record in records:
            counts[record["district"]] += 1
        return counts

    @staticmethod
    def correlation(counts_a: Dict[int, int], counts_b: Dict[int, int]
                    ) -> float:
        """Pearson correlation of two per-district count profiles."""
        districts = sorted(set(counts_a) & set(counts_b))
        if len(districts) < 2:
            raise ValueError("need at least two shared districts")
        a = np.array([counts_a[d] for d in districts], dtype=float)
        b = np.array([counts_b[d] for d in districts], dtype=float)
        if a.std() == 0 or b.std() == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    def report(self, days: int = 60, seed: int = 0) -> Dict[str, float]:
        """Correlate overdoses with crime and 911 volume per district."""
        city = OpenCityData(seed=seed)
        crimes = city.crime_incidents(days)
        calls = city.emergency_calls(days)
        overdoses = self.synthetic_overdoses(days)
        overdose_counts = self.district_counts(overdoses)
        crime_counts = self.district_counts(crimes)
        call_counts = self.district_counts(calls)
        return {
            "overdose_vs_crime": self.correlation(overdose_counts, crime_counts),
            "overdose_vs_911": self.correlation(overdose_counts, call_counts),
            "total_overdoses": float(len(overdoses)),
        }
