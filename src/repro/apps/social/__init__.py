"""Social-network analysis applications (Sec. IV-B, Sec. V)."""

from repro.apps.social.network import SocialNetworkAnalysis
from repro.apps.social.triangulation import MultimodalTriangulation, TriangulationReport
from repro.apps.social.opioid import OpioidAnalytics

__all__ = ["SocialNetworkAnalysis", "MultimodalTriangulation",
           "TriangulationReport", "OpioidAnalytics"]
