"""Deep Q-learning for the PTZ camera task (Sec. III-D).

A compact DQN in the Mnih et al. (2013) style the paper cites: an MLP
Q-network on :mod:`repro.nn`, an experience-replay buffer, an
epsilon-greedy behaviour policy with linear decay, and a periodically
synced target network.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.runtime.core import get_runtime
from repro.nn.tensor import Tensor


class ReplayBuffer:
    """Fixed-capacity experience store with uniform sampling."""

    def __init__(self, capacity: int = 5000, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._buffer: Deque[Tuple] = deque(maxlen=capacity)
        self._rng = get_runtime().rng.child("apps.drl.dqn.replay", seed)

    def __len__(self) -> int:
        return len(self._buffer)

    def push(self, state, action: int, reward: float, next_state,
             done: bool) -> None:
        self._buffer.append((np.asarray(state), action, reward,
                             np.asarray(next_state), done))

    def sample(self, batch_size: int):
        if batch_size > len(self._buffer):
            raise ValueError(
                f"cannot sample {batch_size} from {len(self._buffer)}")
        batch = self._rng.sample(list(self._buffer), batch_size)
        states = np.stack([b[0] for b in batch])
        actions = np.array([b[1] for b in batch])
        rewards = np.array([b[2] for b in batch])
        next_states = np.stack([b[3] for b in batch])
        dones = np.array([b[4] for b in batch], dtype=float)
        return states, actions, rewards, next_states, dones


def _q_network(observation_dim: int, num_actions: int, hidden: int,
               rng: np.random.Generator) -> nn.Sequential:
    return nn.Sequential(
        nn.Linear(observation_dim, hidden, rng=rng), nn.ReLU(),
        nn.Linear(hidden, hidden, rng=rng), nn.ReLU(),
        nn.Linear(hidden, num_actions, rng=rng))


class DQNAgent:
    """DQN with target network and epsilon-greedy exploration."""

    def __init__(self, observation_dim: int, num_actions: int,
                 hidden: int = 32, lr: float = 1e-3, gamma: float = 0.95,
                 epsilon_start: float = 1.0, epsilon_end: float = 0.05,
                 epsilon_decay_steps: int = 2000,
                 target_sync_every: int = 100, seed: int = 0):
        if not 0.0 <= gamma < 1.0:
            raise ValueError(f"gamma must be in [0, 1): {gamma}")
        rng = get_runtime().rng.np_child("apps.drl.dqn.init", seed)
        self.q = _q_network(observation_dim, num_actions, hidden, rng)
        self.target = _q_network(observation_dim, num_actions, hidden, rng)
        self.target.load_state_dict(self.q.state_dict())
        self.optimizer = nn.Adam(self.q.parameters(), lr=lr)
        self.gamma = gamma
        self.num_actions = num_actions
        self.epsilon_start = epsilon_start
        self.epsilon_end = epsilon_end
        self.epsilon_decay_steps = epsilon_decay_steps
        self.target_sync_every = target_sync_every
        self._step = 0
        self._rng = get_runtime().rng.np_child("apps.drl.dqn.policy", seed)

    @property
    def epsilon(self) -> float:
        progress = min(self._step / self.epsilon_decay_steps, 1.0)
        return self.epsilon_start + progress * (self.epsilon_end
                                                - self.epsilon_start)

    def act(self, observation: np.ndarray, greedy: bool = False) -> int:
        if not greedy and self._rng.random() < self.epsilon:
            return int(self._rng.integers(self.num_actions))
        q_values = self.q(Tensor(observation.reshape(1, -1))).data[0]
        return int(q_values.argmax())

    def learn(self, batch) -> float:
        """One gradient step on a replay batch; returns the TD loss."""
        states, actions, rewards, next_states, dones = batch
        next_q = self.target(Tensor(next_states)).data.max(axis=1)
        targets = rewards + self.gamma * next_q * (1.0 - dones)
        self.optimizer.zero_grad()
        q_values = self.q(Tensor(states))
        picked = q_values[np.arange(len(actions)), actions]
        diff = picked - Tensor(targets)
        loss = (diff * diff).mean()
        loss.backward()
        self.optimizer.clip_grad_norm(5.0)
        self.optimizer.step()
        self._step += 1
        if self._step % self.target_sync_every == 0:
            self.target.load_state_dict(self.q.state_dict())
        return loss.item()

    def train(self, env, episodes: int = 60, batch_size: int = 32,
              buffer: Optional[ReplayBuffer] = None,
              warmup: int = 200) -> List[float]:
        """Standard DQN loop; returns per-episode total rewards."""
        buffer = buffer or ReplayBuffer(seed=0)
        episode_rewards: List[float] = []
        for _ in range(episodes):
            observation = env.reset()
            total = 0.0
            done = False
            while not done:
                action = self.act(observation)
                next_observation, reward, done = env.step(action)
                buffer.push(observation, action, reward, next_observation,
                            done)
                observation = next_observation
                total += reward
                if len(buffer) >= max(batch_size, warmup):
                    self.learn(buffer.sample(batch_size))
            episode_rewards.append(total)
        return episode_rewards

    def policy(self) -> Callable[[np.ndarray], int]:
        """The greedy policy for evaluation."""
        return lambda observation: self.act(observation, greedy=True)


def random_policy(num_actions: int, seed: int = 0
                  ) -> Callable[[np.ndarray], int]:
    """Uniform random action baseline."""
    rng = get_runtime().rng.np_child("apps.drl.dqn.random_policy", seed)

    def policy(observation: np.ndarray) -> int:
        return int(rng.integers(num_actions))

    return policy


def static_policy(hold_action: int = 6) -> Callable[[np.ndarray], int]:
    """Fixed wide-shot camera: always hold (the no-control baseline)."""
    return lambda observation: hold_action


def evaluate_policy(env, policy: Callable[[np.ndarray], int],
                    episodes: int = 10) -> float:
    """Mean episode reward of a policy."""
    totals = []
    for _ in range(episodes):
        observation = env.reset()
        total = 0.0
        done = False
        while not done:
            observation, reward, done = env.step(policy(observation))
            total += reward
        totals.append(total)
    return float(np.mean(totals))
