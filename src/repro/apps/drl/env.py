"""A pan-tilt-zoom camera environment for incident tracking.

The paper's DRL example: "smart camera controls to automatically rotate
and zoom in for traffic and crime incidents".  The environment is a unit
square containing a drifting incident; the agent steers a PTZ camera whose
field of view shrinks as zoom rises.  Reward favours keeping the incident
in view at high zoom — wide shots are safe but low-value, tight shots are
high-value but easy to lose.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.runtime.core import get_runtime

#: Discrete actions.
ACTIONS = ("pan_left", "pan_right", "tilt_up", "tilt_down",
           "zoom_in", "zoom_out", "hold")


class PTZCameraEnv:
    """Unit-square PTZ tracking task with a random-walking incident.

    State (observation): ``[cam_x, cam_y, zoom_norm, dx, dy]`` where
    ``(dx, dy)`` is the incident offset from the camera center — the
    tracker's detection output in a real deployment.

    Reward per step: ``zoom_level`` when the incident is inside the field
    of view, else ``-0.2``.
    """

    MAX_ZOOM = 3
    PAN_STEP = 0.1

    def __init__(self, episode_length: int = 40, incident_speed: float = 0.03,
                 seed: int = 0):
        if episode_length < 1:
            raise ValueError(f"episode_length must be >= 1: {episode_length}")
        self.episode_length = episode_length
        self.incident_speed = incident_speed
        self._rng = get_runtime().rng.np_child("apps.drl.env", seed)
        self.num_actions = len(ACTIONS)
        self.observation_dim = 5
        self._steps = 0
        self.cam = np.array([0.5, 0.5])
        self.zoom = 0
        self.incident = np.array([0.5, 0.5])

    # -- mechanics -------------------------------------------------------------
    def fov_half_width(self) -> float:
        """Half-width of the field of view at the current zoom."""
        return 0.4 / (2 ** self.zoom)

    def incident_visible(self) -> bool:
        half = self.fov_half_width()
        return bool((np.abs(self.incident - self.cam) <= half).all())

    def _observe(self) -> np.ndarray:
        offset = self.incident - self.cam
        return np.array([self.cam[0], self.cam[1],
                         self.zoom / self.MAX_ZOOM, offset[0], offset[1]])

    def reset(self, incident_at: Optional[Tuple[float, float]] = None
              ) -> np.ndarray:
        self._steps = 0
        self.cam = np.array([0.5, 0.5])
        self.zoom = 0
        if incident_at is not None:
            self.incident = np.clip(np.asarray(incident_at, dtype=float), 0, 1)
        else:
            self.incident = self._rng.random(2)
        return self._observe()

    def step(self, action: int) -> Tuple[np.ndarray, float, bool]:
        """Apply an action; returns (observation, reward, done)."""
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action out of range: {action}")
        name = ACTIONS[action]
        if name == "pan_left":
            self.cam[0] -= self.PAN_STEP
        elif name == "pan_right":
            self.cam[0] += self.PAN_STEP
        elif name == "tilt_up":
            self.cam[1] += self.PAN_STEP
        elif name == "tilt_down":
            self.cam[1] -= self.PAN_STEP
        elif name == "zoom_in":
            self.zoom = min(self.zoom + 1, self.MAX_ZOOM)
        elif name == "zoom_out":
            self.zoom = max(self.zoom - 1, 0)
        self.cam = np.clip(self.cam, 0.0, 1.0)

        # Incident drifts.
        self.incident = np.clip(
            self.incident + self._rng.normal(0, self.incident_speed, 2),
            0.0, 1.0)

        reward = float(self.zoom) if self.incident_visible() else -0.2
        if self.zoom == 0 and self.incident_visible():
            reward = 0.1  # wide shots are weakly rewarded
        self._steps += 1
        done = self._steps >= self.episode_length
        return self._observe(), reward, done
