"""Deep reinforcement learning for smart camera control (Sec. III-D)."""

from repro.apps.drl.env import PTZCameraEnv
from repro.apps.drl.dqn import DQNAgent, ReplayBuffer, evaluate_policy, random_policy, static_policy

__all__ = ["PTZCameraEnv", "DQNAgent", "ReplayBuffer",
           "evaluate_policy", "random_policy", "static_policy"]
