"""Action recognition with the Fig. 7 two-exit architecture.

The model mirrors the figure faithfully:

- **local path** (edge/fog device): ResNet block 1 over each frame,
  global-pooled per-frame features -> LSTM 1 -> FC 1 -> Output 1;
- **server path**: the *feature maps from ResNet block 1* (not the raw
  frames) continue through ResNet block 2 -> LSTM 2 -> FC 2 -> Output 2.

If the entropy of Output 1 is low (confident) the clip is indexed on the
local device; otherwise the block-1 feature maps are shipped upstream —
exactly the Fig. 7 control flow.  The ResNet blocks use the paper's
conv-shortcut variant by default (Fig. 8), with the shortcut kind exposed
for the E8 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.rng import resolve_rng
from repro.runtime.core import get_runtime

from repro import nn
from repro.nn import functional as F
from repro.nn.inference import eval_mode, iter_microbatches, observe_inference
from repro.nn.models.earlyexit import entropy_confidence
from repro.nn.models.resnet import ResNetBlock
from repro.nn.tensor import Tensor
from repro.data.video import ACTION_CLASSES, ActionClipGenerator
from repro.runtime import get_runtime


class ActionEarlyExitModel(nn.Module):
    """ResNet block 1 + LSTM1/FC1 (exit 1); block 2 + LSTM2/FC2 (exit 2)."""

    def __init__(self, image_size: int = 16, num_classes: int = 5,
                 block1_channels: int = 4, block2_channels: int = 8,
                 lstm1_hidden: int = 8, lstm2_hidden: int = 16,
                 shortcut: str = "conv",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "apps.action.model")
        self.image_size = image_size
        self.num_classes = num_classes
        self.block1 = ResNetBlock(1, block1_channels, stride=2,
                                  shortcut=shortcut, rng=rng)
        self.block2 = ResNetBlock(block1_channels, block2_channels, stride=2,
                                  shortcut=shortcut, rng=rng)
        self.pool = nn.GlobalAvgPool2d()
        self.lstm1 = nn.LSTM(block1_channels, lstm1_hidden, rng=rng)
        self.fc1 = nn.Linear(lstm1_hidden, num_classes, rng=rng)
        self.lstm2 = nn.LSTM(block2_channels, lstm2_hidden, rng=rng)
        self.fc2 = nn.Linear(lstm2_hidden, num_classes, rng=rng)
        self.block1_channels = block1_channels

    def _fold_frames(self, clips: Tensor):
        """(N, T, 1, H, W) -> (N*T, 1, H, W) plus the (N, T) geometry."""
        n, t = clips.shape[0], clips.shape[1]
        return clips.reshape(n * t, *clips.shape[2:]), n, t

    def block1_features(self, clips: Tensor) -> Tensor:
        """Per-frame block-1 feature maps: (N*T, C1, H/2, W/2)."""
        folded, _, _ = self._fold_frames(clips)
        return self.block1(folded)

    def forward(self, clips: Tensor):
        """Both exits' logits for (N, T, 1, H, W) clips."""
        folded, n, t = self._fold_frames(clips)
        feature_maps = self.block1(folded)
        # Exit 1: per-frame pooled features -> LSTM1 -> FC1.
        pooled1 = self.pool(feature_maps).reshape(n, t, self.block1_channels)
        local_logits = self.fc1(self.lstm1.last_hidden(pooled1))
        # Exit 2: continue through block 2 from the same feature maps.
        deep_maps = self.block2(feature_maps)
        pooled2 = self.pool(deep_maps).reshape(n, t, deep_maps.shape[1])
        remote_logits = self.fc2(self.lstm2.last_hidden(pooled2))
        return local_logits, remote_logits

    def joint_loss(self, clips: Tensor, targets: np.ndarray,
                   local_weight: float = 0.5) -> Tensor:
        local_logits, remote_logits = self.forward(clips)
        return (local_weight * F.cross_entropy(local_logits, targets)
                + (1 - local_weight) * F.cross_entropy(remote_logits, targets))

    def feature_map_bytes(self, frames: int) -> int:
        """Bytes of block-1 feature maps shipped upstream per clip (fp32)."""
        half = self.image_size // 2
        return frames * self.block1_channels * half * half * 4

    def raw_clip_bytes(self, frames: int) -> int:
        return frames * self.image_size * self.image_size  # uint8 grayscale

    def _infer_chunk(self, chunk: np.ndarray, max_entropy: float) -> List[Dict]:
        """Entropy-gate one micro-batch; only escalated clips run block 2."""
        folded, n, t = self._fold_frames(Tensor(chunk))
        feature_maps = self.block1(folded)
        pooled1 = self.pool(feature_maps).reshape(n, t, self.block1_channels)
        local = self.fc1(self.lstm1.last_hidden(pooled1)).data
        entropies = -entropy_confidence(local)
        needs_remote = entropies > max_entropy
        predictions = local.argmax(axis=-1).astype(int)
        shipped = np.zeros(n, dtype=int)
        if needs_remote.any():
            map_shape = feature_maps.shape[1:]
            escalated = feature_maps.data.reshape(n, t, *map_shape)[needs_remote]
            deep = self.block2(Tensor(escalated.reshape(-1, *map_shape)))
            pooled2 = self.pool(deep).reshape(
                int(needs_remote.sum()), t, deep.shape[1])
            remote = self.fc2(self.lstm2.last_hidden(pooled2)).data
            predictions[needs_remote] = remote.argmax(axis=-1)
            shipped[needs_remote] = self.feature_map_bytes(t)
        exit_index = np.where(needs_remote, 2, 1)
        return [{
            "prediction": int(predictions[row]),
            "exit_index": int(exit_index[row]),
            "entropy": float(entropies[row]),
            "shipped_bytes": int(shipped[row]),
        } for row in range(n)]

    def infer(self, clips: Tensor, max_entropy: float,
              batch_size: Optional[int] = None) -> List[Dict]:
        """Entropy-gated early-exit inference (the Fig. 7 rule).

        Runs on the fast path: eval mode, no autograd, micro-batches of
        ``batch_size`` clips (all at once if None), and only escalated
        clips pay for the deep branch.
        """
        data = clips.data if isinstance(clips, Tensor) else np.asarray(clips)
        results: List[Dict] = []
        with observe_inference(type(self).__name__, int(data.shape[0])):
            with eval_mode(self), nn.no_grad():
                for chunk in iter_microbatches(data, batch_size):
                    results.extend(self._infer_chunk(chunk, max_entropy))
        return results


class ActionRecognitionApp:
    """Train/evaluate the Fig. 7 pipeline on synthetic behaviour clips."""

    def __init__(self, image_size: int = 16, frames: int = 6, seed: int = 0,
                 shortcut: str = "conv", runtime=None):
        self.runtime = runtime or get_runtime()
        self.clips = ActionClipGenerator(image_size=image_size,
                                         frames=frames, seed=seed)
        self.model = ActionEarlyExitModel(
            image_size=image_size,
            num_classes=self.clips.num_classes,
            shortcut=shortcut,
            rng=get_runtime().rng.np_child("apps.action.model", seed))
        self.seed = seed
        self.class_names = ACTION_CLASSES

    def train(self, clips_per_class: int = 6, epochs: int = 20,
              lr: float = 0.01, batch_size: int = 10) -> List[float]:
        data, labels = self.clips.dataset(clips_per_class)
        optimizer = nn.Adam(self.model.parameters(), lr=lr)
        rng = get_runtime().rng.np_child("apps.action.train.sgd", self.seed)
        losses = []
        for _ in range(epochs):
            order = rng.permutation(len(labels))
            epoch = []
            for start in range(0, len(labels), batch_size):
                batch = order[start:start + batch_size]
                optimizer.zero_grad()
                loss = self.model.joint_loss(Tensor(data[batch]), labels[batch])
                loss.backward()
                optimizer.step()
                epoch.append(loss.item())
            losses.append(float(np.mean(epoch)))
            self.runtime.registry.histogram(
                "app.action.epoch_loss", "per-epoch mean training loss"
            ).observe(losses[-1])
        return losses

    def exit_accuracies(self, clips_per_class: int = 4) -> Dict[str, float]:
        """Accuracy of each exit alone on fresh clips."""
        data, labels = self.clips.dataset(clips_per_class)
        self.model.eval()
        local, remote = self.model.forward(Tensor(data))
        self.model.train()
        return {
            "local": F.accuracy(local, labels),
            "remote": F.accuracy(remote, labels),
        }

    def entropy_sweep(self, max_entropies: Sequence[float],
                      clips_per_class: int = 4,
                      batch_size: Optional[int] = None) -> List[Dict]:
        """The Fig. 7 tradeoff: accuracy / offload per entropy threshold."""
        data, labels = self.clips.dataset(clips_per_class)
        rows = []
        for max_entropy in max_entropies:
            results = self.model.infer(Tensor(data), max_entropy=max_entropy,
                                       batch_size=batch_size)
            predictions = np.array([r["prediction"] for r in results])
            local = sum(1 for r in results if r["exit_index"] == 1)
            exits = self.runtime.registry.counter("app.action.exits")
            exits.inc(local, tier="local")
            exits.inc(len(results) - local, tier="server")
            rows.append({
                "max_entropy": max_entropy,
                "accuracy": float((predictions == labels).mean()),
                "local_fraction": local / len(results),
                "bytes_shipped": sum(r["shipped_bytes"] for r in results),
            })
        return rows

    def index_alerts(self, collection, results: Sequence[Dict],
                     camera_id: str, suspicious_classes: Sequence[int]
                     ) -> int:
        """Log recognized suspicious activity for the human operator.

        Mirrors the paper's flow: time, location (camera), activity type
        and exit tier are written to a database and an alert row is
        flagged for review.
        """
        alerts = 0
        for index, result in enumerate(results):
            if result["prediction"] in suspicious_classes:
                collection.insert({
                    "camera_id": camera_id,
                    "clip_index": index,
                    "activity": self.class_names[result["prediction"]],
                    "exit": result["exit_index"],
                    "entropy": result["entropy"],
                    "needs_review": True,
                })
                alerts += 1
        if alerts:
            self.runtime.registry.counter("app.action.alerts").inc(
                alerts, camera=camera_id)
        return alerts
