"""Suspicious behaviour / crime action recognition (Sec. IV-A-2)."""

from repro.apps.action.app import ActionEarlyExitModel, ActionRecognitionApp

__all__ = ["ActionEarlyExitModel", "ActionRecognitionApp"]
