"""The paper's applications (Sec. IV), built on the substrates.

- :mod:`repro.apps.vehicle` — vehicle detection & classification with the
  tiny/full YOLO early-exit split (Sec. IV-A-1, Figs. 5-6).
- :mod:`repro.apps.action` — suspicious-behaviour / crime-action
  recognition: ResNet + LSTM with an entropy-gated early exit
  (Sec. IV-A-2, Figs. 7-8).
- :mod:`repro.apps.social` — gang-network analysis and multimodal
  geo-temporal tweet triangulation (Sec. IV-B), plus the opioid-analytics
  future-work sketch (Sec. V).
- :mod:`repro.apps.fusion` — audio+video gunshot fusion via multimodal
  autoencoders and CCA (Sec. III-C).
- :mod:`repro.apps.drl` — DQN smart-camera PTZ control (Sec. III-D).
"""
