"""LSTM crime-rate forecasting (Sec. III-B temporal analysis).

The paper's RNN modules target time-series: "LSTM's capability of
discovering long-range correlations is particularly useful for time
series."  :class:`CrimeForecaster` trains an LSTM regressor on daily
per-district crime counts (from the open-city generator, with an injected
weekly seasonality) to predict the next day's count, against the two
standard naive baselines: persistence (tomorrow = today) and the
trailing-window moving average.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.rng import resolve_rng
from repro.runtime.core import get_runtime

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class LSTMRegressor(nn.Module):
    """LSTM over (N, T, 1) windows with a scalar linear head."""

    def __init__(self, hidden_size: int = 12,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "apps.forecast.crime.model")
        self.lstm = nn.LSTM(1, hidden_size, rng=rng)
        self.head = nn.Linear(hidden_size, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.lstm.last_hidden(x))


def seasonal_series(days: int, base: float = 12.0, weekly_amp: float = 5.0,
                    noise: float = 1.0, seed: int = 0) -> np.ndarray:
    """Daily counts with weekend peaks — the structure city crime shows."""
    rng = get_runtime().rng.np_child("apps.forecast.crime.series", seed)
    t = np.arange(days)
    series = (base + weekly_amp * np.sin(2 * np.pi * t / 7.0)
              + rng.normal(0, noise, days))
    return np.clip(series, 0, None)


def windows(series: Sequence[float], length: int
            ) -> Tuple[np.ndarray, np.ndarray]:
    """Sliding (window, next value) pairs for supervised training."""
    series = np.asarray(series, dtype=float)
    if length < 1:
        raise ValueError(f"window length must be >= 1: {length}")
    if len(series) <= length:
        raise ValueError(
            f"series of {len(series)} too short for window {length}")
    inputs = np.stack([series[i:i + length]
                       for i in range(len(series) - length)])
    targets = series[length:]
    return inputs[..., None], targets


class CrimeForecaster:
    """Train/evaluate next-day crime-count forecasting."""

    def __init__(self, window: int = 7, hidden_size: int = 12, seed: int = 0):
        self.window = window
        self.model = LSTMRegressor(hidden_size,
                                   rng=get_runtime().rng.np_child("apps.forecast.crime.model", seed))
        self._mean = 0.0
        self._std = 1.0

    def _normalize(self, values: np.ndarray) -> np.ndarray:
        return (values - self._mean) / self._std

    def _denormalize(self, values: np.ndarray) -> np.ndarray:
        return values * self._std + self._mean

    def fit(self, series: Sequence[float], epochs: int = 120,
            lr: float = 0.01) -> List[float]:
        inputs, targets = windows(series, self.window)
        self._mean = float(targets.mean())
        self._std = float(targets.std()) or 1.0
        x = self._normalize(inputs)
        y = self._normalize(targets).reshape(-1, 1)
        optimizer = nn.Adam(self.model.parameters(), lr=lr)
        losses = []
        for _ in range(epochs):
            optimizer.zero_grad()
            prediction = self.model(Tensor(x))
            loss = F.mse_loss(prediction, Tensor(y))
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        return losses

    def predict(self, series: Sequence[float]) -> np.ndarray:
        """One-step-ahead predictions for every window in ``series``."""
        inputs, _ = windows(series, self.window)
        self.model.eval()
        out = self.model(Tensor(self._normalize(inputs))).data[:, 0]
        self.model.train()
        return self._denormalize(out)

    def mae(self, series: Sequence[float]) -> float:
        _, targets = windows(series, self.window)
        predictions = self.predict(series)
        return float(np.abs(predictions - targets).mean())

    # -- baselines -----------------------------------------------------------
    @staticmethod
    def persistence_mae(series: Sequence[float], window: int) -> float:
        """Tomorrow = today."""
        _, targets = windows(series, window)
        inputs, _ = windows(series, window)
        last = inputs[:, -1, 0]
        return float(np.abs(last - targets).mean())

    @staticmethod
    def moving_average_mae(series: Sequence[float], window: int) -> float:
        """Tomorrow = mean of the trailing window."""
        inputs, targets = windows(series, window)
        means = inputs[:, :, 0].mean(axis=1)
        return float(np.abs(means - targets).mean())

    def compare(self, series: Sequence[float]) -> Dict[str, float]:
        """MAE of the LSTM vs both naive baselines on held-out data."""
        return {
            "lstm": self.mae(series),
            "persistence": self.persistence_mae(series, self.window),
            "moving_average": self.moving_average_mae(series, self.window),
        }
