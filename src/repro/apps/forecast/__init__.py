"""Temporal analysis: crime time-series forecasting (Sec. III-B)."""

from repro.apps.forecast.crime import CrimeForecaster, LSTMRegressor

__all__ = ["CrimeForecaster", "LSTMRegressor"]
