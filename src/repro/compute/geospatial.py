"""Geospatial processing over city records (the paper's spatial workloads).

The city is modelled on the unit square (matching the synthetic data
generators).  :class:`GridAggregator` rasterizes point records into density
grids — the "geospatial images" of Sec. III-A that CNNs consume — and
extracts hotspots; ``assign_districts`` spatially joins points to the
nearest district center.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class GridAggregator:
    """Rasterize [0,1]^2 points into a rows x cols density grid."""

    def __init__(self, rows: int = 8, cols: int = 8):
        if rows < 1 or cols < 1:
            raise ValueError(f"grid must be at least 1x1: {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    def _cell(self, point: Sequence[float]) -> Tuple[int, int]:
        x, y = point
        col = min(int(x * self.cols), self.cols - 1)
        row = min(int(y * self.rows), self.rows - 1)
        return row, col

    def aggregate(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """Counts per cell, shape (rows, cols)."""
        grid = np.zeros((self.rows, self.cols))
        for point in points:
            if not (0.0 <= point[0] <= 1.0 and 0.0 <= point[1] <= 1.0):
                raise ValueError(f"point outside the unit square: {point}")
            row, col = self._cell(point)
            grid[row, col] += 1
        return grid

    def density(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """Counts normalized to [0, 1] (a CNN-ready geospatial image)."""
        grid = self.aggregate(points)
        peak = grid.max()
        return grid / peak if peak > 0 else grid

    def hotspots(self, points: Sequence[Sequence[float]],
                 top: int = 3) -> List[Dict]:
        """The ``top`` densest cells with their centers and counts."""
        if top < 1:
            raise ValueError(f"top must be >= 1: {top}")
        grid = self.aggregate(points)
        flat = [(grid[r, c], r, c)
                for r in range(self.rows) for c in range(self.cols)]
        flat.sort(reverse=True)
        out = []
        for count, row, col in flat[:top]:
            if count == 0:
                break
            out.append({
                "row": row, "col": col, "count": int(count),
                "center": [(col + 0.5) / self.cols, (row + 0.5) / self.rows],
            })
        return out


def assign_districts(points: Sequence[Sequence[float]],
                     centers: Dict[int, Tuple[float, float]]) -> List[int]:
    """Spatial join: each point -> id of the nearest district center."""
    if not centers:
        raise ValueError("need at least one district center")
    ids = list(centers)
    matrix = np.array([centers[i] for i in ids])
    out = []
    for point in points:
        distances = ((matrix - np.asarray(point)) ** 2).sum(axis=1)
        out.append(ids[int(distances.argmin())])
    return out


def pairwise_distance_matrix(points: Sequence[Sequence[float]]) -> np.ndarray:
    """Euclidean distances between all point pairs (clustering input)."""
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise ValueError(f"expected (n, 2) points, got shape {array.shape}")
    diff = array[:, None, :] - array[None, :, :]
    return np.sqrt((diff ** 2).sum(axis=2))


def ripley_intensity(points: Sequence[Sequence[float]],
                     radius: float) -> float:
    """Mean number of neighbours within ``radius`` — a clustering measure.

    Higher than ``n * pi * r^2`` (the uniform expectation) indicates
    spatial clustering, the signature crime hotspots leave.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive: {radius}")
    array = np.asarray(points, dtype=float)
    n = len(array)
    if n < 2:
        return 0.0
    distances = pairwise_distance_matrix(array)
    neighbours = (distances <= radius).sum(axis=1) - 1  # exclude self
    return float(neighbours.mean())
