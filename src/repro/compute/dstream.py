"""Micro-batch stream processing over the broker (Spark Streaming role).

The paper's software layer supports "streaming processing" workloads
alongside batch.  :class:`StreamingContext` polls topics of a
:class:`~repro.streaming.broker.Broker` into fixed-size micro-batches;
a :class:`DStream` is a lazy chain of per-batch transformations plus
windowed aggregations, mirroring the Spark Streaming API shape
(map / filter / count_by_window / reduce_by_key_and_window).

Source streams consume with *manual* offset commits: a batch's offsets
are committed only after the whole DAG (every transformation, sink, and
window) has processed it, and a sink exception seeks back to the last
committed offsets — so a crashed micro-batch is redelivered instead of
lost, matching Spark Streaming's at-least-once recovery from a WAL.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from repro.streaming.broker import Broker, RebalanceError


class StreamingContext:
    """Drives micro-batches from broker topics through registered DStreams."""

    def __init__(self, bus: Broker, batch_max_records: int = 100):
        if batch_max_records < 1:
            raise ValueError(
                f"batch_max_records must be >= 1: {batch_max_records}")
        self.bus = bus
        self.batch_max_records = batch_max_records
        self._streams: List["DStream"] = []
        self.batches_run = 0

    def stream(self, topic: str, group: str = "streaming") -> "DStream":
        """A source DStream reading ``topic`` with its own consumer group."""
        consumer = self.bus.consumer(group, [topic], auto_commit=False)
        # Columnar poll: the batch's value column is already the
        # micro-batch list, with no Record objects in between.
        stream = DStream(
            self,
            source=lambda: consumer.poll_batch(self.batch_max_records).values,
            consumer=consumer)
        self._streams.append(stream)
        return stream

    def run_batch(self) -> int:
        """Process one micro-batch on every registered source stream.

        Returns the total number of source records consumed.
        """
        total = 0
        for stream in self._streams:
            total += stream._tick()
        self.batches_run += 1
        return total

    def run_until_idle(self, max_batches: int = 1000) -> int:
        """Run micro-batches until a batch consumes nothing."""
        total = 0
        for _ in range(max_batches):
            consumed = self.run_batch()
            total += consumed
            if consumed == 0:
                break
        return total


class DStream:
    """A discretized stream: per-batch transformations + sliding windows."""

    def __init__(self, context: StreamingContext,
                 source: Optional[Callable[[], List]] = None,
                 parent: Optional["DStream"] = None,
                 transform: Optional[Callable[[List], List]] = None,
                 consumer=None):
        self.context = context
        self._source = source
        self._parent = parent
        self._transform = transform
        self._consumer = consumer
        self._children: List["DStream"] = []
        self._sinks: List[Callable[[List], None]] = []
        self._window: Optional[Deque[List]] = None
        self._window_sinks: List[Callable[[List], None]] = []

    # -- transformations -----------------------------------------------------
    def _derive(self, transform: Callable[[List], List]) -> "DStream":
        child = DStream(self.context, parent=self, transform=transform)
        self._children.append(child)
        return child

    def map(self, fn: Callable) -> "DStream":
        return self._derive(lambda batch: [fn(x) for x in batch])

    def filter(self, predicate: Callable) -> "DStream":
        return self._derive(lambda batch: [x for x in batch if predicate(x)])

    def flat_map(self, fn: Callable) -> "DStream":
        return self._derive(
            lambda batch: [y for x in batch for y in fn(x)])

    # -- outputs --------------------------------------------------------------
    def foreach_batch(self, sink: Callable[[List], None]) -> "DStream":
        """Invoke ``sink(batch)`` on every (possibly empty) micro-batch."""
        self._sinks.append(sink)
        return self

    def window(self, batches: int) -> "DStream":
        """Keep the last ``batches`` micro-batches for windowed sinks."""
        if batches < 1:
            raise ValueError(f"window must cover >= 1 batches: {batches}")
        if self._window is None or self._window.maxlen != batches:
            self._window = deque(maxlen=batches)
        return self

    def foreach_window(self, sink: Callable[[List], None]) -> "DStream":
        """Invoke ``sink(flattened window contents)`` after each batch."""
        if self._window is None:
            raise RuntimeError("call window(n) before foreach_window")
        self._window_sinks.append(sink)
        return self

    def count_by_window(self, batches: int,
                        into: List[int]) -> "DStream":
        """Append the windowed record count to ``into`` each batch."""
        self.window(batches)
        return self.foreach_window(lambda records: into.append(len(records)))

    def reduce_by_key_and_window(self, key_fn: Callable, batches: int,
                                 into: List[Dict]) -> "DStream":
        """Append {key: count} over the window to ``into`` each batch."""
        self.window(batches)

        def sink(records):
            counts: Dict = defaultdict(int)
            for record in records:
                counts[key_fn(record)] += 1
            into.append(dict(counts))

        return self.foreach_window(sink)

    # -- execution ----------------------------------------------------------------
    def _tick(self) -> int:
        """Pull one micro-batch from the source and push it down the DAG.

        Offsets commit only after the whole DAG processed the batch; a
        sink exception seeks back to the committed offsets so the broker
        redelivers the batch on the next tick (at-least-once).
        """
        if self._source is None:
            raise RuntimeError("only source streams can tick")
        batch = self._source()
        try:
            self._push(batch)
        except Exception:
            if self._consumer is not None:
                self._consumer.seek_to_committed()
            raise
        if self._consumer is not None and batch:
            try:
                self._consumer.commit()
            except RebalanceError:
                # fenced by a membership change: the new owners will
                # redeliver this batch — duplicates, never loss
                pass
        return len(batch)

    def _push(self, batch: List) -> None:
        if self._transform is not None:
            batch = self._transform(batch)
        for sink in self._sinks:
            sink(list(batch))
        if self._window is not None:
            self._window.append(list(batch))
            flattened = [x for chunk in self._window for x in chunk]
            for sink in self._window_sinks:
                sink(flattened)
        for child in self._children:
            child._push(batch)
