"""MLlib-style machine learning over RDDs or arrays (Sec. II-C-3).

Traditional (non-deep) analytics for structured/annotated data: k-means
clustering (crime hotspots), logistic regression (incident triage),
feature scaling, and TF-IDF text features for the tweet pipeline.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.runtime.core import get_runtime

from repro.compute.rdd import RDD
from repro.nn.dtypes import ensure_float


def _as_matrix(data) -> np.ndarray:
    if isinstance(data, RDD):
        data = data.collect()
    matrix = ensure_float(data)
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D data, got shape {matrix.shape}")
    return matrix


class KMeans:
    """Lloyd's algorithm with k-means++ seeding."""

    def __init__(self, k: int, max_iterations: int = 50, seed: int = 0,
                 tolerance: float = 1e-6):
        if k < 1:
            raise ValueError(f"k must be >= 1: {k}")
        self.k = k
        self.max_iterations = max_iterations
        self.seed = seed
        self.tolerance = tolerance
        self.centers: Optional[np.ndarray] = None
        self.iterations_run = 0

    def fit(self, data) -> "KMeans":
        points = _as_matrix(data)
        if len(points) < self.k:
            raise ValueError(f"{len(points)} points cannot form {self.k} clusters")
        rng = get_runtime().rng.np_child("compute.mllib.kmeans", self.seed)
        centers = self._plus_plus_init(points, rng)
        for iteration in range(self.max_iterations):
            assignment = self._assign(points, centers)
            new_centers = centers.copy()
            for cluster in range(self.k):
                members = points[assignment == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
            shift = np.abs(new_centers - centers).max()
            centers = new_centers
            self.iterations_run = iteration + 1
            if shift < self.tolerance:
                break
        self.centers = centers
        return self

    def _plus_plus_init(self, points: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        centers = [points[rng.integers(len(points))]]
        for _ in range(1, self.k):
            distances = np.min(
                [((points - c) ** 2).sum(axis=1) for c in centers], axis=0)
            total = distances.sum()
            if total == 0:
                centers.append(points[rng.integers(len(points))])
                continue
            probabilities = distances / total
            centers.append(points[rng.choice(len(points), p=probabilities)])
        return np.array(centers)

    @staticmethod
    def _assign(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
        distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)

    def predict(self, data) -> np.ndarray:
        if self.centers is None:
            raise RuntimeError("KMeans must be fit before predict")
        return self._assign(_as_matrix(data), self.centers)

    def inertia(self, data) -> float:
        """Sum of squared distances to assigned centers."""
        points = _as_matrix(data)
        assignment = self.predict(points)
        return float(((points - self.centers[assignment]) ** 2).sum())


class LogisticRegression:
    """Binary logistic regression trained by full-batch gradient descent."""

    def __init__(self, lr: float = 0.1, iterations: int = 200,
                 l2: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be positive: {lr}")
        self.lr = lr
        self.iterations = iterations
        self.l2 = l2
        self.weights: Optional[np.ndarray] = None
        self.bias = 0.0

    def fit(self, data, labels=None) -> "LogisticRegression":
        """Fit on an RDD of (features, label) pairs or on (X, y) arrays."""
        if isinstance(data, RDD):
            pairs = data.collect()
            x = ensure_float([p[0] for p in pairs])
            y = ensure_float([p[1] for p in pairs])
        else:
            x = ensure_float(data)
            y = ensure_float(labels)
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("labels must be 0/1")
        n, d = x.shape
        self.weights = np.zeros(d)
        self.bias = 0.0
        for _ in range(self.iterations):
            z = x @ self.weights + self.bias
            probs = 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
            error = probs - y
            grad_w = x.T @ error / n + self.l2 * self.weights
            grad_b = error.mean()
            self.weights -= self.lr * grad_w
            self.bias -= self.lr * grad_b
        return self

    def predict_proba(self, x) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("model must be fit before predict")
        x = ensure_float(x)
        z = x @ self.weights + self.bias
        return 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))

    def predict(self, x) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(int)

    def accuracy(self, x, y) -> float:
        return float((self.predict(x) == np.asarray(y)).mean())


class StandardScaler:
    """Column-wise zero-mean / unit-variance scaling."""

    def __init__(self):
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, data) -> "StandardScaler":
        matrix = _as_matrix(data)
        self.mean = matrix.mean(axis=0)
        self.std = matrix.std(axis=0)
        self.std[self.std == 0] = 1.0
        return self

    def transform(self, data) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("scaler must be fit before transform")
        return (_as_matrix(data) - self.mean) / self.std

    def fit_transform(self, data) -> np.ndarray:
        return self.fit(data).transform(data)


_TOKEN_RE = re.compile(r"[a-z0-9#@']+")


def tokenize(text: str) -> List[str]:
    """Lowercase word/hashtag/mention tokens."""
    return _TOKEN_RE.findall(text.lower())


class TfIdf:
    """Term-frequency / inverse-document-frequency vectorizer.

    ``fit`` builds the vocabulary and document frequencies from an iterable
    of token lists; ``transform`` maps token lists to dense TF-IDF vectors.
    """

    def __init__(self, max_features: Optional[int] = None):
        self.max_features = max_features
        self.vocabulary: Dict[str, int] = {}
        self.idf: Optional[np.ndarray] = None

    def fit(self, documents: Iterable[Sequence[str]]) -> "TfIdf":
        documents = [list(doc) for doc in documents]
        if not documents:
            raise ValueError("cannot fit on zero documents")
        doc_frequency: Counter = Counter()
        for doc in documents:
            doc_frequency.update(set(doc))
        terms = sorted(doc_frequency, key=lambda t: (-doc_frequency[t], t))
        if self.max_features is not None:
            terms = terms[:self.max_features]
        self.vocabulary = {term: index for index, term in enumerate(terms)}
        n = len(documents)
        self.idf = np.array([
            math.log((1 + n) / (1 + doc_frequency[t])) + 1.0 for t in terms])
        return self

    def transform(self, documents: Iterable[Sequence[str]]) -> np.ndarray:
        if self.idf is None:
            raise RuntimeError("TfIdf must be fit before transform")
        documents = [list(doc) for doc in documents]
        matrix = np.zeros((len(documents), len(self.vocabulary)))
        for row, doc in enumerate(documents):
            counts = Counter(doc)
            length = max(len(doc), 1)
            for term, count in counts.items():
                column = self.vocabulary.get(term)
                if column is not None:
                    matrix[row, column] = count / length
        return matrix * self.idf

    def fit_transform(self, documents) -> np.ndarray:
        return self.fit(documents).transform(documents)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0 when either is zero)."""
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(a @ b / (na * nb))
