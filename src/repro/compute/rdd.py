"""Spark-style resilient distributed datasets.

An :class:`RDD` is a lazy, partitioned collection with a lineage of
transformations.  Narrow transformations (map/filter/flatMap) evaluate
partition-by-partition; wide transformations (reduceByKey, groupByKey,
join, distinct, sortBy) insert a *shuffle*: all parent partitions are
evaluated, records are hash-partitioned by key, and a new stage begins.
The :class:`SparkContext` counts shuffles and evaluated partitions so the
substrate benchmarks can report stage structure.

Fault-tolerance flavour: partitions are recomputed from lineage on demand;
``cache()`` pins computed partitions in memory.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.runtime import ParallelExecutor, get_runtime


class SparkContext:
    """Entry point: creates base RDDs and tracks execution metrics.

    Shuffle and partition counts live in the shared runtime registry
    (``compute.spark.shuffles`` / ``compute.spark.partitions_computed``,
    labeled per context); :attr:`shuffle_count` and
    :attr:`partitions_computed` are views over those series, so the
    existing benchmark API keeps working.

    With ``workers=N`` (or an explicit ``executor``), actions evaluate
    partitions through a
    :class:`~repro.runtime.parallel.ParallelExecutor`: collect/count/
    reduce and every shuffle's map side fan partition evaluation across
    N forked workers.  Results, cache contents and shuffle/partition
    counts are identical to the serial path for any worker count — the
    executor merges worker-side telemetry back in partition order.
    """

    def __init__(self, default_parallelism: int = 4, runtime=None,
                 workers: Optional[int] = None, executor=None):
        if default_parallelism < 1:
            raise ValueError(
                f"default_parallelism must be >= 1: {default_parallelism}")
        self.default_parallelism = default_parallelism
        self._rdd_ids = itertools.count()
        self.runtime = runtime or get_runtime()
        if executor is not None:
            self.executor = executor
        elif workers is not None:
            self.executor = ParallelExecutor(workers=workers,
                                             runtime=self.runtime)
        else:
            self.executor = None
        self._label = self.runtime.gensym("spark-ctx")
        registry = self.runtime.registry
        self._shuffles = registry.counter(
            "compute.spark.shuffles", "wide transformations executed")
        self._partitions = registry.counter(
            "compute.spark.partitions_computed", "partition evaluations")

    @property
    def shuffle_count(self) -> int:
        return int(self._shuffles.value(ctx=self._label))

    @property
    def partitions_computed(self) -> int:
        return int(self._partitions.value(ctx=self._label))

    def _record_shuffle(self) -> None:
        self._shuffles.inc(ctx=self._label)

    def _record_partition(self) -> None:
        self._partitions.inc(ctx=self._label)

    def parallelize(self, data: Iterable, num_partitions: Optional[int] = None
                    ) -> "RDD":
        items = list(data)
        n = self.default_parallelism if num_partitions is None else num_partitions
        if n < 1:
            raise ValueError(f"num_partitions must be >= 1: {n}")
        chunks: List[List] = [[] for _ in range(n)]
        for index, item in enumerate(items):
            chunks[index % n].append(item)
        return RDD(self, lambda i: iter(chunks[i]), n, name="parallelize")

    def text_file(self, dfs, path: str,
                  num_partitions: Optional[int] = None) -> "RDD":
        """Lines of a DFS file (or every file under a directory prefix)."""
        paths = [path] if dfs.exists(path) else dfs.listdir(path)
        lines: List[str] = []
        for p in paths:
            lines.extend(dfs.read(p).decode().splitlines())
        return self.parallelize(lines, num_partitions)


class _EmptyPartition:
    """Pickle-stable sentinel for a partition that yielded no items."""


class RDD:
    """A partitioned, lazily-evaluated dataset with recorded lineage.

    ``parents`` records the narrow-dependency graph (shuffle outputs
    start a new stage with no parents); actions walk it so that
    parallel partition evaluation can ship worker-side cache fills for
    every cached ancestor back to the main process.
    """

    def __init__(self, context: SparkContext,
                 compute: Callable[[int], Iterator],
                 num_partitions: int, name: str = "rdd",
                 parents: Tuple["RDD", ...] = ()):
        self.context = context
        self._compute = compute
        self.num_partitions = num_partitions
        self.name = name
        self.parents = tuple(parents)
        self.rdd_id = next(context._rdd_ids)
        self._cache: Optional[Dict[int, List]] = None

    # -- evaluation ----------------------------------------------------------
    def _iter_partition(self, index: int) -> Iterator:
        if self._cache is not None and index in self._cache:
            return iter(self._cache[index])
        self.context._record_partition()
        values = self._compute(index)
        if self._cache is not None:
            values = list(values)
            self._cache[index] = values
            return iter(values)
        return values

    def _lineage(self) -> List["RDD"]:
        """This RDD and every ancestor in its stage graph (deduplicated)."""
        seen = set()
        order: List[RDD] = []
        stack: List[RDD] = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            order.append(node)
            stack.extend(node.parents)
        return order

    def _evaluate_partitions(self, task_fn: Callable[[int], Any],
                             stage: str) -> List:
        """Run ``task_fn`` over every partition index, in index order.

        The fan-out path for actions: with a context executor the tasks
        run on pool workers and each task ships back, alongside its
        value, the partitions it filled into any cached ancestor's
        worker-side cache — so ``cache()`` keeps working across the
        process boundary exactly as it does serially.
        """
        executor = self.context.executor
        indices = list(range(self.num_partitions))
        if executor is None:
            return [task_fn(index) for index in indices]
        cached = [rdd for rdd in self._lineage() if rdd._cache is not None]

        def run_task(index: int):
            before = {rdd.rdd_id: frozenset(rdd._cache) for rdd in cached}
            value = task_fn(index)
            fills = {}
            for rdd in cached:
                fresh = {part: rdd._cache[part] for part in rdd._cache
                         if part not in before[rdd.rdd_id]}
                if fresh:
                    fills[rdd.rdd_id] = fresh
            return value, fills

        by_id = {rdd.rdd_id: rdd for rdd in cached}
        results = []
        for value, fills in executor.map_ordered(
                run_task, indices, label=f"{self.name}@{self.rdd_id}.{stage}"):
            for rdd_id, parts in fills.items():
                by_id[rdd_id]._cache.update(parts)
            results.append(value)
        return results

    def cache(self) -> "RDD":
        """Pin computed partitions in memory; returns self."""
        if self._cache is None:
            self._cache = {}
        return self

    @property
    def is_cached(self) -> bool:
        return self._cache is not None

    def getNumPartitions(self) -> int:
        return self.num_partitions

    def debug_string(self) -> str:
        """The lineage chain, root first (Spark's ``toDebugString`` role).

        Shuffle boundaries are visible as name segments (reduceByKey,
        groupByKey, join, sortBy) — each starts a new stage.
        """
        return (f"({self.num_partitions}) {self.name} "
                f"[rdd {self.rdd_id}"
                f"{', cached' if self.is_cached else ''}]")

    # -- narrow transformations -------------------------------------------------
    def map(self, fn: Callable) -> "RDD":
        return RDD(self.context,
                   lambda i: (fn(x) for x in self._iter_partition(i)),
                   self.num_partitions, name=f"{self.name}.map",
                   parents=(self,))

    def filter(self, predicate: Callable) -> "RDD":
        return RDD(self.context,
                   lambda i: (x for x in self._iter_partition(i) if predicate(x)),
                   self.num_partitions, name=f"{self.name}.filter",
                   parents=(self,))

    def flatMap(self, fn: Callable) -> "RDD":
        def compute(i):
            for item in self._iter_partition(i):
                yield from fn(item)
        return RDD(self.context, compute, self.num_partitions,
                   name=f"{self.name}.flatMap", parents=(self,))

    def mapPartitions(self, fn: Callable[[Iterator], Iterator]) -> "RDD":
        # The stage id in the name keeps executor task labels unambiguous
        # when the same lineage applies mapPartitions more than once.
        return RDD(self.context, lambda i: iter(fn(self._iter_partition(i))),
                   self.num_partitions,
                   name=f"{self.name}.mapPartitions@{self.rdd_id}",
                   parents=(self,))

    def mapPartitionsWithIndex(
            self, fn: Callable[[int, Iterator], Iterable]) -> "RDD":
        """Like :meth:`mapPartitions`, but ``fn(index, iterator)`` also
        receives the partition index — the stage-local task id, which is
        what parallel-executor task labels and per-partition seeding key
        on."""
        return RDD(self.context,
                   lambda i: iter(fn(i, self._iter_partition(i))),
                   self.num_partitions,
                   name=f"{self.name}.mapPartitionsWithIndex@{self.rdd_id}",
                   parents=(self,))

    def mapValues(self, fn: Callable) -> "RDD":
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def keyBy(self, fn: Callable) -> "RDD":
        return self.map(lambda x: (fn(x), x))

    def union(self, other: "RDD") -> "RDD":
        mine = self.num_partitions

        def compute(i):
            if i < mine:
                return self._iter_partition(i)
            return other._iter_partition(i - mine)

        return RDD(self.context, compute, mine + other.num_partitions,
                   name=f"{self.name}.union", parents=(self, other))

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        rng_context = self.context.runtime.rng

        def compute(i):
            rng = rng_context.child("rdd.sample", seed, i)
            return (x for x in self._iter_partition(i)
                    if rng.random() < fraction)

        return RDD(self.context, compute, self.num_partitions,
                   name=f"{self.name}.sample", parents=(self,))

    # -- shuffles (wide transformations) -------------------------------------------
    def _shuffle_by_key(self, num_partitions: Optional[int] = None
                        ) -> List[List[Tuple]]:
        """Materialize and hash-partition (key, value) records.

        The map side (evaluate a partition, bucket its records by key
        hash) fans out across the context executor; the buckets are
        concatenated in partition order, so the shuffled record order —
        and therefore every downstream reduce — matches the serial path
        exactly.  One shuffle is recorded regardless of worker count.
        """
        self.context._record_shuffle()
        n = num_partitions or self.num_partitions

        def bucket_partition(index: int) -> List[List[Tuple]]:
            buckets: List[List[Tuple]] = [[] for _ in range(n)]
            for key, value in self._iter_partition(index):
                buckets[hash(key) % n].append((key, value))
            return buckets

        per_partition = self._evaluate_partitions(bucket_partition, "shuffle")
        return [[pair for part in per_partition for pair in part[bucket]]
                for bucket in range(n)]

    def reduceByKey(self, fn: Callable,
                    num_partitions: Optional[int] = None) -> "RDD":
        buckets = self._shuffle_by_key(num_partitions)
        reduced: List[List[Tuple]] = []
        for bucket in buckets:
            acc: Dict = {}
            for key, value in bucket:
                acc[key] = fn(acc[key], value) if key in acc else value
            reduced.append(list(acc.items()))
        return RDD(self.context, lambda i: iter(reduced[i]), len(reduced),
                   name=f"{self.name}.reduceByKey")

    def groupByKey(self, num_partitions: Optional[int] = None) -> "RDD":
        buckets = self._shuffle_by_key(num_partitions)
        grouped: List[List[Tuple]] = []
        for bucket in buckets:
            acc: Dict[Any, List] = defaultdict(list)
            for key, value in bucket:
                acc[key].append(value)
            grouped.append([(k, list(v)) for k, v in acc.items()])
        return RDD(self.context, lambda i: iter(grouped[i]), len(grouped),
                   name=f"{self.name}.groupByKey")

    def join(self, other: "RDD",
             num_partitions: Optional[int] = None) -> "RDD":
        """Inner join of two (key, value) RDDs -> (key, (left, right))."""
        n = num_partitions or max(self.num_partitions, other.num_partitions)
        left = self._shuffle_by_key(n)
        right = other._shuffle_by_key(n)
        joined: List[List[Tuple]] = []
        for bucket_index in range(n):
            left_map: Dict[Any, List] = defaultdict(list)
            for key, value in left[bucket_index]:
                left_map[key].append(value)
            rows = []
            for key, rvalue in right[bucket_index]:
                for lvalue in left_map.get(key, ()):
                    rows.append((key, (lvalue, rvalue)))
            joined.append(rows)
        return RDD(self.context, lambda i: iter(joined[i]), n,
                   name=f"{self.name}.join")

    def distinct(self) -> "RDD":
        deduped = self.map(lambda x: (x, None)).reduceByKey(lambda a, b: a)
        return deduped.map(lambda kv: kv[0])

    def sortBy(self, key_fn: Callable, descending: bool = False) -> "RDD":
        self.context._record_shuffle()
        items = sorted(self._collect_all(), key=key_fn, reverse=descending)
        n = self.num_partitions
        chunk = max(1, (len(items) + n - 1) // n)
        chunks = [items[i:i + chunk] for i in range(0, max(len(items), 1), chunk)]
        while len(chunks) < n:
            chunks.append([])
        return RDD(self.context, lambda i: iter(chunks[i]), len(chunks),
                   name=f"{self.name}.sortBy")

    # -- actions ------------------------------------------------------------------
    def _collect_all(self) -> List:
        parts = self._evaluate_partitions(
            lambda index: list(self._iter_partition(index)), "collect")
        out: List = []
        for part in parts:
            out.extend(part)
        return out

    def collect(self) -> List:
        return self._collect_all()

    def count(self) -> int:
        return sum(self._evaluate_partitions(
            lambda index: sum(1 for _ in self._iter_partition(index)),
            "count"))

    def countByKey(self) -> Dict:
        counts: Dict = defaultdict(int)
        for key, _ in self._collect_all():
            counts[key] += 1
        return dict(counts)

    def reduce(self, fn: Callable):
        """Fold all items with ``fn``, fanning a partial fold per partition.

        Like Spark's ``reduce``, ``fn`` must be associative: each
        partition is folded left-to-right where it is evaluated and the
        per-partition partials are folded in partition order, which for
        associative ``fn`` equals the serial left fold.
        """
        def fold(index: int):
            acc: Any = _EmptyPartition()
            for item in self._iter_partition(index):
                acc = item if isinstance(acc, _EmptyPartition) else fn(acc, item)
            return acc

        partials = [value
                    for value in self._evaluate_partitions(fold, "reduce")
                    if not isinstance(value, _EmptyPartition)]
        if not partials:
            raise ValueError("reduce of an empty RDD")
        acc = partials[0]
        for part in partials[1:]:
            acc = fn(acc, part)
        return acc

    def take(self, n: int) -> List:
        out: List = []
        for index in range(self.num_partitions):
            for item in self._iter_partition(index):
                out.append(item)
                if len(out) >= n:
                    return out
        return out

    def first(self):
        taken = self.take(1)
        if not taken:
            raise ValueError("first() on an empty RDD")
        return taken[0]

    def sum(self):
        return sum(self._collect_all())

    def mean(self) -> float:
        items = self._collect_all()
        if not items:
            raise ValueError("mean of an empty RDD")
        return sum(items) / len(items)

    def foreach(self, fn: Callable) -> None:
        for item in self._collect_all():
            fn(item)
