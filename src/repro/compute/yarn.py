"""YARN-style cluster resource management.

A :class:`ResourceManager` owns a set of :class:`NodeManager` machines and
grants :class:`Container` leases against their vcore/memory capacity.
Requests that cannot be placed are queued; releasing capacity re-drives the
queue.  Two scheduling policies from the Hadoop ecosystem:

- ``fifo`` — strict arrival order;
- ``capacity`` — named queues with guaranteed cluster fractions; a queue
  using less than its guarantee gets priority.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.runtime import get_runtime


class YarnError(Exception):
    """Raised for invalid scheduling requests."""


@dataclass
class ResourceRequest:
    """A pending container request."""

    app_id: str
    vcores: int
    memory_mb: int
    queue: str = "default"
    on_grant: Optional[Callable[["Container"], None]] = None


@dataclass
class Container:
    """A granted lease of vcores/memory on one node."""

    container_id: int
    node: "NodeManager"
    app_id: str
    vcores: int
    memory_mb: int
    queue: str = "default"


class NodeManager:
    """One worker machine's resource accounting."""

    def __init__(self, name: str, vcores: int, memory_mb: int):
        if vcores < 1 or memory_mb < 1:
            raise YarnError(f"node {name} needs positive capacity")
        self.name = name
        self.vcores = vcores
        self.memory_mb = memory_mb
        self.used_vcores = 0
        self.used_memory_mb = 0
        self.alive = True

    @property
    def free_vcores(self) -> int:
        return self.vcores - self.used_vcores

    @property
    def free_memory_mb(self) -> int:
        return self.memory_mb - self.used_memory_mb

    def fits(self, request: ResourceRequest) -> bool:
        return (self.alive
                and self.free_vcores >= request.vcores
                and self.free_memory_mb >= request.memory_mb)

    def _allocate(self, request: ResourceRequest) -> None:
        self.used_vcores += request.vcores
        self.used_memory_mb += request.memory_mb

    def _release(self, container: Container) -> None:
        self.used_vcores -= container.vcores
        self.used_memory_mb -= container.memory_mb
        if self.used_vcores < 0 or self.used_memory_mb < 0:
            raise YarnError(f"double release on node {self.name}")


class ResourceManager:
    """Grants containers; queues what does not fit.

    Parameters
    ----------
    scheduler:
        ``"fifo"`` or ``"capacity"``.
    queue_capacity:
        For the capacity scheduler: {queue_name: fraction}; fractions should
        sum to ~1.0.
    """

    def __init__(self, scheduler: str = "fifo",
                 queue_capacity: Optional[Dict[str, float]] = None,
                 runtime=None):
        if scheduler not in ("fifo", "capacity"):
            raise YarnError(f"unknown scheduler: {scheduler}")
        if scheduler == "capacity" and not queue_capacity:
            raise YarnError("capacity scheduler needs queue_capacity")
        self.scheduler = scheduler
        self.queue_capacity = dict(queue_capacity or {"default": 1.0})
        self._nodes: Dict[str, NodeManager] = {}
        self._pending: List[ResourceRequest] = []
        self._containers: Dict[int, Container] = {}
        self._ids = itertools.count(1)
        self.runtime = runtime or get_runtime()
        registry = self.runtime.registry
        self._rm_label = self.runtime.gensym("yarn-rm")
        self._submitted = registry.counter(
            "compute.yarn.requests_submitted", "container requests received")
        self._granted = registry.counter(
            "compute.yarn.containers_granted", "container leases granted")
        self._released = registry.counter(
            "compute.yarn.containers_released", "container leases released")
        self._pending_gauge = registry.gauge(
            "compute.yarn.pending_requests", "requests waiting for capacity")
        self._util_gauge = registry.gauge(
            "compute.yarn.utilization", "live-vcore utilization fraction")

    def _observe(self) -> None:
        self._pending_gauge.set(len(self._pending), rm=self._rm_label)
        self._util_gauge.set(self.utilization(), rm=self._rm_label)

    # -- membership ----------------------------------------------------------
    def register_node(self, node: NodeManager) -> None:
        if node.name in self._nodes:
            raise YarnError(f"duplicate node: {node.name}")
        self._nodes[node.name] = node

    def nodes(self) -> List[NodeManager]:
        return list(self._nodes.values())

    # -- capacity accounting --------------------------------------------------
    @property
    def total_vcores(self) -> int:
        return sum(n.vcores for n in self._nodes.values() if n.alive)

    def vcores_used_by_queue(self, queue: str) -> int:
        return sum(c.vcores for c in self._containers.values()
                   if c.queue == queue)

    def utilization(self) -> float:
        total = self.total_vcores
        if total == 0:
            return 0.0
        used = sum(n.used_vcores for n in self._nodes.values() if n.alive)
        return used / total

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def running_containers(self) -> List[Container]:
        return list(self._containers.values())

    # -- scheduling -----------------------------------------------------------
    def submit(self, request: ResourceRequest) -> Optional[Container]:
        """Try to place a request; queue it otherwise.

        Returns the granted container or None if queued.
        """
        if request.vcores < 1 or request.memory_mb < 1:
            raise YarnError("requests need positive resources")
        if (self.scheduler == "capacity"
                and request.queue not in self.queue_capacity):
            raise YarnError(f"unknown queue: {request.queue}")
        self._submitted.inc(rm=self._rm_label, queue=request.queue)
        self._pending.append(request)
        granted = self._drive()
        for container in granted:
            if container.app_id == request.app_id and request not in self._pending:
                return container
        return None

    def release(self, container: Container) -> List[Container]:
        """Free a container and re-drive the queue; returns new grants."""
        if container.container_id not in self._containers:
            raise YarnError(f"unknown container: {container.container_id}")
        del self._containers[container.container_id]
        container.node._release(container)
        self._released.inc(rm=self._rm_label, queue=container.queue)
        return self._drive()

    def _ordered_pending(self) -> List[ResourceRequest]:
        if self.scheduler == "fifo":
            return list(self._pending)

        # Capacity: sort by how far each queue is below its guarantee.
        def headroom(request: ResourceRequest) -> float:
            guaranteed = self.queue_capacity[request.queue] * self.total_vcores
            used = self.vcores_used_by_queue(request.queue)
            return used - guaranteed  # more negative = more underserved

        return sorted(self._pending, key=headroom)

    def _drive(self) -> List[Container]:
        granted: List[Container] = []
        progress = True
        while progress:
            progress = False
            for request in self._ordered_pending():
                node = self._pick_node(request)
                if node is None:
                    if self.scheduler == "fifo":
                        break  # strict ordering: head of line blocks
                    continue
                node._allocate(request)
                container = Container(
                    container_id=next(self._ids), node=node,
                    app_id=request.app_id, vcores=request.vcores,
                    memory_mb=request.memory_mb, queue=request.queue)
                self._containers[container.container_id] = container
                self._pending.remove(request)
                granted.append(container)
                self._granted.inc(rm=self._rm_label, queue=request.queue)
                if request.on_grant is not None:
                    request.on_grant(container)
                progress = True
                break
        self._observe()
        return granted

    def _pick_node(self, request: ResourceRequest) -> Optional[NodeManager]:
        candidates = [n for n in self._nodes.values() if n.fits(request)]
        if not candidates:
            return None
        # Most-free-first keeps load balanced.
        candidates.sort(key=lambda n: (-n.free_vcores, n.name))
        return candidates[0]
