"""GraphX-style property graphs (Sec. II-C-2, powering Sec. IV-B).

A :class:`Graph` holds attributed vertices and edges and provides the
analytics the paper's social-network application needs: degree statistics,
n-degree neighborhoods (first/second-degree criminal associates), pagerank,
connected components, triangle counting, and a Pregel-ish
``aggregate_messages`` primitive.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple


class Graph:
    """An undirected-by-default property graph.

    Parameters
    ----------
    vertices:
        {vertex_id: attribute}.
    edges:
        Iterable of (src, dst) or (src, dst, attribute) tuples.
    directed:
        When False (default), each edge is traversable both ways.
    """

    def __init__(self, vertices: Dict[Any, Any],
                 edges: Iterable[Tuple], directed: bool = False):
        self.directed = directed
        self.vertices: Dict[Any, Any] = dict(vertices)
        self.edges: List[Tuple[Any, Any, Any]] = []
        self._adjacency: Dict[Any, Set] = defaultdict(set)
        for edge in edges:
            if len(edge) == 2:
                src, dst = edge
                attr = None
            elif len(edge) == 3:
                src, dst, attr = edge
            else:
                raise ValueError(f"edges must be 2- or 3-tuples: {edge!r}")
            for endpoint in (src, dst):
                if endpoint not in self.vertices:
                    raise KeyError(f"edge endpoint {endpoint!r} not a vertex")
            self.edges.append((src, dst, attr))
            self._adjacency[src].add(dst)
            if not directed:
                self._adjacency[dst].add(src)

    # -- basics ---------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbors(self, vertex: Any) -> Set:
        if vertex not in self.vertices:
            raise KeyError(f"unknown vertex: {vertex!r}")
        return set(self._adjacency.get(vertex, set()))

    def degrees(self) -> Dict[Any, int]:
        return {v: len(self._adjacency.get(v, ())) for v in self.vertices}

    def mean_degree(self) -> float:
        degrees = self.degrees()
        return sum(degrees.values()) / len(degrees) if degrees else 0.0

    # -- neighborhoods (first/second-degree associates, Sec. IV-B) -----------------
    def n_degree_neighborhood(self, vertex: Any, depth: int,
                              include_self: bool = False) -> Set:
        """All vertices within ``depth`` hops of ``vertex``.

        ``depth=1`` is the first-degree associate set; ``depth=2`` adds the
        second-degree associates reached through a shared co-offender.
        """
        if depth < 0:
            raise ValueError(f"depth must be >= 0: {depth}")
        if vertex not in self.vertices:
            raise KeyError(f"unknown vertex: {vertex!r}")
        seen = {vertex}
        frontier = {vertex}
        for _ in range(depth):
            frontier = {n for v in frontier for n in self._adjacency.get(v, ())
                        } - seen
            seen |= frontier
        if not include_self:
            seen.discard(vertex)
        return seen

    def shortest_path_length(self, source: Any, target: Any) -> Optional[int]:
        """BFS hop count, or None when unreachable."""
        if source not in self.vertices or target not in self.vertices:
            raise KeyError("unknown vertex")
        if source == target:
            return 0
        queue = deque([(source, 0)])
        seen = {source}
        while queue:
            vertex, distance = queue.popleft()
            for neighbor in self._adjacency.get(vertex, ()):
                if neighbor == target:
                    return distance + 1
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append((neighbor, distance + 1))
        return None

    # -- global analytics -------------------------------------------------------
    def pagerank(self, damping: float = 0.85, iterations: int = 30
                 ) -> Dict[Any, float]:
        """Power-iteration pagerank; ranks sum to ~1."""
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1): {damping}")
        n = self.num_vertices
        if n == 0:
            return {}
        ranks = {v: 1.0 / n for v in self.vertices}
        out_degree = {v: len(self._adjacency.get(v, ())) for v in self.vertices}
        for _ in range(iterations):
            incoming: Dict[Any, float] = defaultdict(float)
            dangling = 0.0
            for vertex, rank in ranks.items():
                if out_degree[vertex] == 0:
                    dangling += rank
                    continue
                share = rank / out_degree[vertex]
                for neighbor in self._adjacency[vertex]:
                    incoming[neighbor] += share
            base = (1.0 - damping) / n + damping * dangling / n
            ranks = {v: base + damping * incoming[v] for v in self.vertices}
        return ranks

    def connected_components(self) -> Dict[Any, int]:
        """{vertex: component_id}; ids are 0..k-1 by discovery order."""
        component: Dict[Any, int] = {}
        next_id = 0
        for start in self.vertices:
            if start in component:
                continue
            queue = deque([start])
            component[start] = next_id
            while queue:
                vertex = queue.popleft()
                for neighbor in self._adjacency.get(vertex, ()):
                    if neighbor not in component:
                        component[neighbor] = next_id
                        queue.append(neighbor)
            next_id += 1
        return component

    def num_components(self) -> int:
        components = self.connected_components()
        return len(set(components.values())) if components else 0

    def triangle_count(self) -> int:
        """Number of distinct triangles; requires an undirected graph."""
        if self.directed:
            raise ValueError("triangle_count requires an undirected graph")
        count = 0
        for vertex in self.vertices:
            neighbors = self._adjacency.get(vertex, set())
            for a in neighbors:
                for b in neighbors:
                    if a < b and b in self._adjacency.get(a, set()):
                        count += 1
        return count // 3

    def subgraph(self, vertex_ids: Iterable) -> "Graph":
        keep = set(vertex_ids)
        vertices = {v: attr for v, attr in self.vertices.items() if v in keep}
        edges = [(s, d, a) for s, d, a in self.edges
                 if s in keep and d in keep]
        return Graph(vertices, edges, directed=self.directed)

    def aggregate_messages(self,
                           send: Callable[[Any, Any, Any], Iterable[Tuple[Any, Any]]],
                           merge: Callable[[Any, Any], Any]) -> Dict[Any, Any]:
        """Pregel-style primitive: per-edge ``send`` yields (vertex, message)
        pairs; messages to the same vertex are folded with ``merge``."""
        inbox: Dict[Any, Any] = {}
        for src, dst, attr in self.edges:
            for target, message in send(src, dst, attr):
                if target in inbox:
                    inbox[target] = merge(inbox[target], message)
                else:
                    inbox[target] = message
        return inbox
