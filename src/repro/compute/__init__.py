"""Distributed compute substrates (Sec. II-C-2).

- :mod:`repro.compute.yarn` — resource manager / node managers / containers
  with FIFO and capacity scheduling (the Apache YARN role).
- :mod:`repro.compute.rdd` — lazily-evaluated resilient distributed
  datasets with narrow/wide dependencies, shuffles and caching (the Apache
  Spark role).
- :mod:`repro.compute.mllib` — distributed-style ML: k-means, logistic
  regression, scalers, TF-IDF (the Spark MLlib role).
- :mod:`repro.compute.graphx` — property graphs with pagerank, connected
  components and n-degree neighborhoods (the GraphX role; powers the
  Sec. IV-B gang-network analysis).
"""

from repro.compute.yarn import (
    Container,
    NodeManager,
    ResourceManager,
    ResourceRequest,
    YarnError,
)
from repro.compute.rdd import RDD, SparkContext
from repro.compute.mllib import (
    KMeans,
    LogisticRegression,
    StandardScaler,
    TfIdf,
    tokenize,
)
from repro.compute.graphx import Graph
from repro.compute.dstream import DStream, StreamingContext
from repro.compute.geospatial import (
    GridAggregator,
    assign_districts,
    pairwise_distance_matrix,
    ripley_intensity,
)

__all__ = [
    "ResourceManager", "NodeManager", "Container", "ResourceRequest", "YarnError",
    "SparkContext", "RDD",
    "KMeans", "LogisticRegression", "StandardScaler", "TfIdf", "tokenize",
    "Graph",
    "StreamingContext", "DStream",
    "GridAggregator", "assign_districts", "pairwise_distance_matrix",
    "ripley_intensity",
]
