"""Failure injection for simulated machines.

City-scale deployments lose edge devices and datanodes constantly; the
paper's storage layer (HDFS-style replication, Sec. II-B-2) exists to
tolerate exactly that.  :class:`FailureInjector` drives deterministic,
seedable crash/recover schedules against any collection of objects that
expose an ``alive`` flag (e.g. :class:`repro.cluster.machines.Machine` or a
DFS datanode).  Every injection lands in the shared runtime as a
structured event (``cluster.failure`` / ``cluster.recovery``) and a
counter, so experiments can correlate failures with latency spikes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.runtime import get_runtime


def _target_name(target) -> str:
    return getattr(target, "name", type(target).__name__)


class FailureInjector:
    """Deterministic, seedable crash and recovery scheduling.

    Parameters
    ----------
    targets:
        Objects with a mutable ``alive`` attribute.
    seed:
        RNG seed; the same seed (under the same runtime seed) reproduces
        the same failure schedule.  The stream is derived from the
        runtime's :class:`~repro.runtime.RngContext` under the scope
        ``("cluster.failures", seed)``.
    on_fail / on_recover:
        Optional callbacks invoked with the affected target, used by e.g.
        the DFS namenode to trigger re-replication.
    runtime:
        Observability runtime; defaults to the installed one.
    """

    def __init__(self, targets: Sequence, seed: int = 0,
                 on_fail: Optional[Callable] = None,
                 on_recover: Optional[Callable] = None,
                 runtime=None):
        if not targets:
            raise ValueError("need at least one failure target")
        self.targets = list(targets)
        self.runtime = runtime or get_runtime()
        self._rng = self.runtime.rng.child("cluster.failures", seed)
        self.on_fail = on_fail
        self.on_recover = on_recover
        self.failed: List = []
        self.events: List[tuple] = []  # (kind, target) history

    def fail_one(self):
        """Crash one uniformly-chosen live target; returns it (or None)."""
        live = [t for t in self.targets if t.alive]
        if not live:
            return None
        victim = self._rng.choice(live)
        victim.alive = False
        self.failed.append(victim)
        self.events.append(("fail", victim))
        self.runtime.registry.counter("cluster.failures.injected").inc()
        self.runtime.events.emit("cluster.failure",
                                 target=_target_name(victim))
        if self.on_fail is not None:
            self.on_fail(victim)
        return victim

    def fail_fraction(self, fraction: float) -> List:
        """Crash ``fraction`` of currently-live targets (rounded down)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        live = [t for t in self.targets if t.alive]
        count = int(len(live) * fraction)
        return [victim for victim in (self.fail_one() for _ in range(count))
                if victim is not None]

    def recover_one(self):
        """Bring the oldest failed target back; returns it (or None)."""
        if not self.failed:
            return None
        target = self.failed.pop(0)
        target.alive = True
        self.events.append(("recover", target))
        self.runtime.registry.counter("cluster.failures.recovered").inc()
        self.runtime.events.emit("cluster.recovery",
                                 target=_target_name(target))
        if self.on_recover is not None:
            self.on_recover(target)
        return target

    def recover_all(self) -> int:
        count = 0
        while self.failed:
            self.recover_one()
            count += 1
        return count

    @property
    def live_count(self) -> int:
        return sum(1 for t in self.targets if t.alive)
