"""Failure injection for simulated machines.

City-scale deployments lose edge devices and datanodes constantly; the
paper's storage layer (HDFS-style replication, Sec. II-B-2) exists to
tolerate exactly that.  :class:`FailureInjector` drives deterministic,
seedable crash/recover schedules against any collection of objects that
expose an ``alive`` flag (e.g. :class:`repro.cluster.machines.Machine` or a
DFS datanode).  Every injection lands in the shared runtime as a
structured event (``cluster.failure`` / ``cluster.recovery``) and a
counter, so experiments can correlate failures with latency spikes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.runtime import get_runtime


def _target_name(target) -> str:
    return getattr(target, "name", type(target).__name__)


class FailureInjector:
    """Deterministic, seedable crash and recovery scheduling.

    Parameters
    ----------
    targets:
        Objects with a mutable ``alive`` attribute.
    seed:
        RNG seed; the same seed (under the same runtime seed) reproduces
        the same failure schedule.  The stream is derived from the
        runtime's :class:`~repro.runtime.RngContext` under the scope
        ``("cluster.failures", seed)``.
    on_fail / on_recover:
        Optional callbacks invoked with the affected target, used by e.g.
        the DFS namenode to trigger re-replication.
    runtime:
        Observability runtime; defaults to the installed one.
    """

    def __init__(self, targets: Sequence, seed: int = 0,
                 on_fail: Optional[Callable] = None,
                 on_recover: Optional[Callable] = None,
                 runtime=None):
        if not targets:
            raise ValueError("need at least one failure target")
        self.targets = list(targets)
        self.runtime = runtime or get_runtime()
        self._rng = self.runtime.rng.child("cluster.failures", seed)
        self.on_fail = on_fail
        self.on_recover = on_recover
        self.failed: List = []
        self.events: List[tuple] = []  # (kind, target) history

    def fail_one(self):
        """Crash one uniformly-chosen live target; returns it (or None)."""
        live = [t for t in self.targets if t.alive]
        if not live:
            return None
        victim = self._rng.choice(live)
        victim.alive = False
        self.failed.append(victim)
        self.events.append(("fail", victim))
        self.runtime.registry.counter("cluster.failures.injected").inc()
        self.runtime.events.emit("cluster.failure",
                                 target=_target_name(victim))
        if self.on_fail is not None:
            self.on_fail(victim)
        return victim

    def fail_fraction(self, fraction: float) -> List:
        """Crash ``fraction`` of currently-live targets (rounded down)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        live = [t for t in self.targets if t.alive]
        count = int(len(live) * fraction)
        return [victim for victim in (self.fail_one() for _ in range(count))
                if victim is not None]

    def recover(self, target):
        """Bring a *specific* failed target back; returns it.

        Raises :class:`ValueError` when the target is not currently
        failed — recovering a live machine would silently desynchronize
        the ``failed`` ledger from the targets' ``alive`` flags.
        """
        if target not in self.failed:
            raise ValueError(
                f"{_target_name(target)} is not currently failed")
        self.failed.remove(target)
        target.alive = True
        self.events.append(("recover", target))
        self.runtime.registry.counter("cluster.failures.recovered").inc()
        self.runtime.events.emit("cluster.recovery",
                                 target=_target_name(target))
        if self.on_recover is not None:
            self.on_recover(target)
        return target

    def recover_one(self):
        """Bring the oldest failed target back; returns it (or None)."""
        if not self.failed:
            return None
        return self.recover(self.failed[0])

    def recover_all(self) -> int:
        count = 0
        while self.failed:
            self.recover_one()
            count += 1
        return count

    @property
    def live_count(self) -> int:
        return sum(1 for t in self.targets if t.alive)


class FailureProcess:
    """Seeded crash/recover scheduling on the simulation clock.

    Where :class:`FailureInjector` flips liveness instantly (wall-clock
    tests, DFS re-replication drills), ``FailureProcess`` makes machine
    failure a first-class *event inside the DES*: crash and recovery
    times are drawn from exponential distributions on a runtime-derived
    stream and executed as simulation events, so the injector's
    ``cluster.failure`` / ``cluster.recovery`` records carry sim-clock
    timestamps and identically-seeded runs replay the same schedule
    byte for byte.

    Parameters
    ----------
    env:
        The :class:`~repro.cluster.sim.Environment` to schedule on.
    targets:
        Objects with a mutable ``alive`` attribute (machines, datanodes).
    seed:
        Drives both the victim choice (via the wrapped injector, scope
        ``("cluster.failures", seed)``) and the crash/repair timing
        (scope ``("cluster.failures.process", seed)``).
    mean_time_to_failure_s:
        Mean of the exponential delay between consecutive crash draws.
    mean_time_to_repair_s:
        Mean exponential downtime before a victim recovers; ``None``
        means victims stay dead.
    max_failures / horizon_s:
        Bounds on the schedule.  At least one must be set — an unbounded
        schedule would keep the event queue non-empty forever and
        ``env.run()`` could never drain.
    on_fail / on_recover:
        Forwarded to the wrapped :class:`FailureInjector` (e.g. the fog
        fabric uses ``on_fail`` to interrupt in-flight work).
    """

    def __init__(self, env, targets: Sequence, seed: int = 0,
                 mean_time_to_failure_s: float = 1.0,
                 mean_time_to_repair_s: Optional[float] = None,
                 max_failures: Optional[int] = 4,
                 horizon_s: Optional[float] = None,
                 on_fail: Optional[Callable] = None,
                 on_recover: Optional[Callable] = None,
                 runtime=None):
        if max_failures is None and horizon_s is None:
            raise ValueError(
                "FailureProcess needs max_failures or horizon_s: an "
                "unbounded schedule never lets env.run() drain")
        if mean_time_to_failure_s <= 0:
            raise ValueError(
                f"mean_time_to_failure_s must be > 0: {mean_time_to_failure_s}")
        if mean_time_to_repair_s is not None and mean_time_to_repair_s <= 0:
            raise ValueError(
                f"mean_time_to_repair_s must be > 0: {mean_time_to_repair_s}")
        self.env = env
        self.injector = FailureInjector(targets, seed=seed, on_fail=on_fail,
                                        on_recover=on_recover, runtime=runtime)
        self.runtime = self.injector.runtime
        self.mean_time_to_failure_s = float(mean_time_to_failure_s)
        self.mean_time_to_repair_s = (
            None if mean_time_to_repair_s is None
            else float(mean_time_to_repair_s))
        self.max_failures = max_failures
        self.horizon_s = horizon_s
        self._rng = self.runtime.rng.child("cluster.failures.process", seed)
        self.process = env.process(self._drive())

    def _drive(self):
        drawn = 0
        while self.max_failures is None or drawn < self.max_failures:
            delay = self._rng.expovariate(1.0 / self.mean_time_to_failure_s)
            if (self.horizon_s is not None
                    and self.env.now + delay > self.horizon_s):
                return None
            yield self.env.timeout(delay)
            drawn += 1
            victim = self.injector.fail_one()
            if victim is not None and self.mean_time_to_repair_s is not None:
                downtime = self._rng.expovariate(
                    1.0 / self.mean_time_to_repair_s)
                self.env.process(self._repair(victim, downtime))
        return None

    def _repair(self, target, downtime: float):
        yield self.env.timeout(downtime)
        # The target may have been recovered by other means meanwhile.
        if target in self.injector.failed:
            self.injector.recover(target)
        return None

    def stop(self) -> None:
        """Cancel any crashes not yet injected (repairs still complete)."""
        if self.process.is_alive:
            self.process.interrupt("stop")
