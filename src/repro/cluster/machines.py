"""Machines, tiers and network links for the simulated hardware layer.

Models Sec. II-B of the paper: four tiers of compute (edge devices, fog
nodes, analysis servers, federated cloud) interconnected by regional and
national links.  Compute is modelled as a FLOP rate, so a model layer with a
known FLOP count has a deterministic service time per tier; network transfers
cost ``latency + size / bandwidth``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


class Tier(enum.Enum):
    """The four tiers of the paper's fog-computing model (Fig. 3)."""

    EDGE = "edge"          # smartphones, Raspberry Pis
    FOG = "fog"            # NVIDIA Jetson class embedded devices
    SERVER = "server"      # GPU analysis servers
    CLOUD = "cloud"        # federated public cloud / HPC


#: Default per-tier hardware characteristics.  Values are order-of-magnitude
#: figures for the device classes the paper names (Raspberry Pi, Jetson,
#: GPU server, cloud instance) — the ratios between tiers are what matter.
TIER_DEFAULTS: Dict[Tier, Dict[str, float]] = {
    Tier.EDGE: {"flops": 5e8, "memory_bytes": 1e9, "storage_bytes": 8e9},
    Tier.FOG: {"flops": 5e9, "memory_bytes": 8e9, "storage_bytes": 64e9},
    Tier.SERVER: {"flops": 1e11, "memory_bytes": 128e9, "storage_bytes": 4e12},
    Tier.CLOUD: {"flops": 1e12, "memory_bytes": 1e12, "storage_bytes": 1e15},
}

#: Default uplink characteristics from each tier towards the next tier up.
#: Edge->fog is a local wireless hop; fog->server rides a regional network
#: (LONI); server->cloud rides Internet2.
UPLINK_DEFAULTS: Dict[Tier, Dict[str, float]] = {
    Tier.EDGE: {"bandwidth": 2e6, "latency": 0.010},     # ~16 Mbit/s wifi
    Tier.FOG: {"bandwidth": 50e6, "latency": 0.005},     # regional fibre
    Tier.SERVER: {"bandwidth": 1e9, "latency": 0.020},   # Internet2 backbone
}

_TIER_ORDER = [Tier.EDGE, Tier.FOG, Tier.SERVER, Tier.CLOUD]


def next_tier_up(tier: Tier) -> Optional[Tier]:
    """The tier one hop upstream of ``tier`` (None for the cloud)."""
    index = _TIER_ORDER.index(tier)
    if index + 1 >= len(_TIER_ORDER):
        return None
    return _TIER_ORDER[index + 1]


@dataclass
class Machine:
    """A simulated machine with a compute rate and capacity budget."""

    name: str
    tier: Tier
    flops: float = 0.0
    memory_bytes: float = 0.0
    storage_bytes: float = 0.0
    alive: bool = True
    busy_seconds: float = field(default=0.0, repr=False)

    def __post_init__(self):
        defaults = TIER_DEFAULTS[self.tier]
        if self.flops <= 0:
            self.flops = defaults["flops"]
        if self.memory_bytes <= 0:
            self.memory_bytes = defaults["memory_bytes"]
        if self.storage_bytes <= 0:
            self.storage_bytes = defaults["storage_bytes"]

    def compute_time(self, flop_count: float) -> float:
        """Seconds to execute ``flop_count`` floating-point operations."""
        if flop_count < 0:
            raise ValueError(f"negative flop count: {flop_count}")
        seconds = flop_count / self.flops
        self.busy_seconds += seconds
        return seconds


@dataclass(frozen=True)
class Link:
    """A directed network link with fixed bandwidth and propagation latency."""

    src: str
    dst: str
    bandwidth_bytes_per_s: float
    latency_s: float

    def transfer_time(self, size_bytes: float) -> float:
        """Seconds to move ``size_bytes`` across this link."""
        return transfer_time(size_bytes, self.bandwidth_bytes_per_s, self.latency_s)


def transfer_time(size_bytes: float, bandwidth_bytes_per_s: float, latency_s: float) -> float:
    """latency + serialization delay for a payload of ``size_bytes``."""
    if size_bytes < 0:
        raise ValueError(f"negative payload size: {size_bytes}")
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(f"bandwidth must be positive: {bandwidth_bytes_per_s}")
    return latency_s + size_bytes / bandwidth_bytes_per_s


def failover_transfer_time(topology: "NetworkTopology", src: str, dst: str,
                           size_bytes: float) -> float:
    """Transfer time from ``src`` to ``dst`` allowing sibling reroutes.

    The topology only materializes *uplinks*, so a failover target that is
    not on ``src``'s uplink chain — a sibling fog node under a different
    parent, say — has no explicit path.  When the exact chain exists it is
    priced exactly; otherwise the climb from ``src``'s tier toward
    ``dst``'s tier is approximated with each intermediate tier's default
    uplink, and a lateral hop (same tier) is priced as one uplink at that
    tier — the detour through the shared parent that a real deployment's
    supervisor would broker.
    """
    if src == dst:
        return 0.0
    try:
        return topology.uplink_transfer_time(src, dst, size_bytes)
    except KeyError:
        pass
    src_index = _TIER_ORDER.index(topology.machine(src).tier)
    dst_index = _TIER_ORDER.index(topology.machine(dst).tier)
    hops = max(1, dst_index - src_index)
    total = 0.0
    for step in range(hops):
        tier = _TIER_ORDER[min(src_index + step, len(_TIER_ORDER) - 2)]
        defaults = UPLINK_DEFAULTS.get(tier, {"bandwidth": 1e9, "latency": 0.001})
        total += transfer_time(size_bytes, defaults["bandwidth"],
                               defaults["latency"])
    return total


class NetworkTopology:
    """A set of machines plus directed links; routes along tier uplinks.

    ``build_fog_hierarchy`` constructs the paper's tree: many edge devices
    per fog node, several fog nodes per analysis server, all servers feeding
    one cloud, with per-hop default link characteristics.
    """

    def __init__(self):
        self._machines: Dict[str, Machine] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._parent: Dict[str, str] = {}

    # -- construction -------------------------------------------------------
    def add_machine(self, machine: Machine) -> Machine:
        if machine.name in self._machines:
            raise ValueError(f"duplicate machine name: {machine.name}")
        self._machines[machine.name] = machine
        return machine

    def add_link(self, link: Link) -> Link:
        for endpoint in (link.src, link.dst):
            if endpoint not in self._machines:
                raise KeyError(f"unknown machine: {endpoint}")
        self._links[(link.src, link.dst)] = link
        return link

    def connect_up(self, child: str, parent: str,
                   bandwidth: Optional[float] = None,
                   latency: Optional[float] = None) -> Link:
        """Add an uplink from ``child`` to ``parent`` with tier defaults."""
        tier = self.machine(child).tier
        defaults = UPLINK_DEFAULTS.get(tier, {"bandwidth": 1e9, "latency": 0.001})
        link = Link(
            src=child,
            dst=parent,
            bandwidth_bytes_per_s=bandwidth if bandwidth is not None else defaults["bandwidth"],
            latency_s=latency if latency is not None else defaults["latency"],
        )
        self.add_link(link)
        self._parent[child] = parent
        return link

    @classmethod
    def build_fog_hierarchy(cls, edges_per_fog: int = 4, fogs_per_server: int = 4,
                            servers: int = 2) -> "NetworkTopology":
        """Construct the four-tier tree of Sec. II-B with default hardware."""
        if min(edges_per_fog, fogs_per_server, servers) < 1:
            raise ValueError("hierarchy fan-outs must be >= 1")
        topo = cls()
        cloud = topo.add_machine(Machine("cloud-0", Tier.CLOUD))
        for s in range(servers):
            server = topo.add_machine(Machine(f"server-{s}", Tier.SERVER))
            topo.connect_up(server.name, cloud.name)
            for f in range(fogs_per_server):
                fog = topo.add_machine(Machine(f"fog-{s}-{f}", Tier.FOG))
                topo.connect_up(fog.name, server.name)
                for e in range(edges_per_fog):
                    edge = topo.add_machine(Machine(f"edge-{s}-{f}-{e}", Tier.EDGE))
                    topo.connect_up(edge.name, fog.name)
        return topo

    # -- queries -------------------------------------------------------------
    def machine(self, name: str) -> Machine:
        try:
            return self._machines[name]
        except KeyError:
            raise KeyError(f"unknown machine: {name}") from None

    def machines(self, tier: Optional[Tier] = None) -> List[Machine]:
        if tier is None:
            return list(self._machines.values())
        return [m for m in self._machines.values() if m.tier == tier]

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src} -> {dst}") from None

    def links(self) -> List[Link]:
        return list(self._links.values())

    def parent_of(self, name: str) -> Optional[str]:
        return self._parent.get(name)

    def children_of(self, name: str) -> List[str]:
        return [child for child, parent in self._parent.items() if parent == name]

    def uplink_path(self, src: str) -> Iterator[Link]:
        """Yield the chain of uplinks from ``src`` to the root of its tree."""
        current = src
        seen = {current}
        while True:
            parent = self._parent.get(current)
            if parent is None:
                return
            if parent in seen:
                raise ValueError(f"uplink cycle at {parent}")
            seen.add(parent)
            yield self.link(current, parent)
            current = parent

    def uplink_transfer_time(self, src: str, dst: str, size_bytes: float) -> float:
        """Total transfer time along uplinks from ``src`` until ``dst``."""
        if src == dst:
            return 0.0
        total = 0.0
        current = src
        for link in self.uplink_path(src):
            total += link.transfer_time(size_bytes)
            current = link.dst
            if current == dst:
                return total
        raise KeyError(f"{dst} is not upstream of {src}")
