"""Simulated cluster substrate: discrete-event kernel, machines, links, tiers.

The paper's hardware layer (Sec. II-B) spans Raspberry-Pi edge devices,
NVIDIA-Jetson fog nodes, GPU analysis servers, and a federated cloud,
interconnected by regional (LONI) and national (Internet2) networks.  None of
that hardware is available here, so this package provides a discrete-event
simulation of it: :class:`~repro.cluster.sim.Environment` is a small
simpy-style event kernel, and :mod:`repro.cluster.machines` models nodes with
per-tier compute rates and links with bandwidth/latency.  Latency and
throughput *shapes* across tiers — the quantity Fig. 3 of the paper argues
about — are preserved by construction.
"""

from repro.cluster.sim import (
    Environment,
    Event,
    Interrupt,
    Process,
    Request,
    Resource,
    SimulationError,
    Store,
    Timeout,
)
from repro.cluster.machines import (
    TIER_DEFAULTS,
    Link,
    Machine,
    NetworkTopology,
    Tier,
    failover_transfer_time,
    transfer_time,
)
from repro.cluster.failures import FailureInjector, FailureProcess

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "Tier",
    "Machine",
    "Link",
    "NetworkTopology",
    "TIER_DEFAULTS",
    "failover_transfer_time",
    "transfer_time",
    "FailureInjector",
    "FailureProcess",
]
