"""A small simpy-style discrete-event simulation kernel.

The kernel supports generator-based processes, timeouts, generic events,
``Resource`` (counted capacity with a FIFO queue) and ``Store`` (item buffer)
primitives — enough to model the paper's four-tier fog pipeline, network
transfers, and failure injection without any external dependency.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name):
...     yield env.timeout(1.0)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a"))
>>> _ = env.process(worker(env, "b"))
>>> env.run()
>>> log
[(1.0, 'a'), (1.0, 'b')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* with either :meth:`succeed` or :meth:`fail`.
    Processes waiting on it are resumed (or have the failure raised into
    them) at the current simulation time.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None  # None = untriggered

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, resuming any waiters."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` raised."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires automatically after a delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._schedule(self, delay=delay)


class AllOf(Event):
    """Fires when every child event has succeeded.

    An empty event list legitimately succeeds immediately (the conjunction
    of nothing is true) — unlike :class:`AnyOf`, where an empty list could
    never trigger and is therefore rejected.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._pending = 0
        events = list(events)
        for event in events:
            if event.triggered:
                continue
            self._pending += 1
            event.callbacks.append(self._on_child)
        if self._pending == 0:
            self.succeed([e.value for e in events])
        else:
            self._events = events

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires when the first child event succeeds.

    An empty event list is rejected with :class:`SimulationError`: a
    disjunction over nothing can never trigger, so yielding it would
    silently deadlock the waiting process.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        if not events:
            raise SimulationError(
                "AnyOf over an empty event list can never trigger")
        for event in events:
            if event.triggered:
                if event.ok:
                    self.succeed(event.value)
                else:
                    self.fail(event.value)
                return
        for event in events:
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)


class Process(Event):
    """Wraps a generator as a schedulable process.

    The generator yields :class:`Event` objects; the process resumes when the
    yielded event triggers.  The process itself is an event that triggers
    with the generator's return value, so processes can wait on each other.
    """

    def __init__(self, env: "Environment", generator: Generator):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("process target must be a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        If the process was blocked on a pending :class:`Request`, the
        request is withdrawn from its resource's wait queue (interrupt-aware
        waiter pruning): a later ``release()`` can then never hand the slot
        to a process that is no longer listening, which would leak capacity.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        if isinstance(target, Request) and not target.triggered:
            target.resource.cancel(target)
        self._waiting_on = None
        wakeup = Event(self.env)
        wakeup.callbacks.append(lambda ev: self._step(ev, Interrupt(cause)))
        wakeup.succeed()

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event, None)
        else:
            self._step(event, event.value)

    def _step(self, event: Event, error: Optional[BaseException]) -> None:
        try:
            if error is None:
                target = self._generator.send(event.value if event.triggered else None)
            else:
                target = self._generator.throw(error)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An uncaught interrupt terminates the process quietly.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
        if target.triggered:
            # Re-schedule immediately so already-fired events don't stall.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay._ok = False
                relay._value = target.value
                self.env._schedule(relay)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class Environment:
    """The event loop: tracks simulated time and runs scheduled events.

    When constructed with a :class:`repro.runtime.Runtime`, :meth:`run`
    binds this environment as the runtime's clock source for its whole
    duration, so any span or event recorded by code running *inside* the
    simulation carries virtual-clock timestamps — with no change at the
    call sites — and dispatch totals land in the shared metrics registry
    (``cluster.sim.events_dispatched``, ``cluster.sim.now``).
    """

    def __init__(self, initial_time: float = 0.0, runtime=None):
        self._now = float(initial_time)
        self._queue: List = []
        self._counter = itertools.count()
        self._runtime = runtime
        self._dispatched = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the final simulation time.
        """
        if self._runtime is None:
            return self._run(until)
        with self._runtime.sim_clock(self):
            dispatched_before = self._dispatched
            try:
                return self._run(until)
            finally:
                registry = self._runtime.registry
                registry.counter("cluster.sim.events_dispatched").inc(
                    self._dispatched - dispatched_before)
                registry.gauge("cluster.sim.now").set(self._now)

    def _run(self, until: Optional[float] = None) -> float:
        while self._queue:
            time, _, event = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            self._dispatched += 1
            if event._ok is None:
                # Timeouts are scheduled untriggered and fire when popped.
                event._ok = True
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
            if event._ok is False and not callbacks:
                raise event.value  # unhandled failure
        if until is not None:
            self._now = max(self._now, until)
        return self._now


class Request(Event):
    """A claim on one :class:`Resource` slot: pending, granted, or cancelled.

    Returned by :meth:`Resource.request`.  The lifecycle flags let the
    resource validate ``release()`` calls (a never-granted or already
    released request is a caller bug, not a silent capacity change) and
    let :meth:`Resource.cancel` withdraw a claim safely from either side
    of the grant.
    """

    def __init__(self, env: "Environment", resource: "Resource"):
        super().__init__(env)
        self.resource = resource
        self.granted = False
        self.cancelled = False
        self.released = False


class Resource:
    """Counted capacity with a FIFO wait queue (e.g. GPU slots on a server).

    Usage::

        def job(env, gpu):
            req = gpu.request()
            yield req
            try:
                yield env.timeout(1.0)
            finally:
                gpu.release(req)

    A process interrupted while *waiting* in ``request()`` has its claim
    pruned from the queue automatically (see :meth:`Process.interrupt`);
    code that abandons a request by other means (e.g. after an
    ``AnyOf``-based timeout) must withdraw it with :meth:`cancel`, which
    is safe to call in any state.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: List[Request] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        request = Request(self.env, self)
        if self._in_use < self.capacity:
            self._grant(request)
        else:
            self._waiters.append(request)
        return request

    def _grant(self, request: Request) -> None:
        self._in_use += 1
        request.granted = True
        request.succeed()

    def release(self, request: Request) -> None:
        """Return a granted slot; hands it to the next live waiter."""
        if not isinstance(request, Request) or request.resource is not self:
            raise SimulationError(
                "release() with a request not issued by this resource")
        if not request.granted:
            raise SimulationError("releasing a never-granted request")
        if request.released:
            raise SimulationError("request already released")
        request.released = True
        while self._waiters:
            waiter = self._waiters.pop(0)
            if waiter.cancelled:
                continue
            waiter.granted = True
            waiter.succeed()
            return
        self._in_use -= 1

    def cancel(self, request: Request) -> bool:
        """Withdraw a request: dequeue if pending, release if held.

        Idempotent — cancelling an already cancelled or released request
        is a no-op returning False, so cleanup paths (``finally`` blocks,
        interrupt handlers) can call it unconditionally.
        """
        if not isinstance(request, Request) or request.resource is not self:
            raise SimulationError(
                "cancel() with a request not issued by this resource")
        if request.cancelled or request.released:
            return False
        if request.granted:
            self.release(request)
            return True
        request.cancelled = True
        try:
            self._waiters.remove(request)
        except ValueError:
            pass
        return True


class Store:
    """An unbounded-or-bounded buffer of items with blocking get/put."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List = []  # (event, item)

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.pop(0))
            if self._putters:
                putter, item = self._putters.pop(0)
                self.items.append(item)
                putter.succeed()
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
