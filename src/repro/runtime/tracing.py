"""Span-tree tracing over a pluggable clock.

A :class:`Tracer` is constructed with a clock callable returning
``(now, kind)`` where ``kind`` is ``"sim"`` while a DES
:class:`~repro.cluster.sim.Environment` is bound to the owning runtime and
``"wall"`` otherwise.  The *same* ``tracer.span(...)`` call therefore
records virtual-clock timestamps inside a simulation and wall-clock
timestamps outside it, with no change at the call site.

Spans form a *tree*: every span carries a ``span_id`` (assigned from a
per-tracer counter the moment the span starts) and a ``parent_id`` — the
id of the span that was innermost on the tracer's current-span stack when
it opened (``None`` at the root).  ``with tracer.span("outer"): with
tracer.span("inner"): ...`` therefore records ``inner.parent_id ==
outer.span_id`` with no extra plumbing, and a dump can be re-assembled
into the request tree (see :meth:`Tracer.span_tree`).

Ids are small integers drawn in start order, so two identically-seeded
runs assign identical ids and ``dump()`` stays byte-stable under
``deterministic_dump`` — including across worker counts: the parallel
engine re-maps worker-local ids into the exact sequence the serial loop
would have produced (see ``repro.runtime.parallel``).

Spans survive generator suspension: a ``with tracer.span(...)`` block
inside a DES process stays open across ``yield env.timeout(...)`` and its
duration covers the simulated wait — exactly how the fog pipeline
measures per-stage queueing plus service time.  Note the current-span
stack tracks *lexical* nesting (the innermost open ``with`` block), which
for interleaved DES processes is the opening order, not per-process
ancestry.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple


@dataclass
class Span:
    """One traced operation; ``end`` is filled when the block exits."""

    name: str
    labels: Dict[str, str]
    start: float
    clock: str
    end: Optional[float] = None
    span_id: Optional[int] = None
    parent_id: Optional[int] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.name!r} still open")
        return self.end - self.start

    def annotate(self, **labels) -> "Span":
        """Attach labels discovered mid-span (e.g. the chosen machine)."""
        self.labels.update({k: str(v) for k, v in labels.items()})
        return self

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "labels": dict(sorted(self.labels.items())),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "clock": self.clock,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


class _NoopSpan:
    """Placeholder yielded by sampled-out span contexts.

    A single shared instance: entering the context allocates nothing,
    ``annotate`` accepts and discards labels, and nothing is recorded.
    """

    __slots__ = ()

    def annotate(self, **labels) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class SpanSampler:
    """Count-based span sampling for per-item hot loops.

    ``sampler.span(...)`` opens a real tracer span on the first call and
    every ``every``-th call after it; the calls in between return a
    shared no-op context whose span object swallows ``annotate``.  The
    decision depends only on the call sequence — never on a clock or an
    RNG stream — so two identically-ordered runs record identical span
    dumps, and the skipped calls consume no span ids.
    """

    __slots__ = ("_tracer", "name", "every", "_calls")

    def __init__(self, tracer: "Tracer", name: str, every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1: {every}")
        self._tracer = tracer
        self.name = name
        self.every = every
        self._calls = 0

    def span(self, **labels):
        """A context manager: a real span when sampled, a no-op otherwise."""
        n = self._calls
        self._calls = n + 1
        if n % self.every == 0:
            return self._tracer.span(self.name, **labels)
        return nullcontext(_NOOP_SPAN)

    def reset(self) -> None:
        self._calls = 0


class Tracer:
    """Records finished spans in completion order, linked into a tree."""

    def __init__(self, clock: Callable[[], Tuple[float, str]]):
        self._clock = clock
        self._spans: List[Span] = []
        self._next_id = 0
        self._open_stack: List[Span] = []

    # -- id allocation ---------------------------------------------------------
    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    @property
    def next_span_id(self) -> int:
        """The id the next started span will receive (parallel-merge hook)."""
        return self._next_id

    def advance_span_ids(self, count: int) -> None:
        """Consume ``count`` ids without starting spans.

        The parallel engine calls this after merging a worker delta so the
        parent's counter lands exactly where a serial execution of the
        same tasks would have left it.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0: {count}")
        self._next_id += count

    def current_span(self) -> Optional[Span]:
        """The innermost open span (the parent of a span started now)."""
        return self._open_stack[-1] if self._open_stack else None

    @contextmanager
    def span(self, name: str, **labels) -> Iterator[Span]:
        now, kind = self._clock()
        parent = self._open_stack[-1] if self._open_stack else None
        record = Span(name=name,
                      labels={k: str(v) for k, v in labels.items()},
                      start=now, clock=kind,
                      span_id=self._allocate_id(),
                      parent_id=None if parent is None else parent.span_id)
        self._open_stack.append(record)
        try:
            yield record
        finally:
            record.end = self._clock()[0]
            # Tolerate out-of-order closes (interleaved DES generators):
            # remove this span wherever it sits, not just at the top.
            try:
                self._open_stack.remove(record)
            except ValueError:  # pragma: no cover - double-close guard
                pass
            self._spans.append(record)

    def sampler(self, name: str, every: int = 1) -> SpanSampler:
        """A :class:`SpanSampler` recording every ``every``-th span.

        The fast path for per-record loops: the sampled-out calls touch
        neither the clock nor the id counter, so wrapping a hot loop in
        ``sampler.span()`` costs one integer increment per skipped item.
        """
        return SpanSampler(self, name, every)

    def record(self, span: Span) -> Span:
        """Append an externally-finished span (parallel-worker delta merge).

        The span must already be closed; its timestamps and tree links are
        whatever the recording process observed — the merge preserves them
        verbatim (the parallel engine re-maps ids *before* calling this).
        """
        if span.end is None:
            raise RuntimeError(f"cannot record open span {span.name!r}")
        self._spans.append(span)
        return span

    def spans(self, name: Optional[str] = None) -> List[Span]:
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        """Finished spans whose ``parent_id`` is this span's id."""
        if span.span_id is None:
            return []
        return [s for s in self._spans if s.parent_id == span.span_id]

    def span_tree(self) -> List[Dict]:
        """Finished spans as a nested forest (roots in completion order).

        Each node is the span's :meth:`~Span.to_dict` plus a ``children``
        list; spans whose parent is still open (or was never recorded)
        surface as roots.
        """
        nodes = {s.span_id: dict(s.to_dict(), children=[])
                 for s in self._spans}
        forest: List[Dict] = []
        for span in self._spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) \
                if span.parent_id is not None else None
            if parent is None:
                forest.append(node)
            else:
                parent["children"].append(node)
        return forest

    def total_duration(self, name: str, **labels) -> float:
        """Summed duration of finished spans matching name and labels."""
        wanted = {k: str(v) for k, v in labels.items()}
        return sum(s.duration for s in self._spans
                   if s.name == name
                   and all(s.labels.get(k) == v for k, v in wanted.items()))

    def reset(self) -> None:
        self._spans.clear()
        self._open_stack.clear()
        self._next_id = 0

    def dump(self) -> List[Dict]:
        return [span.to_dict() for span in self._spans]
