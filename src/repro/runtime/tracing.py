"""Span-based tracing over a pluggable clock.

A :class:`Tracer` is constructed with a clock callable returning
``(now, kind)`` where ``kind`` is ``"sim"`` while a DES
:class:`~repro.cluster.sim.Environment` is bound to the owning runtime and
``"wall"`` otherwise.  The *same* ``tracer.span(...)`` call therefore
records virtual-clock timestamps inside a simulation and wall-clock
timestamps outside it, with no change at the call site.

Spans survive generator suspension: a ``with tracer.span(...)`` block
inside a DES process stays open across ``yield env.timeout(...)`` and its
duration covers the simulated wait — exactly how the fog pipeline
measures per-stage queueing plus service time.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple


@dataclass
class Span:
    """One traced operation; ``end`` is filled when the block exits."""

    name: str
    labels: Dict[str, str]
    start: float
    clock: str
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.name!r} still open")
        return self.end - self.start

    def annotate(self, **labels) -> "Span":
        """Attach labels discovered mid-span (e.g. the chosen machine)."""
        self.labels.update({k: str(v) for k, v in labels.items()})
        return self

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "labels": dict(sorted(self.labels.items())),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "clock": self.clock,
        }


class Tracer:
    """Records finished spans in completion order."""

    def __init__(self, clock: Callable[[], Tuple[float, str]]):
        self._clock = clock
        self._spans: List[Span] = []

    @contextmanager
    def span(self, name: str, **labels) -> Iterator[Span]:
        now, kind = self._clock()
        record = Span(name=name,
                      labels={k: str(v) for k, v in labels.items()},
                      start=now, clock=kind)
        try:
            yield record
        finally:
            record.end = self._clock()[0]
            self._spans.append(record)

    def record(self, span: Span) -> Span:
        """Append an externally-finished span (parallel-worker delta merge).

        The span must already be closed; its timestamps are whatever the
        recording process observed — the merge preserves them verbatim.
        """
        if span.end is None:
            raise RuntimeError(f"cannot record open span {span.name!r}")
        self._spans.append(span)
        return span

    def spans(self, name: Optional[str] = None) -> List[Span]:
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def total_duration(self, name: str, **labels) -> float:
        """Summed duration of finished spans matching name and labels."""
        wanted = {k: str(v) for k, v in labels.items()}
        return sum(s.duration for s in self._spans
                   if s.name == name
                   and all(s.labels.get(k) == v for k, v in wanted.items()))

    def reset(self) -> None:
        self._spans.clear()

    def dump(self) -> List[Dict]:
        return [span.to_dict() for span in self._spans]
