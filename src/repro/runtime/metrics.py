"""Labeled metric instruments and the registry that owns them.

Three Prometheus-shaped instrument kinds, each holding any number of
labeled *series*:

- :class:`Counter` — monotonically increasing float (events, bytes,
  busy-seconds);
- :class:`Gauge` — a value that goes up and down (queue depth,
  utilization);
- :class:`Histogram` — raw observations summarized at dump time
  (latencies, losses, gradient norms).

A series is addressed by keyword labels (``counter.inc(topic="tweets")``)
and rendered in dumps as a deterministic ``"k1=v1,k2=v2"`` key, so two
identical runs produce byte-identical dumps.  Metric names follow the
``<layer>.<component>.<metric>`` convention described in DESIGN.md.

Hot paths use *bound handles*: ``counter.bind(topic="tweets")`` validates
the labels and resolves the series key exactly once, returning a handle
whose ``inc``/``set``/``observe`` is a single dict write against the same
series storage the labeled call would hit.  Binding registers the label
set but creates no series — the series appears on the first write, so a
dump is byte-identical whether a value arrived through the labeled call
or through a handle (the contract the parallel engine's snapshot-diff
merge relies on).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple


class MetricsError(Exception):
    """Raised for metric name/type conflicts and bad usage."""


#: Characters that would make the serialized ``k=v,...`` key ambiguous.
_FORBIDDEN_LABEL_CHARS = ("=", ",", "\n")


def _validated(labels: Dict[str, object]) -> Dict[str, str]:
    """Stringified copy of ``labels``; rejects values that would collide.

    A value containing ``=`` or ``,`` would produce a serialized key that
    parses back into different labels (or collides with another set), so
    it is rejected at write time rather than corrupting dumps silently.
    """
    out = {}
    for key, value in labels.items():
        text = str(value)
        for char in _FORBIDDEN_LABEL_CHARS:
            if char in text:
                raise MetricsError(
                    f"label {key}={text!r} contains {char!r}; "
                    "label values must not contain '=', ',' or newlines")
        out[key] = text
    return out


def series_key(labels: Dict[str, object]) -> str:
    """Deterministic string form of a label set ('' for the bare series).

    Raises :class:`MetricsError` for label values containing ``=``, ``,``
    or newlines — with those rejected, distinct label sets always map to
    distinct keys and the rendering stays parseable.
    """
    return ",".join(f"{k}={v}" for k, v in sorted(_validated(labels).items()))


class _LabeledInstrument:
    """Shared series bookkeeping: keys, label sets, structured access."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: Dict[str, object] = {}
        self._labelsets: Dict[str, Dict[str, str]] = {}

    def _key(self, labels: Dict[str, object]) -> str:
        validated = _validated(labels)
        key = ",".join(f"{k}={v}" for k, v in sorted(validated.items()))
        if key not in self._labelsets:
            self._labelsets[key] = validated
        return key

    def labels_for(self, key: str) -> Dict[str, str]:
        """The structured label set behind a serialized series key."""
        try:
            return dict(self._labelsets[key])
        except KeyError:
            raise MetricsError(
                f"metric {self.name} has no series {key!r}") from None

    def labeled_series(self) -> List[Tuple[Dict[str, str], object]]:
        """Every series as ``(labels_dict, value)``, sorted by key.

        The structured counterpart of :meth:`series`: callers filter and
        read labels directly instead of re-parsing serialized keys.
        """
        return [(dict(self._labelsets[key]), self._series[key])
                for key in sorted(self._series)]


class BoundCounter:
    """One counter series with its key pre-resolved (see ``Counter.bind``)."""

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: "Counter", key: str):
        self._counter = counter
        self._key = key

    @property
    def labels(self) -> Dict[str, str]:
        return self._counter.labels_for(self._key)

    def inc(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise MetricsError(
                f"counter {self._counter.name} cannot decrease "
                f"(amount={amount})")
        series = self._counter._series
        value = series.get(self._key, 0.0) + amount
        series[self._key] = value
        return value

    def value(self) -> float:
        return self._counter._series.get(self._key, 0.0)


class BoundGauge:
    """One gauge series with its key pre-resolved (see ``Gauge.bind``)."""

    __slots__ = ("_gauge", "_key")

    def __init__(self, gauge: "Gauge", key: str):
        self._gauge = gauge
        self._key = key

    @property
    def labels(self) -> Dict[str, str]:
        return self._gauge.labels_for(self._key)

    def set(self, value: float) -> None:
        self._gauge._series[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        series = self._gauge._series
        series[self._key] = series.get(self._key, 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        return self._gauge._series.get(self._key, 0.0)


class Counter(_LabeledInstrument):
    """A monotonically increasing metric with labeled series."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> float:
        """Add ``amount`` (>= 0) to the labeled series; returns its value.

        ``inc(0.0, ...)`` is a supported idiom for pre-creating a series
        so it shows up in dumps even when nothing happened.
        """
        if amount < 0:
            raise MetricsError(
                f"counter {self.name} cannot decrease (amount={amount})")
        key = self._key(labels)
        value = self._series.get(key, 0.0) + amount
        self._series[key] = value
        return value

    def bind(self, **labels) -> BoundCounter:
        """A handle onto one series: labels validated and keyed once.

        The handle writes into the same series storage the labeled call
        uses, but creates no series until the first ``inc`` — binding
        alone leaves dumps untouched.
        """
        return BoundCounter(self, self._key(labels))

    def value(self, **labels) -> float:
        return self._series.get(series_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every labeled series."""
        return sum(self._series.values())

    def series(self) -> Dict[str, float]:
        return dict(self._series)

    def dump(self) -> Dict[str, float]:
        return {key: self._series[key] for key in sorted(self._series)}


class Gauge(_LabeledInstrument):
    """A point-in-time value with labeled series."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def bind(self, **labels) -> BoundGauge:
        """A handle onto one series: labels validated and keyed once."""
        return BoundGauge(self, self._key(labels))

    def value(self, **labels) -> float:
        return self._series.get(series_key(labels), 0.0)

    def series(self) -> Dict[str, float]:
        return dict(self._series)

    def dump(self) -> Dict[str, float]:
        return {key: self._series[key] for key in sorted(self._series)}


def _percentile(ordered: List[float], q: float) -> float:
    """Linear-interpolation percentile over a pre-sorted list."""
    if not ordered:
        raise MetricsError("percentile of an empty histogram")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


#: every summary/dump row carries exactly these keys, always — JSON
#: consumers of the metrics endpoint index them without existence checks
SUMMARY_KEYS = ("count", "sum", "min", "max", "mean", "p50", "p95", "p99")


class _SeriesStats:
    """Exact streaming aggregates for one histogram series.

    ``count``/``sum``/``min``/``max`` are exact regardless of sampling;
    the LCG state drives deterministic reservoir eviction (Vitter's
    algorithm R) when the series is bounded.
    """

    __slots__ = ("count", "sum", "min", "max", "lcg")

    def __init__(self, seed: int):
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.lcg = seed & 0xFFFFFFFFFFFFFFFF

    def update(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def next_random(self, bound: int) -> int:
        """Deterministic integer in ``[0, bound)`` (64-bit LCG step).

        A private generator (not ``runtime.rng``) on purpose: eviction
        choices must depend only on the observation sequence, so two
        identically-ordered runs keep identical reservoirs no matter what
        other components drew from the run's seeded streams.
        """
        self.lcg = (self.lcg * 6364136223846793005
                    + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        return (self.lcg >> 33) % bound


class BoundHistogram:
    """One histogram series with its key pre-resolved.

    ``observe`` replicates :meth:`Histogram.observe` exactly — same
    streaming aggregates, same Algorithm R reservoir over the same LCG —
    against lazily cached references to the series' stats and sample
    list, so interleaving labeled and bound observations is
    indistinguishable from using either alone.
    """

    __slots__ = ("_histogram", "_key", "_stats", "_samples")

    def __init__(self, histogram: "Histogram", key: str):
        self._histogram = histogram
        self._key = key
        self._stats = None
        self._samples: Optional[List[float]] = None

    @property
    def labels(self) -> Dict[str, str]:
        return self._histogram.labels_for(self._key)

    def observe(self, value: float) -> None:
        value = float(value)
        histogram = self._histogram
        stats = self._stats
        if stats is None:
            stats = self._stats = histogram._stats_for(self._key)
            self._samples = histogram._series.setdefault(self._key, [])
        stats.update(value)
        samples = self._samples
        max_samples = histogram.max_samples
        if max_samples is None or len(samples) < max_samples:
            samples.append(value)
        else:
            slot = stats.next_random(stats.count)
            if slot < max_samples:
                samples[slot] = value

    def count(self) -> int:
        stats = self._histogram._stats.get(self._key)
        return stats.count if stats is not None else 0


class Histogram(_LabeledInstrument):
    """Observation histogram; summaries are computed at read time.

    With ``max_samples=None`` (the default) every observation is retained
    and summaries are exact.  With a bound, each series keeps a
    deterministic reservoir of at most ``max_samples`` observations
    (algorithm R, per-series LCG seeded from the metric and series names)
    while ``count``/``sum``/``min``/``max``/``mean`` stay *exact* via
    streaming aggregates — only the percentiles become reservoir
    estimates.  A million-request serving run then holds a constant
    number of floats per series instead of a million.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 max_samples: Optional[int] = None):
        super().__init__(name, help)
        if max_samples is not None and max_samples < 1:
            raise MetricsError(
                f"histogram {name} max_samples must be >= 1: {max_samples}")
        self.max_samples = max_samples
        self._stats: Dict[str, _SeriesStats] = {}

    def _stats_for(self, key: str) -> _SeriesStats:
        stats = self._stats.get(key)
        if stats is None:
            stats = _SeriesStats(zlib.crc32(f"{self.name}|{key}".encode()))
            self._stats[key] = stats
        return stats

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        value = float(value)
        stats = self._stats_for(key)
        stats.update(value)
        samples = self._series.setdefault(key, [])
        if self.max_samples is None or len(samples) < self.max_samples:
            samples.append(value)
        else:
            # Algorithm R: observation i replaces a reservoir slot with
            # probability max_samples / i, keeping a uniform sample.
            slot = stats.next_random(stats.count)
            if slot < self.max_samples:
                samples[slot] = value

    def bind(self, **labels) -> BoundHistogram:
        """A handle onto one series: labels validated and keyed once.

        Reservoir semantics are identical to labeled ``observe`` calls;
        the series (and its LCG state) appears on the first observation,
        not at bind time.
        """
        return BoundHistogram(self, self._key(labels))

    def values(self, **labels) -> List[float]:
        """Retained observations (every observation when unbounded)."""
        return list(self._series.get(series_key(labels), []))

    def count(self, **labels) -> int:
        """Exact number of observations, evicted ones included."""
        key = series_key(labels)
        stats = self._stats.get(key)
        return stats.count if stats is not None else 0

    def observation_counts(self) -> Dict[str, int]:
        """Exact per-series observation counts (parallel-merge snapshot)."""
        return {key: self._stats[key].count for key in self._series}

    def summary(self, **labels) -> Dict[str, Optional[float]]:
        return self._summary_for(series_key(labels))

    def _summary_for(self, key: str) -> Dict[str, Optional[float]]:
        """Schema-stable summary: every :data:`SUMMARY_KEYS` key, always.

        Undefined statistics of an empty series are ``None`` (JSON
        ``null``) rather than absent, so metric consumers never KeyError
        on a series that exists but has no observations yet.
        """
        stats = self._stats.get(key)
        if stats is None or stats.count == 0:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "p50": None, "p95": None, "p99": None}
        ordered = sorted(self._series.get(key, []))
        return {
            "count": stats.count,
            "sum": stats.sum,
            "min": stats.min,
            "max": stats.max,
            "mean": stats.sum / stats.count,
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
        }

    def series(self) -> Dict[str, List[float]]:
        return {key: list(values) for key, values in self._series.items()}

    def labeled_series(self) -> List[Tuple[Dict[str, str], List[float]]]:
        return [(labels, list(values))
                for labels, values in super().labeled_series()]

    def dump(self) -> Dict[str, Dict[str, Optional[float]]]:
        return {key: self._summary_for(key) for key in sorted(self._series)}


class MetricsRegistry:
    """Get-or-create home for every instrument in one runtime.

    Names are globally unique across kinds: asking for an existing name
    with a different instrument kind is an error, so a typo cannot
    silently fork a metric.
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, kind: str, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._KINDS[kind](name, help)
            self._metrics[name] = metric
            return metric
        if metric.kind != kind:
            raise MetricsError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create("counter", name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create("gauge", name, help)

    def histogram(self, name: str, help: str = "",
                  max_samples: Optional[int] = None) -> Histogram:
        """Get or create a histogram; ``max_samples`` bounds each series.

        The bound is fixed at creation: a later call may omit
        ``max_samples`` (inherits the existing bound) or repeat the same
        value, but asking for a *different* bound on an existing
        histogram is an error — silently resizing a reservoir would
        corrupt its sampling guarantees.
        """
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, max_samples=max_samples)
            self._metrics[name] = metric
            return metric
        if metric.kind != "histogram":
            raise MetricsError(
                f"metric {name!r} already registered as {metric.kind}, "
                "requested histogram")
        if max_samples is not None and metric.max_samples != max_samples:
            raise MetricsError(
                f"histogram {name!r} already registered with "
                f"max_samples={metric.max_samples}, requested {max_samples}")
        return metric

    def get(self, name: str):
        try:
            return self._metrics[name]
        except KeyError:
            raise MetricsError(f"no such metric: {name}") from None

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def reset(self) -> None:
        self._metrics.clear()

    def dump(self) -> Dict[str, Dict]:
        """{kind: {name: {series_key: value-or-summary}}}, fully sorted."""
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[metric.kind + "s"][name] = metric.dump()
        return out
