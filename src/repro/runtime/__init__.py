"""Unified observability core: metrics, tracing, events, seeded RNG.

The paper's cyberinfrastructure is four-layer (data / hardware / software
/ application); this package is the one substrate all four layers emit
through, replacing each layer's private counters.  See DESIGN.md
("Runtime observability layer") for metric naming and span conventions,
and :func:`repro.viz.exporters.registry_to_json` for turning any run's
runtime into a BENCH-style JSON artifact.
"""

from repro.runtime.core import (
    Runtime,
    get_runtime,
    set_runtime,
    using_runtime,
)
from repro.runtime.events import EventLog, EventRecord
from repro.runtime.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    series_key,
)
from repro.runtime.parallel import (
    ParallelError,
    ParallelExecutor,
    deterministic_dump,
    fork_available,
)
from repro.runtime.rng import RngContext, derive_seed, resolve_rng
from repro.runtime.tracing import Span, Tracer

__all__ = [
    "Runtime", "get_runtime", "set_runtime", "using_runtime",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "MetricsError",
    "series_key",
    "Tracer", "Span",
    "EventLog", "EventRecord",
    "RngContext", "derive_seed", "resolve_rng",
    "ParallelExecutor", "ParallelError", "deterministic_dump",
    "fork_available",
]
