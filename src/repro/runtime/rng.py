"""Seeded randomness with stable named sub-streams.

A :class:`RngContext` owns one root seed and hands out independent child
generators addressed by a scope path (strings/ints), derived with a keyed
hash — never Python's process-randomized ``hash()``.  Two processes (or
two runs in one process) with the same root seed and the same scope get
bit-identical streams, which is what makes whole-stack runs replayable:
every module draws from ``runtime.rng.child("<module>.<purpose>", ...)``
instead of module-level ``random`` / ``np.random``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Tuple

import numpy as np


def derive_seed(root_seed: int, scope: Tuple) -> int:
    """Stable 64-bit seed from a root seed and a scope path."""
    material = repr((int(root_seed),) + tuple(scope)).encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RngContext:
    """Root seed plus derived, collision-resistant child streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def child(self, *scope) -> random.Random:
        """A ``random.Random`` dedicated to ``scope``."""
        return random.Random(derive_seed(self.seed, scope))

    def np_child(self, *scope) -> np.random.Generator:
        """A NumPy generator dedicated to ``scope``."""
        return np.random.default_rng(derive_seed(self.seed, scope))

    def spawn(self, *scope) -> "RngContext":
        """A child context whose own children are scoped under ``scope``."""
        return RngContext(derive_seed(self.seed, scope))

    def __repr__(self) -> str:
        return f"RngContext(seed={self.seed})"


def resolve_rng(rng: Optional[np.random.Generator],
                *scope) -> np.random.Generator:
    """``rng`` if given, else the installed runtime's stream for ``scope``.

    The sanctioned replacement for ``rng or np.random.default_rng(0)``
    constructor fallbacks: the ``is None`` test doesn't swallow falsy
    arguments, and the fallback stream derives from the run's root seed
    instead of a hard-coded constant, so a whole-stack run stays a
    deterministic function of one seed (enforced by lint rules DET102 /
    DET103).
    """
    if rng is not None:
        return rng
    from repro.runtime.core import get_runtime
    return get_runtime().rng.np_child(*scope)
