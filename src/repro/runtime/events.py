"""A structured event log: discrete happenings with a timestamp.

Where metrics answer "how many / how long", the event log answers "what
happened, in what order" — datanode crashes, fog-node recoveries,
memstore flushes.  Events share the runtime's clock, so inside a DES run
they carry virtual timestamps and replay deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class EventRecord:
    """One structured event."""

    kind: str
    time: float
    clock: str
    data: Dict

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "time": self.time,
            "clock": self.clock,
            "data": dict(sorted(self.data.items())),
        }


class EventLog:
    """Append-only log of :class:`EventRecord`."""

    def __init__(self, clock: Callable[[], Tuple[float, str]]):
        self._clock = clock
        self._records: List[EventRecord] = []

    def emit(self, kind: str, **data) -> EventRecord:
        now, clock_kind = self._clock()
        record = EventRecord(kind=kind, time=now, clock=clock_kind,
                             data=data)
        self._records.append(record)
        return record

    def record(self, record: EventRecord) -> EventRecord:
        """Append a pre-built record (parallel-worker delta merge)."""
        self._records.append(record)
        return record

    def records(self, kind: Optional[str] = None) -> List[EventRecord]:
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def count(self, kind: Optional[str] = None) -> int:
        return len(self.records(kind))

    def reset(self) -> None:
        self._records.clear()

    def dump(self) -> List[Dict]:
        return [record.to_dict() for record in self._records]
