"""Deterministic process-pool execution engine with shared-memory transport.

The paper's infrastructure is *distributed* — Spark executors fan
partition work across YARN containers and fog nodes serve hundreds of
camera streams concurrently — while a plain Python reproduction runs on
one core.  :class:`ParallelExecutor` closes that gap without giving up
the one property everything else in this repo is built on: a run's
``runtime.dump()`` must not depend on how many workers executed it.

Three design decisions make that work:

**Fork-per-call pools.**  ``map_ordered(fn, items)`` creates a fresh
``fork``-context pool for each call, *after* stashing ``fn`` in a module
global.  Forked children inherit the function — closures, lambdas, bound
methods, captured models and RDD lineages all cross for free, with zero
pickling of code or weights.  Only the per-task payloads and results
cross the boundary explicitly.  On platforms without ``fork`` (or when
``workers <= 1``, or inside a worker) the same call degrades to an
in-process loop that emits the *same* spans and counters, so the serial
and parallel paths are observationally identical.

**Shared-memory ndarray transport.**  Arrays at or above
``shm_min_bytes`` are copied once into a ``multiprocessing.shared_memory``
segment; the worker attaches a read-only view instead of receiving a
pickled copy.  The parent owns the segment lifecycle: create + copy-in
before the pool starts, unlink after results are collected.  Workers
attach and close, never unlink.  Workers pickle their own results
*before* closing their segments, so a result that aliases the shared
buffer is materialized while the mapping is still valid.

**Snapshot-diff telemetry merge.**  A worker inherits the parent runtime
(registry object identity and all) through the fork, snapshots it before
running the task, and returns the *delta* — counter increments, gauge
writes, new histogram observations, spans and events recorded while the
task ran.  The parent merges deltas in submission order, which is exactly
the order the serial loop would have emitted them in.  The result: for a
task function that follows the determinism contract (below), the
runtime's dump is byte-identical for any worker count.

Determinism contract (what ``fn`` must do)
------------------------------------------
- derive randomness from ``runtime.rng.child(scope, *key)`` with a key
  based on the *item*, never from a shared stateful generator;
- avoid ``runtime.gensym`` (per-process counters diverge across workers);
- emit metrics/spans/events only through the executor's runtime.

Under that contract, :func:`deterministic_dump` — the full dump minus
the engine's own transport telemetry and the documented wall-clock
fields — is byte-for-byte identical across ``workers`` in ``{1, 2, 4,
...}``, which the worker-sweep property tests assert.
"""

from __future__ import annotations

import multiprocessing
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.core import Runtime, get_runtime
from repro.runtime.events import EventRecord
from repro.runtime.metrics import series_key
from repro.runtime.tracing import Span

#: arrays at or above this size ship via shared memory instead of pickle
DEFAULT_SHM_MIN_BYTES = 64 * 1024

#: engine metric names (all under one prefix so dump normalization can
#: drop the whole family at once)
ENGINE_METRIC_PREFIX = "runtime.parallel."
#: plan-cache telemetry is per-process by design (each pool worker
#: captures its own plans), so it is dropped alongside the engine's own
#: transport metrics; see ``repro.nn.plan``.
PLAN_METRIC_PREFIX = "nn.plan."
TASKS_METRIC = "runtime.parallel.tasks"
BYTES_METRIC = "runtime.parallel.bytes_shipped"
BUSY_METRIC = "runtime.parallel.worker_busy_s"
TASK_SPAN = "runtime.parallel.task"
MAP_SPAN = "runtime.parallel.map"

#: metrics that carry wall-clock readings by design (documented in their
#: help strings); :func:`deterministic_dump` excludes them
WALL_CLOCK_METRICS = frozenset({
    "nn.infer.latency_s",
    "nn.infer.throughput_items_s",
    "streaming.broker.produce_latency_s",
    "streaming.broker.fetch_latency_s",
})

_TASKS_HELP = "tasks executed through ParallelExecutor.map_ordered"
_BYTES_HELP = "ndarray bytes shipped to workers via shared memory"
_BUSY_HELP = ("runtime-clock seconds spent inside task functions "
              "(wall time outside a DES run)")


class ParallelError(Exception):
    """Raised for invalid executor configuration or worker failures."""


# -- shared-memory ndarray transport ------------------------------------------

@dataclass(frozen=True)
class _ShmRef:
    """Pickled in place of a large ndarray: (segment name, shape, dtype)."""

    segment: str
    shape: Tuple[int, ...]
    dtype: str


def _encode_item(item: Any, min_bytes: int
                 ) -> Tuple[Any, int, List[shared_memory.SharedMemory]]:
    """Replace large ndarrays in ``item`` with shared-memory references.

    Recurses through tuples/lists/dicts.  Returns the encoded payload,
    the number of bytes staged in shared memory, and the created
    segments — which the *parent* must unlink once results are back.
    """
    segments: List[shared_memory.SharedMemory] = []
    staged = 0

    def encode(obj: Any) -> Any:
        nonlocal staged
        if isinstance(obj, np.ndarray) and obj.nbytes >= min_bytes:
            array = np.ascontiguousarray(obj)
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes))
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=segment.buf)
            view[...] = array
            segments.append(segment)
            staged += array.nbytes
            return _ShmRef(segment.name, array.shape, array.dtype.str)
        if isinstance(obj, tuple):
            return tuple(encode(value) for value in obj)
        if isinstance(obj, list):
            return [encode(value) for value in obj]
        if isinstance(obj, dict):
            return {key: encode(value) for key, value in obj.items()}
        return obj

    return encode(item), staged, segments


#: public name for the shared-memory array reference other transports
#: (notably the streaming broker's zero-copy handoff) pattern-match on
SharedArrayRef = _ShmRef


def share_ndarrays(value: Any, min_bytes: int = DEFAULT_SHM_MIN_BYTES
                   ) -> Tuple[Any, int, List[shared_memory.SharedMemory]]:
    """Stage large ndarrays inside ``value`` into shared memory.

    Public wrapper over the executor's transport encoding: returns the
    encoded value (large arrays replaced by :class:`SharedArrayRef`), the
    bytes staged, and the created segments.  The caller owns the
    segments — close and unlink them when the last reader is done.
    """
    return _encode_item(value, min_bytes)


def _decode_payload(payload: Any,
                    attached: List[shared_memory.SharedMemory]) -> Any:
    """Resolve shared-memory references into read-only ndarray views.

    Attached segments are appended to ``attached``; the caller closes
    them once the views are no longer needed (after the result has been
    serialized).  Views are read-only: the segment is the parent's copy
    and a worker-side write would be silently lost anyway.
    """

    def decode(obj: Any) -> Any:
        if isinstance(obj, _ShmRef):
            segment = shared_memory.SharedMemory(name=obj.segment)
            attached.append(segment)
            view = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                              buffer=segment.buf)
            view.flags.writeable = False
            return view
        if isinstance(obj, tuple):
            return tuple(decode(value) for value in obj)
        if isinstance(obj, list):
            return [decode(value) for value in obj]
        if isinstance(obj, dict):
            return {key: decode(value) for key, value in obj.items()}
        return obj

    return decode(payload)


# -- worker-side telemetry capture ---------------------------------------------

def _registry_snapshot(registry) -> Dict[str, Dict]:
    """Per-metric series state: values (counter/gauge) or lengths (histogram)."""
    snapshot: Dict[str, Dict] = {}
    for name in registry.names():
        metric = registry.get(name)
        if metric.kind == "histogram":
            snapshot[name] = metric.observation_counts()
        else:
            snapshot[name] = metric.series()
    return snapshot


def _capture_delta(runtime: Runtime, registry_before: Dict[str, Dict],
                   span_base: int, event_base: int,
                   span_id_base: int = 0) -> Dict:
    """Everything emitted into ``runtime`` since the snapshot was taken."""
    delta: Dict[str, List] = {
        "counters": [], "gauges": [], "histograms": [],
        "spans": [], "events": [],
    }
    registry = runtime.registry
    for name in registry.names():
        metric = registry.get(name)
        before = registry_before.get(name, {})
        series: List[Tuple[Dict[str, str], Any]] = []
        if metric.kind == "histogram":
            counts = metric.observation_counts()
            for labels, values in metric.labeled_series():
                key = series_key(labels)
                seen = before.get(key, 0)
                if counts.get(key, 0) > seen or key not in before:
                    if metric.max_samples is not None:
                        # A bounded reservoir forgets observations, so the
                        # since-snapshot slice is unrecoverable and a merge
                        # could not reproduce the serial run.  Sample-bound
                        # serving metrics belong in the main process.
                        raise ParallelError(
                            f"bounded histogram {name!r} was written inside "
                            "a parallel worker; reservoir deltas cannot be "
                            "merged deterministically — observe it from the "
                            "main process or drop max_samples")
                    series.append((labels, values[seen:]))
        else:
            for labels, value in metric.labeled_series():
                key = series_key(labels)
                if metric.kind == "counter":
                    changed = key not in before or value != before[key]
                    if changed:
                        series.append((labels, value - before.get(key, 0.0)))
                elif key not in before or value != before[key]:
                    series.append((labels, value))
        if series:
            delta[metric.kind + "s"].append((name, metric.help, series))
    delta["spans"] = [(s.name, dict(s.labels), s.start, s.clock, s.end,
                       s.span_id, s.parent_id)
                      for s in runtime.tracer.spans()[span_base:]]
    # Worker-local span-id accounting: ids in [span_id_base, base+consumed)
    # were drawn by this task; the merge shifts them onto the parent's
    # counter so numbering matches what a serial run would have assigned.
    delta["span_id_base"] = span_id_base
    delta["span_ids_consumed"] = runtime.tracer.next_span_id - span_id_base
    delta["events"] = [(r.kind, r.time, r.clock, dict(r.data))
                       for r in runtime.events.records()[event_base:]]
    return delta


def _merge_delta(runtime: Runtime, delta: Dict) -> None:
    """Apply a worker's telemetry delta to the main-process runtime.

    Counters add, gauges last-write-wins, histograms append the new
    observations, spans and events append in worker emission order —
    exactly what the serial loop would have produced, because deltas are
    merged in submission order.
    """
    registry = runtime.registry
    for name, help_text, series in delta["counters"]:
        counter = registry.counter(name, help_text)
        for labels, amount in series:
            counter.inc(amount, **labels)
    for name, help_text, series in delta["gauges"]:
        gauge = registry.gauge(name, help_text)
        for labels, value in series:
            gauge.set(value, **labels)
    for name, help_text, series in delta["histograms"]:
        histogram = registry.histogram(name, help_text)
        for labels, values in series:
            for value in values:
                histogram.observe(value, **labels)
    id_base = delta.get("span_id_base", 0)
    offset = runtime.tracer.next_span_id - id_base
    for name, labels, start, clock, end, span_id, parent_id in delta["spans"]:
        # Ids at or above the fork-time base are worker-local: shift them
        # onto the parent counter (preserving start order).  Ids below the
        # base were assigned pre-fork (e.g. the enclosing map span) and
        # are already correct in the parent.
        if span_id is not None and span_id >= id_base:
            span_id += offset
        if parent_id is not None and parent_id >= id_base:
            parent_id += offset
        runtime.tracer.record(
            Span(name=name, labels=labels, start=start, clock=clock, end=end,
                 span_id=span_id, parent_id=parent_id))
    runtime.tracer.advance_span_ids(delta.get("span_ids_consumed", 0))
    for kind, when, clock, data in delta["events"]:
        runtime.events.record(
            EventRecord(kind=kind, time=when, clock=clock, data=data))


# -- the worker entry point ----------------------------------------------------

#: (fn, runtime, label) handed to forked children by inheritance; set
#: immediately before pool creation, cleared after the map completes.
_WORKER_STATE: Optional[Dict[str, Any]] = None

#: True inside a pool worker; nested executors detect it and go serial.
_IN_WORKER = False


def _worker_bootstrap() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _worker_run(task: Tuple[int, Any]) -> bytes:
    """Run one task in a forked worker; returns pickled (result, delta).

    The result is pickled *here*, while any shared-memory views it might
    alias are still mapped; the parent unpickles after the pool joins.
    """
    index, payload = task
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - defensive; fork guarantees state
        raise ParallelError("worker started without inherited task state")
    fn: Callable = state["fn"]
    runtime: Runtime = state["runtime"]
    label: str = state["label"]

    registry_before = _registry_snapshot(runtime.registry)
    span_base = len(runtime.tracer.spans())
    span_id_base = runtime.tracer.next_span_id
    event_base = len(runtime.events.records())
    attached: List[shared_memory.SharedMemory] = []
    started = runtime.now()
    try:
        item = _decode_payload(payload, attached)
        with runtime.tracer.span(TASK_SPAN, label=label, task=index):
            result = fn(item)
        runtime.registry.counter(BUSY_METRIC, help=_BUSY_HELP).inc(
            runtime.now() - started, label=label)
        delta = _capture_delta(runtime, registry_before, span_base, event_base,
                               span_id_base=span_id_base)
        return pickle.dumps((result, delta), protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        for segment in attached:
            segment.close()


# -- the executor --------------------------------------------------------------

def fork_available() -> bool:
    """True when this process can fan work out to forked workers."""
    return ("fork" in multiprocessing.get_all_start_methods()
            and not _IN_WORKER)


class ParallelExecutor:
    """Ordered fan-out of tasks over a process pool, dump-deterministic.

    Parameters
    ----------
    workers:
        Pool width; ``None`` means one per available core.  ``1`` (or a
        platform without ``fork``) selects the serial path, which emits
        the identical span/counter structure so dumps stay comparable
        across worker counts.
    runtime:
        The :class:`~repro.runtime.core.Runtime` that receives engine
        telemetry and merged worker deltas; the process default if None.
    shm_min_bytes:
        Arrays at or above this many bytes ship via shared memory; the
        rest travel inside the pickled payload.
    """

    def __init__(self, workers: Optional[int] = None, runtime: Optional[Runtime] = None,
                 shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES):
        if workers is None:
            workers = multiprocessing.cpu_count()
        if workers < 1:
            raise ParallelError(f"workers must be >= 1: {workers}")
        if shm_min_bytes < 0:
            raise ParallelError(f"shm_min_bytes must be >= 0: {shm_min_bytes}")
        self.workers = int(workers)
        self.runtime = runtime or get_runtime()
        self.shm_min_bytes = int(shm_min_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ParallelExecutor(workers={self.workers}, "
                f"shm_min_bytes={self.shm_min_bytes})")

    @property
    def is_parallel(self) -> bool:
        """Whether ``map_ordered`` will actually fork for multi-item maps."""
        return self.workers > 1 and fork_available()

    def map_ordered(self, fn: Callable[[Any], Any], items: Iterable[Any],
                    label: str = "task") -> List[Any]:
        """Apply ``fn`` to every item; results in submission order.

        ``fn`` may be any callable — closures and lambdas included —
        because workers inherit it through ``fork`` rather than pickle.
        Worker-side telemetry is merged back in submission order, so for
        contract-following task functions the runtime dump is identical
        to a serial run.  ``label`` names the tasks in spans and metrics
        (it must not contain ``=`` or ``,``).
        """
        items = list(items)
        with self.runtime.tracer.span(MAP_SPAN, label=label,
                                      tasks=len(items)):
            if not items:
                return []
            if len(items) == 1 or not self.is_parallel:
                return self._run_serial(fn, items, label)
            return self._run_parallel(fn, items, label)

    # -- serial path ----------------------------------------------------------
    def _run_serial(self, fn: Callable, items: Sequence[Any],
                    label: str) -> List[Any]:
        runtime = self.runtime
        tasks = runtime.registry.counter(TASKS_METRIC, help=_TASKS_HELP)
        busy = runtime.registry.counter(BUSY_METRIC, help=_BUSY_HELP)
        results = []
        for index, item in enumerate(items):
            started = runtime.now()
            with runtime.tracer.span(TASK_SPAN, label=label, task=index):
                results.append(fn(item))
            busy.inc(runtime.now() - started, label=label)
            tasks.inc(label=label)
        return results

    # -- parallel path --------------------------------------------------------
    def _run_parallel(self, fn: Callable, items: Sequence[Any],
                      label: str) -> List[Any]:
        global _WORKER_STATE
        runtime = self.runtime
        tasks = runtime.registry.counter(TASKS_METRIC, help=_TASKS_HELP)
        shipped = runtime.registry.counter(BYTES_METRIC, help=_BYTES_HELP)

        segments: List[shared_memory.SharedMemory] = []
        payloads: List[Any] = []
        try:
            for item in items:
                payload, staged, item_segments = _encode_item(
                    item, self.shm_min_bytes)
                segments.extend(item_segments)
                payloads.append(payload)
                if staged:
                    shipped.inc(staged, label=label)

            # Stash the task state where forked children will inherit it,
            # then fork the pool.  chunksize=1 keeps scheduling greedy so
            # uneven tasks load-balance; result order is positional either
            # way.
            _WORKER_STATE = {"fn": fn, "runtime": runtime, "label": label}
            pool = multiprocessing.get_context("fork").Pool(
                processes=min(self.workers, len(items)),
                initializer=_worker_bootstrap)
            try:
                blobs = pool.map(_worker_run, list(enumerate(payloads)),
                                 chunksize=1)
                pool.close()
                pool.join()
            except BaseException:
                pool.terminate()
                pool.join()
                raise
        finally:
            _WORKER_STATE = None
            for segment in segments:
                segment.close()
                segment.unlink()

        results = []
        for blob in blobs:
            result, delta = pickle.loads(blob)
            _merge_delta(runtime, delta)
            tasks.inc(label=label)
            results.append(result)
        return results


# -- the determinism-contract view of a dump -----------------------------------

def deterministic_dump(runtime: Optional[Runtime] = None,
                       extra_drop: Iterable[str] = (),
                       drop_metric_prefixes: Iterable[str] = (),
                       drop_span_prefixes: Iterable[str] = ()) -> Dict:
    """``runtime.dump()`` restricted to the parallel determinism contract.

    Drops the engine's own transport telemetry (``runtime.parallel.*`` —
    busy-seconds and bytes-shipped legitimately vary with worker count),
    the per-process plan-cache counters (``nn.plan.*`` — capture counts
    depend on worker placement) and the documented wall-clock metrics,
    and zeroes wall-clock span and
    event timestamps (span *names, labels and order* are preserved — the
    contract covers structure, not wall time).  Everything that remains
    must be byte-identical across any worker count; the worker-sweep
    property tests serialize this and compare bytes.

    ``drop_metric_prefixes`` / ``drop_span_prefixes`` let callers exclude
    whole telemetry families whose *attempt counts* legitimately vary
    with deployment shape — e.g. ``streaming.broker.*`` fetch/lag series
    vary with consumer-group size even though the committed output does
    not (see :data:`repro.streaming.broker.VOLATILE_METRIC_PREFIXES`).
    """
    rt = runtime or get_runtime()
    payload = rt.dump()
    drop = set(WALL_CLOCK_METRICS) | set(extra_drop)
    metric_prefixes = (ENGINE_METRIC_PREFIX, PLAN_METRIC_PREFIX,
                       *drop_metric_prefixes)
    span_prefixes = tuple(drop_span_prefixes)
    for kind, metrics in payload["metrics"].items():
        payload["metrics"][kind] = {
            name: series for name, series in metrics.items()
            if name not in drop and not name.startswith(metric_prefixes)}
    if span_prefixes:
        payload["spans"] = [span for span in payload["spans"]
                            if not span["name"].startswith(span_prefixes)]
    for span in payload["spans"]:
        if span["clock"] == "wall":
            span["start"] = span["end"] = span["duration"] = 0.0
    for event in payload["events"]:
        if event["clock"] == "wall":
            event["time"] = 0.0
    return payload
