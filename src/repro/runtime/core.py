"""The runtime object: one observability substrate for the whole stack.

A :class:`Runtime` bundles the four cross-layer services every module
shares:

- ``registry`` — the :class:`~repro.runtime.metrics.MetricsRegistry`;
- ``tracer`` — span tracing on the runtime clock;
- ``events`` — the structured :class:`~repro.runtime.events.EventLog`;
- ``rng`` — the seeded :class:`~repro.runtime.rng.RngContext`.

The runtime clock is wall time until a DES
:class:`~repro.cluster.sim.Environment` binds itself (see
:meth:`Runtime.sim_clock`); while bound, every span and event carries
virtual-clock timestamps, so a simulated run's dump is a deterministic
function of its seed.

Modules resolve their runtime with :func:`get_runtime`, which returns the
process-wide default unless a different runtime has been installed with
:func:`set_runtime` / :func:`using_runtime`.  Experiments that need an
isolated, reproducible dump do::

    with using_runtime(Runtime(seed=7)) as rt:
        ...build and run the stack...
        payload = rt.dump()
"""

from __future__ import annotations

from contextlib import contextmanager
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.runtime.events import EventLog
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.rng import RngContext
from repro.runtime.tracing import Tracer


class Runtime:
    """Metrics + tracing + events + seeded RNG behind one clock."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(self._clock)
        self.events = EventLog(self._clock)
        self.rng = RngContext(seed)
        self._clock_stack: List = []   # bound DES environments, innermost last
        self._gensym_counts: Dict[str, int] = {}

    # -- clock ---------------------------------------------------------------
    def now(self) -> float:
        """Virtual time of the innermost bound simulation, else wall time."""
        if self._clock_stack:
            return self._clock_stack[-1].now
        return time.perf_counter()

    @property
    def clock_kind(self) -> str:
        return "sim" if self._clock_stack else "wall"

    def _clock(self) -> Tuple[float, str]:
        return self.now(), self.clock_kind

    @contextmanager
    def sim_clock(self, env) -> Iterator:
        """Bind a DES environment as the time source for the block."""
        self._clock_stack.append(env)
        try:
            yield env
        finally:
            self._clock_stack.pop()

    # -- naming ---------------------------------------------------------------
    def gensym(self, prefix: str) -> str:
        """A per-runtime unique name (``flume-agent-0``, ``fog-stream-1``...).

        Counters restart with each fresh runtime, so two identically-seeded
        runs in fresh runtimes generate identical label values — a
        requirement for byte-identical dumps.
        """
        n = self._gensym_counts.get(prefix, 0)
        self._gensym_counts[prefix] = n + 1
        return f"{prefix}-{n}"

    # -- lifecycle -------------------------------------------------------------
    def reset(self) -> None:
        """Drop all recorded telemetry (seed and bound clocks persist)."""
        self.registry.reset()
        self.tracer.reset()
        self.events.reset()
        self._gensym_counts.clear()

    def dump(self) -> Dict:
        """The full observability state as one JSON-ready dict."""
        return {
            "seed": self.seed,
            "metrics": self.registry.dump(),
            "spans": self.tracer.dump(),
            "events": self.events.dump(),
        }


_default_runtime: Optional[Runtime] = None


def get_runtime() -> Runtime:
    """The currently-installed runtime (created on first use)."""
    global _default_runtime
    if _default_runtime is None:
        _default_runtime = Runtime()
    return _default_runtime


def set_runtime(runtime: Runtime) -> Runtime:
    """Install ``runtime`` as the process default; returns it."""
    global _default_runtime
    _default_runtime = runtime
    return runtime


@contextmanager
def using_runtime(runtime: Runtime) -> Iterator[Runtime]:
    """Temporarily install ``runtime`` as the default for a block."""
    global _default_runtime
    previous = _default_runtime
    _default_runtime = runtime
    try:
        yield runtime
    finally:
        _default_runtime = previous
