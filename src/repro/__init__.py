"""Distributed cyberinfrastructure for smart cities — ICDCS 2018 reproduction.

A from-scratch Python implementation of the system described in Shams et
al., *Towards Distributed Cyberinfrastructure for Smart Cities using Big
Data and Deep Learning Technologies* (ICDCS 2018): the four-layer
architecture (Fig. 1), the four-tier fog model with early-exit DNN
inference (Figs. 3, 5, 7, 8), every big-data substrate the paper borrows
(HDFS/YARN/Spark/HBase/MongoDB/Flume/Sqoop roles), a NumPy deep-learning
framework standing in for TensorFlow, and the Sec. IV applications.

Entry points:

- :class:`repro.core.CyberInfrastructure` — the assembled stack.
- :mod:`repro.nn` — the deep-learning framework and model families.
- :mod:`repro.fog` — early-exit placement, costing, and stream simulation.
- :mod:`repro.apps` — vehicle, action, social, fusion and DRL applications.
"""

__version__ = "1.0.0"
