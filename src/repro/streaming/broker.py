"""A Kafka-class broker: the durable pub/sub backbone of the Fig. 4 pipeline.

This module grew out of the original ``repro.streaming.bus`` topic log
(which re-exports everything here for compatibility).  What the smart-city
deployment guidelines call for — and what every heavy-traffic layer above
this one assumes — is a *broker*, not a list of lists:

- **Consumer groups with committed offsets.**  A :class:`Consumer` is a
  group *member*; ``poll()`` advances a fetch *position* while
  ``commit()`` durably advances the group's *committed* offset.  A member
  that dies (or is fenced by a rebalance) before committing loses only its
  position: the committed offset stands, and the records are redelivered —
  at-least-once delivery instead of the old eager fetch that silently lost
  records on a consumer crash.  ``auto_commit=True`` (the default, and the
  old bus behaviour) commits atomically inside ``poll``.
- **Partition assignment and rebalancing.**  Partitions of each topic are
  distributed round-robin over the members subscribed to it.  Joins and
  leaves bump the group *generation*, recompute the assignment, and reset
  fetch positions to the committed offsets so in-flight uncommitted reads
  are redelivered to the new owners.  Commits from a member holding a
  stale generation are fenced with :class:`RebalanceError`.
- **Retention and compaction.**  Per-topic limits on retained records and
  record age (measured on the runtime sim clock when one is bound), plus
  log compaction for keyed topics: only the latest record per key
  survives, ``value=None`` is a deletion tombstone, and offsets are
  preserved so committed positions stay valid over a compacted log.
- **Backpressure.**  A topic may bound its partitions; ``produce`` against
  a full partition first evicts records already committed by every
  consumer group, then applies the configured policy — ``"block"`` raises
  the retryable :class:`BackpressureStall` (Flume agents translate it into
  a transaction rollback so the channel, and ultimately the source, slows
  down), ``"drop"`` discards the new records, ``"error"`` raises
  :class:`BackpressureError`.
- **Zero-copy payload handoff.**  Topics created with
  ``share_ndarrays=True`` stage large ndarray values into
  ``multiprocessing.shared_memory`` segments once, reusing the
  :mod:`repro.runtime.parallel` transport; every consumer group reads the
  same read-only view with no per-consumer copy, and eviction unlinks the
  segment.

Telemetry lives under ``streaming.broker.*``: produce/fetch volume and
latency, per-group lag gauges, rebalance and generation counters,
retention evictions, backpressure stalls, shared-memory bytes.  Delivery
*attempts* legitimately vary with group membership, so
:data:`VOLATILE_METRIC_PREFIXES` / :data:`VOLATILE_SPAN_PREFIXES` name
what invariance tests should drop via
:func:`repro.runtime.parallel.deterministic_dump`.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.runtime import get_runtime
from repro.runtime.parallel import (
    DEFAULT_SHM_MIN_BYTES,
    SharedArrayRef,
    share_ndarrays,
)


class BrokerError(Exception):
    """Raised for unknown topics/partitions or bad consumer usage."""


#: Backwards-compatible name: the old bus raised ``BusError``.
BusError = BrokerError


class BackpressureError(BrokerError):
    """A bounded partition is full and the topic policy is ``"error"``."""


class BackpressureStall(BackpressureError):
    """A bounded partition is full under the ``"block"`` policy.

    Retryable: the producer should hold its batch (Flume agents roll the
    transaction back into the channel) and retry after consumers commit.
    """


class RebalanceError(BrokerError):
    """A commit from a member fenced by a newer group generation."""


#: allowed values for TopicConfig.backpressure
BACKPRESSURE_POLICIES = ("block", "drop", "error")

#: broker metric/span families that vary with delivery attempts and group
#: membership; invariance tests drop them via deterministic_dump(...)
VOLATILE_METRIC_PREFIXES = ("streaming.broker.",)
VOLATILE_SPAN_PREFIXES = ("streaming.broker.",)


@dataclass(frozen=True)
class Record:
    """One message in a topic partition.

    ``timestamp`` is the runtime sim clock when a DES environment is
    bound, else a deterministic per-broker logical tick — never wall
    time, so dumps stay replayable.
    """

    topic: str
    partition: int
    offset: int
    key: Optional[str]
    value: Any
    timestamp: float


@dataclass(frozen=True)
class TopicConfig:
    """Per-topic retention, compaction, backpressure and transport knobs."""

    partitions: int = 4
    retention_max_records: Optional[int] = None
    retention_max_age_s: Optional[float] = None
    compact: bool = False
    max_partition_records: Optional[int] = None
    backpressure: str = "block"
    share_ndarrays: bool = False

    def __post_init__(self):
        if self.partitions < 1:
            raise BrokerError(f"partitions must be >= 1: {self.partitions}")
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise BrokerError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}")
        for name in ("retention_max_records", "max_partition_records"):
            bound = getattr(self, name)
            if bound is not None and bound < 1:
                raise BrokerError(f"{name} must be >= 1: {bound}")
        if self.retention_max_age_s is not None \
                and self.retention_max_age_s < 0:
            raise BrokerError(
                f"retention_max_age_s must be >= 0: {self.retention_max_age_s}")


class _Partition:
    """One partition's retained log.

    ``records`` is ordered by offset but may be *sparse* after retention
    or compaction; absolute offsets are preserved so group positions stay
    meaningful.  ``end_offset`` is the next offset to assign, and
    ``base_offset`` the earliest retained offset (== ``end_offset`` when
    empty).
    """

    __slots__ = ("records", "end_offset", "shm")

    def __init__(self):
        self.records: List[Record] = []
        self.end_offset = 0
        self.shm: Dict[int, List] = {}   # offset -> SharedMemory segments

    def __len__(self) -> int:
        return len(self.records)

    @property
    def base_offset(self) -> int:
        return self.records[0].offset if self.records else self.end_offset

    def index_for(self, offset: int) -> int:
        """Index of the first retained record at or above ``offset``."""
        return bisect_left(self.records, offset, key=lambda r: r.offset)


class _Topic:
    __slots__ = ("name", "config", "partitions", "_round_robin")

    def __init__(self, name: str, config: TopicConfig):
        self.name = name
        self.config = config
        self.partitions = [_Partition() for _ in range(config.partitions)]
        self._round_robin = 0

    def plan_partitions(self, keys: Sequence[Optional[str]]) -> List[int]:
        """Partition for each key *without* committing the cursor.

        Pure for keyed records (stable hash); unkeyed records take the
        round-robin cursor positions they *would* get.  Call
        :meth:`commit_plan` once the batch is actually appended, so a
        backpressure-rejected batch does not disturb the rotation.
        """
        cursor = self._round_robin
        plan = []
        for key in keys:
            if key is None:
                plan.append(cursor % len(self.partitions))
                cursor += 1
            else:
                digest = hashlib.md5(key.encode()).digest()
                plan.append(int.from_bytes(digest[:4], "big")
                            % len(self.partitions))
        return plan

    def commit_plan(self, keys: Sequence[Optional[str]]) -> None:
        self._round_robin += sum(1 for key in keys if key is None)


@dataclass
class _Group:
    """Consumer-group membership, generation, assignment and fair cursors."""

    name: str
    generation: int = 0
    members: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: topic -> {partition -> member_id}
    assignment: Dict[str, Dict[int, str]] = field(default_factory=dict)
    #: topic -> fair-fetch rotation cursor (next partition to scan first)
    cursors: Dict[str, int] = field(default_factory=dict)

    def partitions_of(self, member_id: str, topic: str) -> List[int]:
        mapping = self.assignment.get(topic, {})
        return sorted(p for p, m in mapping.items() if m == member_id)


class Broker:
    """Topics, producers, consumer groups, retention and backpressure.

    The public surface is everything tests and other layers need;
    ``_topics`` / ``_groups`` / ``_group_offsets`` / ``_positions`` are
    broker internals (lint rule API303 bans touching them outside
    ``repro/streaming/``).
    """

    def __init__(self, runtime=None,
                 shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
                 latency_sample_every: int = 1):
        if latency_sample_every < 1:
            raise BrokerError(
                f"latency_sample_every must be >= 1: {latency_sample_every}")
        self._topics: Dict[str, _Topic] = {}
        self._groups: Dict[str, _Group] = {}
        #: (group, topic, partition) -> committed offset
        self._group_offsets: Dict[Tuple[str, str, int], int] = {}
        #: (group, topic, partition) -> fetch position (>= committed)
        self._positions: Dict[Tuple[str, str, int], int] = {}
        self._segments: Dict[str, Any] = {}  # shm name -> SharedMemory
        self._staged_bytes = 0
        self._ticks = 0
        self.shm_min_bytes = int(shm_min_bytes)
        self.latency_sample_every = int(latency_sample_every)
        self._sampled = {"produce": 0, "fetch": 0}
        self.runtime = runtime or get_runtime()
        registry = self.runtime.registry
        self._produced = registry.counter(
            "streaming.broker.records_produced",
            "records appended to a topic")
        self._consumed = registry.counter(
            "streaming.broker.records_consumed",
            "records fetched by a consumer group")
        self._dropped = registry.counter(
            "streaming.broker.records_dropped",
            "records discarded by the drop backpressure policy")
        self._stalls = registry.counter(
            "streaming.broker.backpressure_stalls",
            "blocked produce attempts against full partitions")
        self._evictions = registry.counter(
            "streaming.broker.retention_evictions",
            "records evicted by retention, compaction or consumed-head "
            "trimming")
        self._rebalances = registry.counter(
            "streaming.broker.rebalances",
            "consumer-group rebalances (joins and leaves)")
        self._generation = registry.gauge(
            "streaming.broker.generation",
            "current consumer-group generation")
        self._lag = registry.gauge(
            "streaming.broker.lag",
            "records between a group's committed offsets and the log end")
        self._depth = registry.gauge(
            "streaming.broker.depth",
            "retained records per topic")
        self._shm_bytes = registry.counter(
            "streaming.broker.shm_bytes",
            "ndarray payload bytes staged into shared memory")
        self._produce_latency = registry.histogram(
            "streaming.broker.produce_latency_s",
            "runtime-clock seconds per produce call (sampled; wall time "
            "outside a DES run)")
        self._fetch_latency = registry.histogram(
            "streaming.broker.fetch_latency_s",
            "runtime-clock seconds per poll call (sampled; wall time "
            "outside a DES run)")
        self._e2e_latency = registry.histogram(
            "streaming.broker.produce_to_consume_s",
            "sim-clock seconds between produce and fetch (sampled; "
            "observed only while a DES clock is bound)")

    # -- clock ---------------------------------------------------------------
    def _stamp(self) -> float:
        """Record timestamp: sim time when bound, else a logical tick."""
        if self.runtime.clock_kind == "sim":
            return self.runtime.now()
        stamp = float(self._ticks)
        self._ticks += 1
        return stamp

    def _age_now(self) -> float:
        """The retention clock's *current* reading (no tick consumed)."""
        if self.runtime.clock_kind == "sim":
            return self.runtime.now()
        return float(self._ticks)

    def _sample(self, kind: str) -> bool:
        n = self._sampled[kind]
        self._sampled[kind] = n + 1
        return n % self.latency_sample_every == 0

    # -- topics -----------------------------------------------------------------
    def create_topic(self, name: str, partitions: int = 4, *,
                     retention_max_records: Optional[int] = None,
                     retention_max_age_s: Optional[float] = None,
                     compact: bool = False,
                     max_partition_records: Optional[int] = None,
                     backpressure: str = "block",
                     share_ndarrays: bool = False) -> None:
        if name in self._topics:
            raise BrokerError(f"topic already exists: {name}")
        config = TopicConfig(
            partitions=partitions,
            retention_max_records=retention_max_records,
            retention_max_age_s=retention_max_age_s,
            compact=compact,
            max_partition_records=max_partition_records,
            backpressure=backpressure,
            share_ndarrays=share_ndarrays)
        self._topics[name] = _Topic(name, config)

    def topic_names(self) -> List[str]:
        return sorted(self._topics)

    def topic_config(self, name: str) -> TopicConfig:
        return self._topic(name).config

    def _topic(self, name: str) -> _Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise BrokerError(f"no such topic: {name}") from None

    def partition_count(self, topic: str) -> int:
        return len(self._topic(topic).partitions)

    def topic_size(self, topic: str) -> int:
        """Retained records across all partitions."""
        return sum(len(p) for p in self._topic(topic).partitions)

    def partition_sizes(self, topic: str) -> List[int]:
        """Retained records per partition."""
        return [len(p) for p in self._topic(topic).partitions]

    def begin_offset(self, topic: str, partition: int) -> int:
        """Earliest retained offset of a partition."""
        return self._partition(topic, partition).base_offset

    def end_offset(self, topic: str, partition: int) -> int:
        """The offset the next produced record will get."""
        return self._partition(topic, partition).end_offset

    def _partition(self, topic: str, partition: int) -> _Partition:
        t = self._topic(topic)
        if not 0 <= partition < len(t.partitions):
            raise BrokerError(
                f"topic {topic} has no partition {partition}")
        return t.partitions[partition]

    # -- produce -----------------------------------------------------------------
    def produce(self, topic: str, value: Any,
                key: Optional[str] = None) -> Optional[Record]:
        """Append one record; returns it, or None when dropped.

        Against a full bounded partition the topic's backpressure policy
        applies (see :meth:`produce_batch`, which this delegates to).
        """
        records = self.produce_batch(topic, [value], key_fn=lambda _: key)
        return records[0] if records else None

    def produce_batch(self, topic: str, values: Sequence[Any],
                      key_fn: Optional[Callable[[Any], Optional[str]]] = None
                      ) -> List[Record]:
        """Append a batch atomically with respect to backpressure.

        Capacity is checked for the *whole* batch up front (after evicting
        whatever retention allows), so a ``"block"``-policy stall raises
        :class:`BackpressureStall` before any record is appended — a
        retried batch can never duplicate a delivered prefix.  Under the
        ``"drop"`` policy only the records that fit are appended and the
        overflow is counted in ``streaming.broker.records_dropped``.
        """
        t = self._topic(topic)
        values = list(values)
        if not values:
            return []
        started = self.runtime.now()
        keys = [key_fn(v) if key_fn is not None else None for v in values]
        plan = t.plan_partitions(keys)
        keep = self._admit(t, plan)
        out: List[Record] = []
        for index, (value, key, partition) in enumerate(zip(values, keys, plan)):
            if not keep[index]:
                continue
            part = t.partitions[partition]
            offset = part.end_offset
            stored = self._store_value(t, part, offset, value)
            record = Record(topic=topic, partition=partition, offset=offset,
                            key=key, value=stored, timestamp=self._stamp())
            part.records.append(record)
            part.end_offset = offset + 1
            out.append(record)
        t.commit_plan(keys)
        self._apply_size_retention(t)
        if out:
            self._produced.inc(len(out), topic=topic)
            self._depth.set(self.topic_size(topic), topic=topic)
        if self._sample("produce"):
            self._produce_latency.observe(self.runtime.now() - started,
                                          topic=topic)
        return out

    def _admit(self, t: _Topic, plan: Sequence[int]) -> List[bool]:
        """Which planned records fit, after retention; applies the policy."""
        bound = t.config.max_partition_records
        if bound is None:
            return [True] * len(plan)
        needed: Dict[int, int] = {}
        for partition in plan:
            needed[partition] = needed.get(partition, 0) + 1
        free: Dict[int, int] = {}
        for partition, count in needed.items():
            part = t.partitions[partition]
            if len(part) + count > bound:
                self._evict_consumed_head(t, partition)
                self._evict_aged(t, partition)
            free[partition] = bound - len(part)
        if all(count <= free[partition] for partition, count in needed.items()):
            return [True] * len(plan)
        policy = t.config.backpressure
        if policy == "drop":
            keep = []
            for partition in plan:
                admitted = free[partition] > 0
                if admitted:
                    free[partition] -= 1
                else:
                    self._dropped.inc(topic=t.name, reason="backpressure")
                keep.append(admitted)
            return keep
        self._stalls.inc(topic=t.name)
        overfull = sorted(p for p, count in needed.items()
                          if count > free[p])
        message = (f"topic {t.name} partitions {overfull} are full "
                   f"(bound {bound})")
        if policy == "block":
            raise BackpressureStall(
                message + "; retry after consumers commit")
        raise BackpressureError(message)

    # -- retention / compaction ---------------------------------------------------
    def run_retention(self, topic: Optional[str] = None) -> int:
        """Apply age/size retention (and compaction) now; returns evictions."""
        names = [topic] if topic is not None else self.topic_names()
        evicted = 0
        for name in names:
            t = self._topic(name)
            with self.runtime.tracer.span("streaming.broker.retention",
                                          topic=name):
                before = self.topic_size(name)
                for partition in range(len(t.partitions)):
                    self._evict_aged(t, partition)
                self._apply_size_retention(t)
                if t.config.compact:
                    self._compact(t)
                evicted += before - self.topic_size(name)
            self._depth.set(self.topic_size(name), topic=name)
        return evicted

    def compact(self, topic: str) -> int:
        """Force log compaction of a keyed topic; returns removed records."""
        t = self._topic(topic)
        with self.runtime.tracer.span("streaming.broker.compaction",
                                      topic=topic):
            removed = self._compact(t)
        self._depth.set(self.topic_size(topic), topic=topic)
        return removed

    def _apply_size_retention(self, t: _Topic) -> None:
        bound = t.config.retention_max_records
        if bound is None:
            return
        for partition, part in enumerate(t.partitions):
            if len(part) > bound:
                self._truncate_head(t, partition, len(part) - bound,
                                    reason="size")

    def _evict_aged(self, t: _Topic, partition: int) -> None:
        max_age = t.config.retention_max_age_s
        if max_age is None:
            return
        part = t.partitions[partition]
        horizon = self._age_now() - max_age
        cut = 0
        while cut < len(part.records) \
                and part.records[cut].timestamp < horizon:
            cut += 1
        if cut:
            self._truncate_head(t, partition, cut, reason="age")

    def _evict_consumed_head(self, t: _Topic, partition: int) -> None:
        """Trim records already committed by every group that consumes here."""
        committed = [offset for (group, topic, p), offset
                     in self._group_offsets.items()
                     if topic == t.name and p == partition]
        if not committed:
            return
        safe = min(committed)
        part = t.partitions[partition]
        cut = part.index_for(safe)
        if cut:
            self._truncate_head(t, partition, cut, reason="consumed")

    def _truncate_head(self, t: _Topic, partition: int, count: int,
                       reason: str) -> None:
        part = t.partitions[partition]
        for record in part.records[:count]:
            self._release(part, record.offset)
        part.records = part.records[count:]
        self._evictions.inc(count, topic=t.name, reason=reason)

    def _compact(self, t: _Topic) -> int:
        """Keep only the latest record per key; tombstones delete the key."""
        removed = 0
        for part in t.partitions:
            latest: Dict[str, int] = {}
            deleted: Set[str] = set()
            for index, record in enumerate(part.records):
                if record.key is None:
                    continue
                latest[record.key] = index
                if record.value is None:
                    deleted.add(record.key)
                else:
                    deleted.discard(record.key)
            survivors = []
            for index, record in enumerate(part.records):
                keep = (record.key is None
                        or (latest[record.key] == index
                            and record.key not in deleted))
                if keep:
                    survivors.append(record)
                else:
                    self._release(part, record.offset)
                    removed += 1
            part.records = survivors
        if removed:
            self._evictions.inc(removed, topic=t.name, reason="compaction")
        return removed

    # -- zero-copy payload transport -----------------------------------------------
    def _store_value(self, t: _Topic, part: _Partition, offset: int,
                     value: Any) -> Any:
        if not t.config.share_ndarrays:
            return value
        encoded, staged, segments = share_ndarrays(value, self.shm_min_bytes)
        if segments:
            part.shm[offset] = segments
            for segment in segments:
                self._segments[segment.name] = segment
            self._staged_bytes += staged
            self._shm_bytes.inc(staged, topic=t.name)
        return encoded

    def _materialize(self, t: _Topic, part: _Partition,
                     record: Record) -> Record:
        if record.offset not in part.shm:
            return record
        return replace(record, value=self._resolve(record.value))

    def _resolve(self, obj: Any) -> Any:
        if isinstance(obj, SharedArrayRef):
            segment = self._segments[obj.segment]
            view = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                              buffer=segment.buf)
            view.flags.writeable = False
            return view
        if isinstance(obj, tuple):
            return tuple(self._resolve(value) for value in obj)
        if isinstance(obj, list):
            return [self._resolve(value) for value in obj]
        if isinstance(obj, dict):
            return {key: self._resolve(value) for key, value in obj.items()}
        return obj

    def _release(self, part: _Partition, offset: int) -> None:
        for segment in part.shm.pop(offset, ()):
            self._segments.pop(segment.name, None)
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def tracked_segments(self) -> int:
        """Shared-memory segments currently staged (and not yet evicted)."""
        return len(self._segments)

    def shm_bytes_staged(self) -> int:
        """Cumulative ndarray bytes this broker staged into shared memory."""
        return self._staged_bytes

    def close(self) -> None:
        """Unlink every shared-memory segment this broker staged."""
        for t in self._topics.values():
            for part in t.partitions:
                for offset in list(part.shm):
                    self._release(part, offset)

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self.close()
        except Exception:
            pass

    # -- consumer groups -----------------------------------------------------------
    def consumer(self, group: str, topics: Sequence[str], *,
                 auto_commit: bool = True) -> "Consumer":
        """Join ``group`` as a new member subscribed to ``topics``.

        Joining rebalances the group: partitions are redistributed over
        the members subscribed to each topic and fetch positions reset to
        the committed offsets.
        """
        return Consumer(self, group, topics, auto_commit=auto_commit)

    def _group(self, name: str) -> _Group:
        if name not in self._groups:
            self._groups[name] = _Group(name)
        return self._groups[name]

    def group_generation(self, group: str) -> int:
        return self._group(group).generation

    def group_members(self, group: str) -> List[str]:
        return sorted(self._group(group).members)

    def partition_assignment(self, group: str, topic: str) -> Dict[int, str]:
        """{partition -> member_id} for one topic of one group."""
        return dict(self._group(group).assignment.get(topic, {}))

    def committed_offset(self, group: str, topic: str, partition: int) -> int:
        self._partition(topic, partition)
        return self._group_offsets.get((group, topic, partition), 0)

    def position(self, group: str, topic: str, partition: int) -> int:
        """The group's fetch position (falls back to the committed offset)."""
        self._partition(topic, partition)
        key = (group, topic, partition)
        return self._positions.get(key, self._group_offsets.get(key, 0))

    def _join(self, group_name: str, member_id: str,
              topics: Sequence[str]) -> None:
        group = self._group(group_name)
        group.members[member_id] = tuple(topics)
        self._rebalance(group, reason="join")

    def _leave(self, group_name: str, member_id: str) -> None:
        group = self._group(group_name)
        if member_id in group.members:
            del group.members[member_id]
            self._rebalance(group, reason="leave")

    def _rebalance(self, group: _Group, reason: str) -> None:
        group.generation += 1
        affected = sorted(set(group.assignment)
                          | {topic for topics in group.members.values()
                             for topic in topics})
        with self.runtime.tracer.span("streaming.broker.rebalance",
                                      group=group.name, reason=reason,
                                      generation=group.generation):
            assignment: Dict[str, Dict[int, str]] = {}
            for topic in affected:
                t = self._topic(topic)
                subscribers = sorted(
                    member for member, topics in group.members.items()
                    if topic in topics)
                if subscribers:
                    assignment[topic] = {
                        p: subscribers[p % len(subscribers)]
                        for p in range(len(t.partitions))}
                # Uncommitted fetches are redelivered to the new owners:
                # positions collapse back to the committed offsets.
                for p in range(len(t.partitions)):
                    self._positions.pop((group.name, topic, p), None)
            group.assignment = assignment
        self._rebalances.inc(group=group.name)
        self._generation.set(group.generation, group=group.name)

    # -- fetch --------------------------------------------------------------------
    def _fetch(self, consumer: "Consumer", topic: str,
               max_records: int) -> List[Record]:
        """Fetch from the member's assigned partitions, fairly rotated.

        A per-(group, topic) cursor decides which partition the scan
        starts at and advances past whichever partition filled the
        budget, so a hot low-numbered partition can no longer starve its
        siblings under bounded polls.
        """
        t = self._topic(topic)
        group = self._group(consumer.group)
        parts = group.partitions_of(consumer.member_id, topic)
        if not parts:
            return []
        cursor = group.cursors.get(topic, 0)
        start = next((i for i, p in enumerate(parts) if p >= cursor), 0)
        out: List[Record] = []
        for i in range(len(parts)):
            partition = parts[(start + i) % len(parts)]
            part = t.partitions[partition]
            key = (group.name, topic, partition)
            position = self._positions.get(
                key, self._group_offsets.get(key, 0))
            index = part.index_for(position)
            while index < len(part.records) and len(out) < max_records:
                record = part.records[index]
                out.append(self._materialize(t, part, record))
                index += 1
            if index >= len(part.records):
                position = part.end_offset
            else:
                position = part.records[index - 1].offset + 1 if out else position
            if out and out[-1].partition == partition:
                position = out[-1].offset + 1 \
                    if index < len(part.records) else part.end_offset
            self._positions[key] = position
            if len(out) >= max_records:
                group.cursors[topic] = partition + 1
                break
        if out:
            self._consumed.inc(len(out), group=group.name, topic=topic)
            if self.runtime.clock_kind == "sim":
                now = self.runtime.now()
                for record in out:
                    if self._sample("fetch"):
                        self._e2e_latency.observe(
                            now - record.timestamp,
                            group=group.name, topic=topic)
        self._update_lag(group.name, topic)
        return out

    def _update_lag(self, group: str, topic: str) -> None:
        self._lag.set(self.lag(group, topic), group=group, topic=topic)

    def _commit(self, consumer: "Consumer") -> Dict[Tuple[str, int], int]:
        """Advance committed offsets to the member's fetch positions."""
        group = self._group(consumer.group)
        if consumer.generation != group.generation:
            raise RebalanceError(
                f"member {consumer.member_id} of group {group.name} holds "
                f"generation {consumer.generation}, group is at "
                f"{group.generation}; re-poll before committing")
        committed: Dict[Tuple[str, int], int] = {}
        for topic in consumer.topics:
            for partition in group.partitions_of(consumer.member_id, topic):
                key = (group.name, topic, partition)
                position = self._positions.get(key)
                if position is None:
                    continue
                if position > self._group_offsets.get(key, 0):
                    self._group_offsets[key] = position
                    committed[(topic, partition)] = position
            self._update_lag(group.name, topic)
        return committed

    def _seek_to_committed(self, consumer: "Consumer") -> None:
        group = self._group(consumer.group)
        for topic in consumer.topics:
            for partition in group.partitions_of(consumer.member_id, topic):
                self._positions.pop((group.name, topic, partition), None)

    # -- group-level views ---------------------------------------------------------
    def lag(self, group: str, topic: str) -> int:
        """Records between the group's committed offsets and the log end."""
        t = self._topic(topic)
        total = 0
        for partition, part in enumerate(t.partitions):
            committed = self._group_offsets.get((group, topic, partition), 0)
            total += max(0, part.end_offset - committed)
        return total

    def reset_group(self, group: str, topic: str) -> None:
        """Rewind a group's offsets to replay a topic from the beginning."""
        t = self._topic(topic)
        for partition in range(len(t.partitions)):
            self._group_offsets.pop((group, topic, partition), None)
            self._positions.pop((group, topic, partition), None)


class Consumer:
    """A consumer-group member reading its assigned partitions.

    With ``auto_commit=True`` (the default) every successful ``poll``
    atomically commits the records it returned — the original bus
    behaviour.  With ``auto_commit=False`` the caller owns the commit
    boundary: ``commit()`` after processing gives at-least-once delivery,
    ``seek_to_committed()`` rolls an uncommitted read back for
    redelivery.
    """

    def __init__(self, broker: Broker, group: str, topics: Sequence[str],
                 auto_commit: bool = True):
        if not topics:
            raise BrokerError("consumer needs at least one topic")
        for topic in topics:
            broker._topic(topic)  # validate
        self.broker = broker
        #: kept under the old name so existing call sites (`consumer.bus`)
        #: stay valid
        self.bus = broker
        self.group = group
        self.topics = list(topics)
        self.auto_commit = auto_commit
        self.member_id = broker.runtime.gensym(f"{group}-member")
        self._closed = False
        broker._join(group, self.member_id, self.topics)
        self.generation = broker.group_generation(group)

    # -- membership -----------------------------------------------------------
    def assignment(self) -> List[Tuple[str, int]]:
        """The (topic, partition) pairs this member currently owns."""
        self._ensure_open()
        self._sync()
        group = self.broker._group(self.group)
        return [(topic, partition) for topic in self.topics
                for partition in group.partitions_of(self.member_id, topic)]

    def close(self) -> None:
        """Leave the group (triggers a rebalance); idempotent."""
        if not self._closed:
            self._closed = True
            self.broker._leave(self.group, self.member_id)

    def _ensure_open(self) -> None:
        if self._closed:
            raise BrokerError(
                f"consumer {self.member_id} has left group {self.group}")

    def _sync(self) -> bool:
        """Adopt the current generation; True when a rebalance intervened."""
        current = self.broker.group_generation(self.group)
        if current != self.generation:
            self.generation = current
            return True
        return False

    # -- consumption ----------------------------------------------------------
    def poll(self, max_records: int = 100) -> List[Record]:
        """Fetch up to ``max_records`` from this member's partitions."""
        self._ensure_open()
        if max_records < 1:
            raise BrokerError(f"max_records must be >= 1: {max_records}")
        self._sync()
        broker = self.broker
        started = broker.runtime.now()
        out: List[Record] = []
        for topic in self.topics:
            if len(out) >= max_records:
                break
            out.extend(broker._fetch(self, topic, max_records - len(out)))
        if self.auto_commit and out:
            broker._commit(self)
        if broker._sample("fetch"):
            broker._fetch_latency.observe(broker.runtime.now() - started,
                                          group=self.group)
        return out

    def drain(self, batch_size: int = 100) -> List[Record]:
        """Poll until no new records remain."""
        out: List[Record] = []
        while True:
            batch = self.poll(batch_size)
            if not batch:
                return out
            out.extend(batch)

    # -- offset management ------------------------------------------------------
    def commit(self) -> Dict[Tuple[str, int], int]:
        """Commit fetch positions; {(topic, partition): offset} advanced.

        Raises :class:`RebalanceError` when fenced by a newer generation
        (the uncommitted records will be redelivered to their new
        owners); the consumer re-syncs so the next poll proceeds.
        """
        self._ensure_open()
        try:
            return self.broker._commit(self)
        except RebalanceError:
            self._sync()
            raise

    def seek_to_committed(self) -> None:
        """Roll uncommitted fetches back: the next poll redelivers them."""
        self._ensure_open()
        self._sync()
        self.broker._seek_to_committed(self)

    def position(self, topic: str, partition: int) -> int:
        return self.broker.position(self.group, topic, partition)

    def committed(self, topic: str, partition: int) -> int:
        return self.broker.committed_offset(self.group, topic, partition)


class MessageBus(Broker):
    """Backwards-compatible name for :class:`Broker`.

    The original ``repro.streaming.bus.MessageBus`` grew into the broker;
    every public method it had still exists with the same semantics
    (``poll`` auto-commits by default), so existing call sites and
    imports keep working unchanged.
    """
