"""A Kafka-class broker: the durable pub/sub backbone of the Fig. 4 pipeline.

This module grew out of the original ``repro.streaming.bus`` topic log
(which re-exports everything here for compatibility).  What the smart-city
deployment guidelines call for — and what every heavy-traffic layer above
this one assumes — is a *broker*, not a list of lists:

- **Consumer groups with committed offsets.**  A :class:`Consumer` is a
  group *member*; ``poll()`` advances a fetch *position* while
  ``commit()`` durably advances the group's *committed* offset.  A member
  that dies (or is fenced by a rebalance) before committing loses only its
  position: the committed offset stands, and the records are redelivered —
  at-least-once delivery instead of the old eager fetch that silently lost
  records on a consumer crash.  ``auto_commit=True`` (the default, and the
  old bus behaviour) commits atomically inside ``poll``.
- **Partition assignment and rebalancing.**  Partitions of each topic are
  distributed round-robin over the members subscribed to it.  Joins and
  leaves bump the group *generation*, recompute the assignment, and reset
  fetch positions to the committed offsets so in-flight uncommitted reads
  are redelivered to the new owners.  Commits from a member holding a
  stale generation are fenced with :class:`RebalanceError`.
- **Retention and compaction.**  Per-topic limits on retained records and
  record age (measured on the runtime sim clock when one is bound), plus
  log compaction for keyed topics: only the latest record per key
  survives, ``value=None`` is a deletion tombstone, and offsets are
  preserved so committed positions stay valid over a compacted log.
- **Backpressure.**  A topic may bound its partitions; ``produce`` against
  a full partition first evicts records already committed by every
  consumer group, then applies the configured policy — ``"block"`` raises
  the retryable :class:`BackpressureStall` (Flume agents translate it into
  a transaction rollback so the channel, and ultimately the source, slows
  down), ``"drop"`` discards the new records, ``"error"`` raises
  :class:`BackpressureError`.
- **Zero-copy payload handoff.**  Topics created with
  ``share_ndarrays=True`` stage large ndarray values into
  ``multiprocessing.shared_memory`` segments once, reusing the
  :mod:`repro.runtime.parallel` transport; every consumer group reads the
  same read-only view with no per-consumer copy, and eviction unlinks the
  segment.
- **Columnar record batches.**  Partitions store parallel
  offset/key/value/timestamp columns rather than ``Record`` objects, and
  the hot path moves :class:`RecordBatch` slices of those columns:
  ``produce_batch`` bulk-appends columns and ``Consumer.poll_batch``
  returns a batch whose per-key ``groups()`` feed the serving gateway
  directly.  Individual :class:`Record` objects are materialized lazily,
  only when a caller actually asks for row views (``poll()``, iteration,
  indexing) — the payload objects themselves are never copied.

Telemetry lives under ``streaming.broker.*``: produce/fetch volume and
latency, per-group lag gauges, rebalance and generation counters,
retention evictions, backpressure stalls, shared-memory bytes.  Delivery
*attempts* legitimately vary with group membership, so
:data:`VOLATILE_METRIC_PREFIXES` / :data:`VOLATILE_SPAN_PREFIXES` name
what invariance tests should drop via
:func:`repro.runtime.parallel.deterministic_dump`.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.runtime import get_runtime
from repro.runtime.parallel import (
    DEFAULT_SHM_MIN_BYTES,
    SharedArrayRef,
    share_ndarrays,
)


class BrokerError(Exception):
    """Raised for unknown topics/partitions or bad consumer usage."""


#: Backwards-compatible name: the old bus raised ``BusError``.
BusError = BrokerError


class BackpressureError(BrokerError):
    """A bounded partition is full and the topic policy is ``"error"``."""


class BackpressureStall(BackpressureError):
    """A bounded partition is full under the ``"block"`` policy.

    Retryable: the producer should hold its batch (Flume agents roll the
    transaction back into the channel) and retry after consumers commit.
    """


class RebalanceError(BrokerError):
    """A commit from a member fenced by a newer group generation."""


#: allowed values for TopicConfig.backpressure
BACKPRESSURE_POLICIES = ("block", "drop", "error")

#: broker metric/span families that vary with delivery attempts and group
#: membership; invariance tests drop them via deterministic_dump(...)
VOLATILE_METRIC_PREFIXES = ("streaming.broker.",)
VOLATILE_SPAN_PREFIXES = ("streaming.broker.",)


@dataclass(frozen=True)
class Record:
    """One message in a topic partition.

    ``timestamp`` is the runtime sim clock when a DES environment is
    bound, else a deterministic per-broker logical tick — never wall
    time, so dumps stay replayable.
    """

    topic: str
    partition: int
    offset: int
    key: Optional[str]
    value: Any
    timestamp: float


def _group_sort_key(key: Optional[str]) -> Tuple[bool, str]:
    # None keys sort first, then lexicographic — deterministic regardless
    # of arrival order.
    return (key is not None, key if key is not None else "")


class RecordBatch:
    """A columnar slice of records: parallel offset/key/value/timestamp rows.

    The broker's hot-path unit: ``produce_batch`` returns one and
    ``Consumer.poll_batch`` fetches one, both without constructing a
    single :class:`Record`.  The columns are plain parallel lists owned
    by the batch; the *payload objects* in ``values`` are shared, never
    copied — row views (:meth:`record`, iteration, indexing,
    :meth:`select`) only re-reference them.

    ``topics`` is the topic name itself for a homogeneous batch (the
    common case) or a per-row list for a multi-topic concat; use
    :meth:`topic_at` for row-level access either way.
    """

    __slots__ = ("topics", "partitions", "offsets", "keys", "values",
                 "timestamps", "_stacked")

    def __init__(self, topics: Union[str, List[str]], partitions: List[int],
                 offsets: List[int], keys: List[Optional[str]],
                 values: List[Any], timestamps: List[float]):
        self.topics = topics
        self.partitions = partitions
        self.offsets = offsets
        self.keys = keys
        self.values = values
        self.timestamps = timestamps
        self._stacked = None

    @classmethod
    def empty(cls, topic: str = "") -> "RecordBatch":
        return cls(topic, [], [], [], [], [])

    @classmethod
    def concat(cls, batches: Sequence["RecordBatch"]) -> "RecordBatch":
        """One batch spanning ``batches`` in order (payloads shared)."""
        batches = [batch for batch in batches if batch.offsets]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        names = {batch.topics for batch in batches
                 if isinstance(batch.topics, str)}
        if len(names) == 1 and all(isinstance(batch.topics, str)
                                   for batch in batches):
            topics: Union[str, List[str]] = names.pop()
        else:
            topics = []
            for batch in batches:
                if isinstance(batch.topics, str):
                    topics.extend([batch.topics] * len(batch.offsets))
                else:
                    topics.extend(batch.topics)
        out = cls(topics, [], [], [], [], [])
        for batch in batches:
            out.partitions.extend(batch.partitions)
            out.offsets.extend(batch.offsets)
            out.keys.extend(batch.keys)
            out.values.extend(batch.values)
            out.timestamps.extend(batch.timestamps)
        return out

    def __len__(self) -> int:
        return len(self.offsets)

    def __bool__(self) -> bool:
        return bool(self.offsets)

    def topic_at(self, index: int) -> str:
        topics = self.topics
        return topics if isinstance(topics, str) else topics[index]

    def record(self, index: int) -> Record:
        """Materialize one row as a :class:`Record` (lazy, on demand)."""
        if index < 0:
            index += len(self.offsets)
        if not 0 <= index < len(self.offsets):
            raise IndexError(f"batch has {len(self.offsets)} rows: {index}")
        return Record(topic=self.topic_at(index),
                      partition=self.partitions[index],
                      offset=self.offsets[index],
                      key=self.keys[index],
                      value=self.values[index],
                      timestamp=self.timestamps[index])

    def records(self) -> List[Record]:
        """Every row materialized (the legacy per-record view)."""
        return [self.record(index) for index in range(len(self.offsets))]

    def __iter__(self) -> Iterator[Record]:
        for index in range(len(self.offsets)):
            yield self.record(index)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.select(range(*index.indices(len(self.offsets))))
        return self.record(index)

    def select(self, rows: Iterable[int]) -> "RecordBatch":
        """A sub-batch of ``rows`` (payload objects shared, not copied)."""
        rows = list(rows)
        topics = self.topics
        if not isinstance(topics, str):
            topics = [topics[i] for i in rows]
        return RecordBatch(topics,
                           [self.partitions[i] for i in rows],
                           [self.offsets[i] for i in rows],
                           [self.keys[i] for i in rows],
                           [self.values[i] for i in rows],
                           [self.timestamps[i] for i in rows])

    def stacked_values(self) -> np.ndarray:
        """The value column as one stacked ndarray, computed once.

        This is the gateway-submission shape: a camera sub-batch from
        :meth:`groups` stacks its frames here instead of every consumer
        re-running ``np.stack`` over row views.  Cached on the batch.
        """
        if self._stacked is None:
            if not self.values:
                raise BrokerError("cannot stack an empty batch")
            self._stacked = np.stack(self.values)
        return self._stacked

    def groups(self) -> List[Tuple[Optional[str], "RecordBatch"]]:
        """Per-key sub-batches, deterministically ordered by key.

        Row order within each sub-batch is arrival order; ``None`` keys
        group together and sort first.
        """
        rows_by_key: Dict[Optional[str], List[int]] = {}
        for index, key in enumerate(self.keys):
            bucket = rows_by_key.get(key)
            if bucket is None:
                rows_by_key[key] = bucket = []
            bucket.append(index)
        return [(key, self.select(rows_by_key[key]))
                for key in sorted(rows_by_key, key=_group_sort_key)]


@dataclass(frozen=True)
class TopicConfig:
    """Per-topic retention, compaction, backpressure and transport knobs."""

    partitions: int = 4
    retention_max_records: Optional[int] = None
    retention_max_age_s: Optional[float] = None
    compact: bool = False
    max_partition_records: Optional[int] = None
    backpressure: str = "block"
    share_ndarrays: bool = False

    def __post_init__(self):
        if self.partitions < 1:
            raise BrokerError(f"partitions must be >= 1: {self.partitions}")
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise BrokerError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}")
        for name in ("retention_max_records", "max_partition_records"):
            bound = getattr(self, name)
            if bound is not None and bound < 1:
                raise BrokerError(f"{name} must be >= 1: {bound}")
        if self.retention_max_age_s is not None \
                and self.retention_max_age_s < 0:
            raise BrokerError(
                f"retention_max_age_s must be >= 0: {self.retention_max_age_s}")


class _Partition:
    """One partition's retained log, stored as parallel columns.

    ``offsets``/``keys``/``values``/``timestamps`` are parallel lists
    ordered by offset but possibly *sparse* after retention or
    compaction; absolute offsets are preserved so group positions stay
    meaningful.  ``end_offset`` is the next offset to assign, and
    ``base_offset`` the earliest retained offset (== ``end_offset`` when
    empty).  Columnar storage is what makes the batch fast path work:
    appends and fetches are bulk list operations, and ``index_for`` is a
    plain C-speed bisect over the offset column.
    """

    __slots__ = ("offsets", "keys", "values", "timestamps",
                 "end_offset", "shm")

    def __init__(self):
        self.offsets: List[int] = []
        self.keys: List[Optional[str]] = []
        self.values: List[Any] = []
        self.timestamps: List[float] = []
        self.end_offset = 0
        self.shm: Dict[int, List] = {}   # offset -> SharedMemory segments

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def base_offset(self) -> int:
        return self.offsets[0] if self.offsets else self.end_offset

    def index_for(self, offset: int) -> int:
        """Index of the first retained record at or above ``offset``."""
        return bisect_left(self.offsets, offset)

    def truncate_head(self, count: int) -> None:
        del self.offsets[:count]
        del self.keys[:count]
        del self.values[:count]
        del self.timestamps[:count]

    def keep_rows(self, rows: Sequence[int]) -> None:
        self.offsets = [self.offsets[i] for i in rows]
        self.keys = [self.keys[i] for i in rows]
        self.values = [self.values[i] for i in rows]
        self.timestamps = [self.timestamps[i] for i in rows]


#: keyed-partition cache bound per topic; above this many distinct keys
#: new ones are hashed on the fly instead of cached
_KEY_CACHE_LIMIT = 8192


class _Topic:
    __slots__ = ("name", "config", "partitions", "_round_robin",
                 "_key_partitions")

    def __init__(self, name: str, config: TopicConfig):
        self.name = name
        self.config = config
        self.partitions = [_Partition() for _ in range(config.partitions)]
        self._round_robin = 0
        self._key_partitions: Dict[str, int] = {}

    def partition_for_key(self, key: str) -> int:
        """Stable hash partition for a key, memoized per topic.

        Camera-style topics see the same handful of keys forever; caching
        the md5 keeps the keyed produce path off the hash function.
        """
        partition = self._key_partitions.get(key)
        if partition is None:
            digest = hashlib.md5(key.encode()).digest()
            partition = int.from_bytes(digest[:4], "big") \
                % len(self.partitions)
            if len(self._key_partitions) < _KEY_CACHE_LIMIT:
                self._key_partitions[key] = partition
        return partition

    def plan_partitions(self, keys: Sequence[Optional[str]]) -> List[int]:
        """Partition for each key *without* committing the cursor.

        Pure for keyed records (stable hash); unkeyed records take the
        round-robin cursor positions they *would* get.  Call
        :meth:`commit_plan` once the batch is actually appended, so a
        backpressure-rejected batch does not disturb the rotation.
        """
        cursor = self._round_robin
        plan = []
        for key in keys:
            if key is None:
                plan.append(cursor % len(self.partitions))
                cursor += 1
            else:
                plan.append(self.partition_for_key(key))
        return plan

    def commit_plan(self, keys: Sequence[Optional[str]]) -> None:
        self._round_robin += sum(1 for key in keys if key is None)


@dataclass
class _Group:
    """Consumer-group membership, generation, assignment and fair cursors."""

    name: str
    generation: int = 0
    members: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: topic -> {partition -> member_id}
    assignment: Dict[str, Dict[int, str]] = field(default_factory=dict)
    #: topic -> fair-fetch rotation cursor (next partition to scan first)
    cursors: Dict[str, int] = field(default_factory=dict)

    def partitions_of(self, member_id: str, topic: str) -> List[int]:
        mapping = self.assignment.get(topic, {})
        return sorted(p for p, m in mapping.items() if m == member_id)


class _TopicTelemetry:
    """Produce-side bound metric handles, resolved once per topic.

    The labeled calls these replace dominated the per-record produce
    cost; the handles land in exactly the same series, so dumps cannot
    tell the paths apart.
    """

    __slots__ = ("produced", "depth", "produce_latency", "dropped", "stalls")

    def __init__(self, broker: "Broker", topic: str):
        self.produced = broker._produced.bind(topic=topic)
        self.depth = broker._depth.bind(topic=topic)
        self.produce_latency = broker._produce_latency.bind(topic=topic)
        self.dropped = broker._dropped.bind(topic=topic,
                                            reason="backpressure")
        self.stalls = broker._stalls.bind(topic=topic)


class _GroupTelemetry:
    """Fetch-side bound metric handles, resolved once per (group, topic)."""

    __slots__ = ("consumed", "e2e")

    def __init__(self, broker: "Broker", group: str, topic: str):
        self.consumed = broker._consumed.bind(group=group, topic=topic)
        self.e2e = broker._e2e_latency.bind(group=group, topic=topic)


class Broker:
    """Topics, producers, consumer groups, retention and backpressure.

    The public surface is everything tests and other layers need;
    ``_topics`` / ``_groups`` / ``_group_offsets`` / ``_positions`` are
    broker internals (lint rule API303 bans touching them outside
    ``repro/streaming/``).
    """

    def __init__(self, runtime=None,
                 shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
                 latency_sample_every: int = 1):
        if latency_sample_every < 1:
            raise BrokerError(
                f"latency_sample_every must be >= 1: {latency_sample_every}")
        self._topics: Dict[str, _Topic] = {}
        self._groups: Dict[str, _Group] = {}
        #: (group, topic, partition) -> committed offset
        self._group_offsets: Dict[Tuple[str, str, int], int] = {}
        #: (group, topic, partition) -> fetch position (>= committed)
        self._positions: Dict[Tuple[str, str, int], int] = {}
        self._segments: Dict[str, Any] = {}  # shm name -> SharedMemory
        self._staged_bytes = 0
        self._ticks = 0
        self.shm_min_bytes = int(shm_min_bytes)
        self.latency_sample_every = int(latency_sample_every)
        self._sampled = {"produce": 0, "fetch": 0}
        self.runtime = runtime or get_runtime()
        registry = self.runtime.registry
        self._produced = registry.counter(
            "streaming.broker.records_produced",
            "records appended to a topic")
        self._consumed = registry.counter(
            "streaming.broker.records_consumed",
            "records fetched by a consumer group")
        self._dropped = registry.counter(
            "streaming.broker.records_dropped",
            "records discarded by the drop backpressure policy")
        self._stalls = registry.counter(
            "streaming.broker.backpressure_stalls",
            "blocked produce attempts against full partitions")
        self._evictions = registry.counter(
            "streaming.broker.retention_evictions",
            "records evicted by retention, compaction or consumed-head "
            "trimming")
        self._rebalances = registry.counter(
            "streaming.broker.rebalances",
            "consumer-group rebalances (joins and leaves)")
        self._generation = registry.gauge(
            "streaming.broker.generation",
            "current consumer-group generation")
        self._lag = registry.gauge(
            "streaming.broker.lag",
            "records between a group's committed offsets and the log end")
        self._depth = registry.gauge(
            "streaming.broker.depth",
            "retained records per topic")
        self._shm_bytes = registry.counter(
            "streaming.broker.shm_bytes",
            "ndarray payload bytes staged into shared memory")
        self._produce_latency = registry.histogram(
            "streaming.broker.produce_latency_s",
            "runtime-clock seconds per produce call (sampled; wall time "
            "outside a DES run)")
        self._fetch_latency = registry.histogram(
            "streaming.broker.fetch_latency_s",
            "runtime-clock seconds per poll call (sampled; wall time "
            "outside a DES run)")
        self._e2e_latency = registry.histogram(
            "streaming.broker.produce_to_consume_s",
            "sim-clock seconds between produce and fetch (sampled; "
            "observed only while a DES clock is bound)")
        self._topic_telemetry_cache: Dict[str, _TopicTelemetry] = {}
        self._group_telemetry_cache: Dict[Tuple[str, str],
                                          _GroupTelemetry] = {}

    # -- clock ---------------------------------------------------------------
    def _stamp(self) -> float:
        """Record timestamp: sim time when bound, else a logical tick."""
        if self.runtime.clock_kind == "sim":
            return self.runtime.now()
        stamp = float(self._ticks)
        self._ticks += 1
        return stamp

    def _age_now(self) -> float:
        """The retention clock's *current* reading (no tick consumed)."""
        if self.runtime.clock_kind == "sim":
            return self.runtime.now()
        return float(self._ticks)

    def _sample(self, kind: str) -> bool:
        n = self._sampled[kind]
        self._sampled[kind] = n + 1
        return n % self.latency_sample_every == 0

    # -- bound telemetry -----------------------------------------------------
    def _topic_telemetry(self, topic: str) -> _TopicTelemetry:
        handles = self._topic_telemetry_cache.get(topic)
        if handles is None:
            handles = _TopicTelemetry(self, topic)
            self._topic_telemetry_cache[topic] = handles
        return handles

    def _group_telemetry(self, group: str, topic: str) -> _GroupTelemetry:
        key = (group, topic)
        handles = self._group_telemetry_cache.get(key)
        if handles is None:
            handles = _GroupTelemetry(self, group, topic)
            self._group_telemetry_cache[key] = handles
        return handles

    # -- topics -----------------------------------------------------------------
    def create_topic(self, name: str, partitions: int = 4, *,
                     retention_max_records: Optional[int] = None,
                     retention_max_age_s: Optional[float] = None,
                     compact: bool = False,
                     max_partition_records: Optional[int] = None,
                     backpressure: str = "block",
                     share_ndarrays: bool = False) -> None:
        if name in self._topics:
            raise BrokerError(f"topic already exists: {name}")
        config = TopicConfig(
            partitions=partitions,
            retention_max_records=retention_max_records,
            retention_max_age_s=retention_max_age_s,
            compact=compact,
            max_partition_records=max_partition_records,
            backpressure=backpressure,
            share_ndarrays=share_ndarrays)
        self._topics[name] = _Topic(name, config)

    def topic_names(self) -> List[str]:
        return sorted(self._topics)

    def topic_config(self, name: str) -> TopicConfig:
        return self._topic(name).config

    def _topic(self, name: str) -> _Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise BrokerError(f"no such topic: {name}") from None

    def partition_count(self, topic: str) -> int:
        return len(self._topic(topic).partitions)

    def topic_size(self, topic: str) -> int:
        """Retained records across all partitions."""
        return sum(len(p) for p in self._topic(topic).partitions)

    def partition_sizes(self, topic: str) -> List[int]:
        """Retained records per partition."""
        return [len(p) for p in self._topic(topic).partitions]

    def begin_offset(self, topic: str, partition: int) -> int:
        """Earliest retained offset of a partition."""
        return self._partition(topic, partition).base_offset

    def end_offset(self, topic: str, partition: int) -> int:
        """The offset the next produced record will get."""
        return self._partition(topic, partition).end_offset

    def _partition(self, topic: str, partition: int) -> _Partition:
        t = self._topic(topic)
        if not 0 <= partition < len(t.partitions):
            raise BrokerError(
                f"topic {topic} has no partition {partition}")
        return t.partitions[partition]

    # -- produce -----------------------------------------------------------------
    def produce(self, topic: str, value: Any,
                key: Optional[str] = None) -> Optional[Record]:
        """Append one record; returns it, or None when dropped.

        The dedicated single-record path: partition choice, admission and
        the column append are inlined — no throwaway list, ``key_fn``
        closure or batch plan per call.  Semantics match a one-record
        :meth:`produce_batch` exactly, including the backpressure policy
        and the round-robin rotation (which advances even for a dropped
        unkeyed record, just as the batch planner's ``commit_plan``
        would).
        """
        t = self._topic(topic)
        started = self.runtime.now()
        telemetry = self._topic_telemetry(topic)
        parts = t.partitions
        if key is None:
            partition = t._round_robin % len(parts)
        else:
            partition = t.partition_for_key(key)
        part = parts[partition]
        bound = t.config.max_partition_records
        if bound is not None and len(part.offsets) >= bound:
            self._evict_consumed_head(t, partition)
            self._evict_aged(t, partition)
            if len(part.offsets) >= bound:
                policy = t.config.backpressure
                if policy == "drop":
                    telemetry.dropped.inc()
                    if key is None:
                        t._round_robin += 1
                    self._apply_size_retention(t)
                    if self._sample("produce"):
                        telemetry.produce_latency.observe(
                            self.runtime.now() - started)
                    return None
                telemetry.stalls.inc()
                message = (f"topic {t.name} partitions [{partition}] are "
                           f"full (bound {bound})")
                if policy == "block":
                    raise BackpressureStall(
                        message + "; retry after consumers commit")
                raise BackpressureError(message)
        offset = part.end_offset
        stored = self._store_value(t, part, offset, value) \
            if t.config.share_ndarrays else value
        stamp = self._stamp()
        part.offsets.append(offset)
        part.keys.append(key)
        part.values.append(stored)
        part.timestamps.append(stamp)
        part.end_offset = offset + 1
        if key is None:
            t._round_robin += 1
        self._apply_size_retention(t)
        telemetry.produced.inc()
        telemetry.depth.set(self.topic_size(topic))
        if self._sample("produce"):
            telemetry.produce_latency.observe(self.runtime.now() - started)
        return Record(topic=topic, partition=partition, offset=offset,
                      key=key, value=stored, timestamp=stamp)

    def produce_batch(self, topic: str, values: Sequence[Any],
                      key_fn: Optional[Callable[[Any], Optional[str]]] = None
                      ) -> RecordBatch:
        """Append a batch atomically with respect to backpressure.

        Capacity is checked for the *whole* batch up front (after evicting
        whatever retention allows), so a ``"block"``-policy stall raises
        :class:`BackpressureStall` before any record is appended — a
        retried batch can never duplicate a delivered prefix.  Under the
        ``"drop"`` policy only the records that fit are appended and the
        overflow is counted in ``streaming.broker.records_dropped``.

        Returns the appended rows as a :class:`RecordBatch` in input
        order (``len()`` and indexing behave like the old record list;
        ``Record`` objects materialize lazily).  The append itself is
        columnar: one partition plan, one admission check, bulk column
        appends, and one telemetry update for the whole batch.
        """
        t = self._topic(topic)
        values = list(values)
        if not values:
            return RecordBatch.empty(topic)
        started = self.runtime.now()
        telemetry = self._topic_telemetry(topic)
        n = len(values)
        parts = t.partitions
        if key_fn is None:
            keys: List[Optional[str]] = [None] * n
            cursor = t._round_robin
            width = len(parts)
            plan = [(cursor + index) % width for index in range(n)]
        else:
            keys = [key_fn(value) for value in values]
            plan = t.plan_partitions(keys)
        keep = self._admit(t, plan)
        sim = self.runtime.clock_kind == "sim"
        now = self.runtime.now() if sim else 0.0
        share = t.config.share_ndarrays
        ends = [part.end_offset for part in parts]
        appenders = [(part.offsets.append, part.keys.append,
                      part.values.append, part.timestamps.append)
                     for part in parts]
        out_offsets: List[int] = []
        take_offset = out_offsets.append
        if keep is None and not share:
            # Fast path: every record admitted, payloads stored verbatim —
            # the returned batch reuses the plan/key/value columns and the
            # loop body is offset assignment plus four bulk appends.
            out_partitions, out_keys, out_values = plan, keys, values
            if sim:
                out_timestamps = [now] * n
            else:
                ticks = self._ticks
                out_timestamps = [float(tick)
                                  for tick in range(ticks, ticks + n)]
                self._ticks = ticks + n
            for index in range(n):
                partition = plan[index]
                offset = ends[partition]
                ends[partition] = offset + 1
                take_offset(offset)
                add_offset, add_key, add_value, add_stamp = \
                    appenders[partition]
                add_offset(offset)
                add_key(keys[index])
                add_value(values[index])
                add_stamp(out_timestamps[index])
        else:
            out_partitions = []
            out_keys = []
            out_values = []
            out_timestamps = []
            ticks = self._ticks
            for index in range(n):
                if keep is not None and not keep[index]:
                    continue
                partition = plan[index]
                offset = ends[partition]
                ends[partition] = offset + 1
                value = values[index]
                if share:
                    value = self._store_value(t, parts[partition], offset,
                                              value)
                if sim:
                    stamp = now
                else:
                    stamp = float(ticks)
                    ticks += 1
                key = keys[index]
                add_offset, add_key, add_value, add_stamp = \
                    appenders[partition]
                add_offset(offset)
                add_key(key)
                add_value(value)
                add_stamp(stamp)
                out_partitions.append(partition)
                take_offset(offset)
                out_keys.append(key)
                out_values.append(value)
                out_timestamps.append(stamp)
            self._ticks = ticks
        for partition, part in enumerate(parts):
            part.end_offset = ends[partition]
        if key_fn is None:
            t._round_robin += n
        else:
            t.commit_plan(keys)
        self._apply_size_retention(t)
        if out_offsets:
            telemetry.produced.inc(len(out_offsets))
            telemetry.depth.set(self.topic_size(topic))
        if self._sample("produce"):
            telemetry.produce_latency.observe(self.runtime.now() - started)
        return RecordBatch(topic, out_partitions, out_offsets, out_keys,
                           out_values, out_timestamps)

    def _admit(self, t: _Topic,
               plan: Sequence[int]) -> Optional[List[bool]]:
        """Which planned records fit, after retention; applies the policy.

        ``None`` means every record is admitted — the common unbounded
        case stays allocation-free.
        """
        bound = t.config.max_partition_records
        if bound is None:
            return None
        needed: Dict[int, int] = {}
        for partition in plan:
            needed[partition] = needed.get(partition, 0) + 1
        free: Dict[int, int] = {}
        for partition, count in needed.items():
            part = t.partitions[partition]
            if len(part) + count > bound:
                self._evict_consumed_head(t, partition)
                self._evict_aged(t, partition)
            free[partition] = bound - len(part)
        if all(count <= free[partition] for partition, count in needed.items()):
            return None
        policy = t.config.backpressure
        if policy == "drop":
            keep = []
            dropped = 0
            for partition in plan:
                admitted = free[partition] > 0
                if admitted:
                    free[partition] -= 1
                else:
                    dropped += 1
                keep.append(admitted)
            if dropped:
                self._topic_telemetry(t.name).dropped.inc(dropped)
            return keep
        self._topic_telemetry(t.name).stalls.inc()
        overfull = sorted(p for p, count in needed.items()
                          if count > free[p])
        message = (f"topic {t.name} partitions {overfull} are full "
                   f"(bound {bound})")
        if policy == "block":
            raise BackpressureStall(
                message + "; retry after consumers commit")
        raise BackpressureError(message)

    # -- retention / compaction ---------------------------------------------------
    def run_retention(self, topic: Optional[str] = None) -> int:
        """Apply age/size retention (and compaction) now; returns evictions."""
        names = [topic] if topic is not None else self.topic_names()
        evicted = 0
        for name in names:
            t = self._topic(name)
            with self.runtime.tracer.span("streaming.broker.retention",
                                          topic=name):
                before = self.topic_size(name)
                for partition in range(len(t.partitions)):
                    self._evict_aged(t, partition)
                self._apply_size_retention(t)
                if t.config.compact:
                    self._compact(t)
                evicted += before - self.topic_size(name)
            self._depth.set(self.topic_size(name), topic=name)
        return evicted

    def compact(self, topic: str) -> int:
        """Force log compaction of a keyed topic; returns removed records."""
        t = self._topic(topic)
        with self.runtime.tracer.span("streaming.broker.compaction",
                                      topic=topic):
            removed = self._compact(t)
        self._depth.set(self.topic_size(topic), topic=topic)
        return removed

    def _apply_size_retention(self, t: _Topic) -> None:
        bound = t.config.retention_max_records
        if bound is None:
            return
        for partition, part in enumerate(t.partitions):
            if len(part) > bound:
                self._truncate_head(t, partition, len(part) - bound,
                                    reason="size")

    def _evict_aged(self, t: _Topic, partition: int) -> None:
        max_age = t.config.retention_max_age_s
        if max_age is None:
            return
        part = t.partitions[partition]
        horizon = self._age_now() - max_age
        # Timestamps are nondecreasing within a partition, so the age cut
        # is a bisect over the timestamp column.
        cut = bisect_left(part.timestamps, horizon)
        if cut:
            self._truncate_head(t, partition, cut, reason="age")

    def _evict_consumed_head(self, t: _Topic, partition: int) -> None:
        """Trim records already committed by every group that consumes here."""
        committed = [offset for (group, topic, p), offset
                     in self._group_offsets.items()
                     if topic == t.name and p == partition]
        if not committed:
            return
        safe = min(committed)
        part = t.partitions[partition]
        cut = part.index_for(safe)
        if cut:
            self._truncate_head(t, partition, cut, reason="consumed")

    def _truncate_head(self, t: _Topic, partition: int, count: int,
                       reason: str) -> None:
        part = t.partitions[partition]
        if part.shm:
            for offset in part.offsets[:count]:
                self._release(part, offset)
        part.truncate_head(count)
        self._evictions.inc(count, topic=t.name, reason=reason)

    def _compact(self, t: _Topic) -> int:
        """Keep only the latest record per key; tombstones delete the key."""
        removed = 0
        for part in t.partitions:
            keys = part.keys
            latest: Dict[str, int] = {}
            deleted: Set[str] = set()
            for index, key in enumerate(keys):
                if key is None:
                    continue
                latest[key] = index
                if part.values[index] is None:
                    deleted.add(key)
                else:
                    deleted.discard(key)
            survivors = [index for index, key in enumerate(keys)
                         if key is None
                         or (latest[key] == index and key not in deleted)]
            dropped = len(keys) - len(survivors)
            if not dropped:
                continue
            if part.shm:
                kept = {part.offsets[index] for index in survivors}
                for offset in list(part.shm):
                    if offset not in kept:
                        self._release(part, offset)
            part.keep_rows(survivors)
            removed += dropped
        if removed:
            self._evictions.inc(removed, topic=t.name, reason="compaction")
        return removed

    # -- zero-copy payload transport -----------------------------------------------
    def _store_value(self, t: _Topic, part: _Partition, offset: int,
                     value: Any) -> Any:
        if not t.config.share_ndarrays:
            return value
        encoded, staged, segments = share_ndarrays(value, self.shm_min_bytes)
        if segments:
            part.shm[offset] = segments
            for segment in segments:
                self._segments[segment.name] = segment
            self._staged_bytes += staged
            self._shm_bytes.inc(staged, topic=t.name)
        return encoded

    def _resolve(self, obj: Any) -> Any:
        if isinstance(obj, SharedArrayRef):
            segment = self._segments[obj.segment]
            view = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                              buffer=segment.buf)
            view.flags.writeable = False
            return view
        if isinstance(obj, tuple):
            return tuple(self._resolve(value) for value in obj)
        if isinstance(obj, list):
            return [self._resolve(value) for value in obj]
        if isinstance(obj, dict):
            return {key: self._resolve(value) for key, value in obj.items()}
        return obj

    def _release(self, part: _Partition, offset: int) -> None:
        for segment in part.shm.pop(offset, ()):
            self._segments.pop(segment.name, None)
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def tracked_segments(self) -> int:
        """Shared-memory segments currently staged (and not yet evicted)."""
        return len(self._segments)

    def shm_bytes_staged(self) -> int:
        """Cumulative ndarray bytes this broker staged into shared memory."""
        return self._staged_bytes

    def close(self) -> None:
        """Unlink every shared-memory segment this broker staged."""
        for t in self._topics.values():
            for part in t.partitions:
                for offset in list(part.shm):
                    self._release(part, offset)

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self.close()
        except Exception:
            pass

    # -- consumer groups -----------------------------------------------------------
    def consumer(self, group: str, topics: Sequence[str], *,
                 auto_commit: bool = True) -> "Consumer":
        """Join ``group`` as a new member subscribed to ``topics``.

        Joining rebalances the group: partitions are redistributed over
        the members subscribed to each topic and fetch positions reset to
        the committed offsets.
        """
        return Consumer(self, group, topics, auto_commit=auto_commit)

    def _group(self, name: str) -> _Group:
        if name not in self._groups:
            self._groups[name] = _Group(name)
        return self._groups[name]

    def group_generation(self, group: str) -> int:
        return self._group(group).generation

    def group_members(self, group: str) -> List[str]:
        return sorted(self._group(group).members)

    def partition_assignment(self, group: str, topic: str) -> Dict[int, str]:
        """{partition -> member_id} for one topic of one group."""
        return dict(self._group(group).assignment.get(topic, {}))

    def committed_offset(self, group: str, topic: str, partition: int) -> int:
        self._partition(topic, partition)
        return self._group_offsets.get((group, topic, partition), 0)

    def position(self, group: str, topic: str, partition: int) -> int:
        """The group's fetch position (falls back to the committed offset)."""
        self._partition(topic, partition)
        key = (group, topic, partition)
        return self._positions.get(key, self._group_offsets.get(key, 0))

    def _join(self, group_name: str, member_id: str,
              topics: Sequence[str]) -> None:
        group = self._group(group_name)
        group.members[member_id] = tuple(topics)
        self._rebalance(group, reason="join")

    def _leave(self, group_name: str, member_id: str) -> None:
        group = self._group(group_name)
        if member_id in group.members:
            del group.members[member_id]
            self._rebalance(group, reason="leave")

    def _rebalance(self, group: _Group, reason: str) -> None:
        group.generation += 1
        affected = sorted(set(group.assignment)
                          | {topic for topics in group.members.values()
                             for topic in topics})
        with self.runtime.tracer.span("streaming.broker.rebalance",
                                      group=group.name, reason=reason,
                                      generation=group.generation):
            assignment: Dict[str, Dict[int, str]] = {}
            for topic in affected:
                t = self._topic(topic)
                subscribers = sorted(
                    member for member, topics in group.members.items()
                    if topic in topics)
                if subscribers:
                    assignment[topic] = {
                        p: subscribers[p % len(subscribers)]
                        for p in range(len(t.partitions))}
                # Uncommitted fetches are redelivered to the new owners:
                # positions collapse back to the committed offsets.
                for p in range(len(t.partitions)):
                    self._positions.pop((group.name, topic, p), None)
            group.assignment = assignment
        self._rebalances.inc(group=group.name)
        self._generation.set(group.generation, group=group.name)

    # -- fetch --------------------------------------------------------------------
    def _fetch_batch(self, consumer: "Consumer", topic: str,
                     max_records: int) -> RecordBatch:
        """Columnar fetch from the member's partitions, fairly rotated.

        A per-(group, topic) cursor decides which partition the scan
        starts at and advances past whichever partition filled the
        budget, so a hot low-numbered partition can no longer starve its
        siblings under bounded polls.  Each partition contributes one
        column *slice* — no per-record objects; shared-memory payloads
        resolve to read-only views row by row only where staged.
        """
        t = self._topic(topic)
        group = self._group(consumer.group)
        assigned = group.partitions_of(consumer.member_id, topic)
        if not assigned:
            return RecordBatch.empty(topic)
        cursor = group.cursors.get(topic, 0)
        start = next((i for i, p in enumerate(assigned) if p >= cursor), 0)
        out_partitions: List[int] = []
        out_offsets: List[int] = []
        out_keys: List[Optional[str]] = []
        out_values: List[Any] = []
        out_timestamps: List[float] = []
        budget = max_records
        positions = self._positions
        committed = self._group_offsets
        for i in range(len(assigned)):
            partition = assigned[(start + i) % len(assigned)]
            part = t.partitions[partition]
            key = (group.name, topic, partition)
            position = positions.get(key, committed.get(key, 0))
            index = part.index_for(position)
            retained = len(part.offsets)
            take = min(retained - index, budget)
            if take > 0:
                stop = index + take
                offs = part.offsets[index:stop]
                vals = part.values[index:stop]
                if part.shm:
                    shm = part.shm
                    vals = [self._resolve(value) if offs[j] in shm else value
                            for j, value in enumerate(vals)]
                out_partitions.extend([partition] * take)
                out_offsets.extend(offs)
                out_keys.extend(part.keys[index:stop])
                out_values.extend(vals)
                out_timestamps.extend(part.timestamps[index:stop])
                budget -= take
            if index + take >= retained:
                position = part.end_offset
            elif take:
                position = part.offsets[index + take - 1] + 1
            positions[key] = position
            if budget <= 0:
                group.cursors[topic] = partition + 1
                break
        if out_offsets:
            telemetry = self._group_telemetry(group.name, topic)
            telemetry.consumed.inc(len(out_offsets))
            if self.runtime.clock_kind == "sim":
                now = self.runtime.now()
                observe = telemetry.e2e.observe
                for stamp in out_timestamps:
                    if self._sample("fetch"):
                        observe(now - stamp)
        self._update_lag(group.name, topic)
        return RecordBatch(topic, out_partitions, out_offsets, out_keys,
                           out_values, out_timestamps)

    def _fetch(self, consumer: "Consumer", topic: str,
               max_records: int) -> List[Record]:
        """Per-record view of :meth:`_fetch_batch` (the legacy poll path)."""
        return self._fetch_batch(consumer, topic, max_records).records()

    def _update_lag(self, group: str, topic: str) -> None:
        self._lag.set(self.lag(group, topic), group=group, topic=topic)

    def _commit(self, consumer: "Consumer",
                positions: Optional[Dict[Tuple[str, int], int]] = None
                ) -> Dict[Tuple[str, int], int]:
        """Advance committed offsets to the member's fetch positions.

        With ``positions`` (a ``{(topic, partition): position}`` snapshot
        from :meth:`Consumer.position_snapshot`) the commit is *capped*
        at the snapshot: partitions absent from it are skipped and
        present ones commit the snapshot value — how a pipelined consumer
        commits batch N while batch N+1 is already fetched.
        """
        group = self._group(consumer.group)
        if consumer.generation != group.generation:
            raise RebalanceError(
                f"member {consumer.member_id} of group {group.name} holds "
                f"generation {consumer.generation}, group is at "
                f"{group.generation}; re-poll before committing")
        committed: Dict[Tuple[str, int], int] = {}
        for topic in consumer.topics:
            for partition in group.partitions_of(consumer.member_id, topic):
                key = (group.name, topic, partition)
                if positions is None:
                    position = self._positions.get(key)
                else:
                    position = positions.get((topic, partition))
                if position is None:
                    continue
                if position > self._group_offsets.get(key, 0):
                    self._group_offsets[key] = position
                    committed[(topic, partition)] = position
            self._update_lag(group.name, topic)
        return committed

    def _seek_to_committed(self, consumer: "Consumer") -> None:
        group = self._group(consumer.group)
        for topic in consumer.topics:
            for partition in group.partitions_of(consumer.member_id, topic):
                self._positions.pop((group.name, topic, partition), None)

    # -- group-level views ---------------------------------------------------------
    def lag(self, group: str, topic: str) -> int:
        """Records between the group's committed offsets and the log end."""
        t = self._topic(topic)
        total = 0
        for partition, part in enumerate(t.partitions):
            committed = self._group_offsets.get((group, topic, partition), 0)
            total += max(0, part.end_offset - committed)
        return total

    def reset_group(self, group: str, topic: str) -> None:
        """Rewind a group's offsets to replay a topic from the beginning."""
        t = self._topic(topic)
        for partition in range(len(t.partitions)):
            self._group_offsets.pop((group, topic, partition), None)
            self._positions.pop((group, topic, partition), None)


class Consumer:
    """A consumer-group member reading its assigned partitions.

    With ``auto_commit=True`` (the default) every successful ``poll``
    atomically commits the records it returned — the original bus
    behaviour.  With ``auto_commit=False`` the caller owns the commit
    boundary: ``commit()`` after processing gives at-least-once delivery,
    ``seek_to_committed()`` rolls an uncommitted read back for
    redelivery.
    """

    def __init__(self, broker: Broker, group: str, topics: Sequence[str],
                 auto_commit: bool = True):
        if not topics:
            raise BrokerError("consumer needs at least one topic")
        for topic in topics:
            broker._topic(topic)  # validate
        self.broker = broker
        #: kept under the old name so existing call sites (`consumer.bus`)
        #: stay valid
        self.bus = broker
        self.group = group
        self.topics = list(topics)
        self.auto_commit = auto_commit
        self.member_id = broker.runtime.gensym(f"{group}-member")
        self._closed = False
        self._fetch_latency = broker._fetch_latency.bind(group=group)
        broker._join(group, self.member_id, self.topics)
        self.generation = broker.group_generation(group)

    # -- membership -----------------------------------------------------------
    def assignment(self) -> List[Tuple[str, int]]:
        """The (topic, partition) pairs this member currently owns."""
        self._ensure_open()
        self._sync()
        group = self.broker._group(self.group)
        return [(topic, partition) for topic in self.topics
                for partition in group.partitions_of(self.member_id, topic)]

    def close(self) -> None:
        """Leave the group (triggers a rebalance); idempotent."""
        if not self._closed:
            self._closed = True
            self.broker._leave(self.group, self.member_id)

    def _ensure_open(self) -> None:
        if self._closed:
            raise BrokerError(
                f"consumer {self.member_id} has left group {self.group}")

    def _sync(self) -> bool:
        """Adopt the current generation; True when a rebalance intervened."""
        current = self.broker.group_generation(self.group)
        if current != self.generation:
            self.generation = current
            return True
        return False

    # -- consumption ----------------------------------------------------------
    def poll(self, max_records: int = 100) -> List[Record]:
        """Fetch up to ``max_records`` from this member's partitions."""
        self._ensure_open()
        if max_records < 1:
            raise BrokerError(f"max_records must be >= 1: {max_records}")
        self._sync()
        broker = self.broker
        started = broker.runtime.now()
        out: List[Record] = []
        for topic in self.topics:
            if len(out) >= max_records:
                break
            out.extend(broker._fetch(self, topic, max_records - len(out)))
        if self.auto_commit and out:
            broker._commit(self)
        if broker._sample("fetch"):
            self._fetch_latency.observe(broker.runtime.now() - started)
        return out

    def poll_batch(self, max_records: int = 100) -> RecordBatch:
        """Columnar fetch: up to ``max_records`` as one :class:`RecordBatch`.

        Offsets, positions, auto-commit, fairness and rebalance semantics
        are identical to :meth:`poll` — the two paths differ only in what
        they materialize.  The batch spans this member's topics in
        subscription order; ``batch.groups()`` yields per-key sub-batches
        (a camera's frames together, ready to stack for the gateway).
        """
        self._ensure_open()
        if max_records < 1:
            raise BrokerError(f"max_records must be >= 1: {max_records}")
        self._sync()
        broker = self.broker
        started = broker.runtime.now()
        if len(self.topics) == 1:
            out = broker._fetch_batch(self, self.topics[0], max_records)
        else:
            batches = []
            remaining = max_records
            for topic in self.topics:
                if remaining <= 0:
                    break
                batch = broker._fetch_batch(self, topic, remaining)
                if batch:
                    batches.append(batch)
                    remaining -= len(batch)
            out = RecordBatch.concat(batches) if batches \
                else RecordBatch.empty(self.topics[0])
        if self.auto_commit and out:
            broker._commit(self)
        if broker._sample("fetch"):
            self._fetch_latency.observe(broker.runtime.now() - started)
        return out

    def drain(self, batch_size: int = 100) -> List[Record]:
        """Poll until no new records remain."""
        out: List[Record] = []
        while True:
            batch = self.poll(batch_size)
            if not batch:
                return out
            out.extend(batch)

    # -- offset management ------------------------------------------------------
    def position_snapshot(self) -> Dict[Tuple[str, int], int]:
        """Current fetch positions of this member's assignment.

        The snapshot feeds ``commit(positions=...)``: a pipelined caller
        records where batch N ended, keeps polling ahead, and later
        commits exactly through batch N even though the live positions
        have moved on.  Partitions not yet fetched from are omitted.
        """
        self._ensure_open()
        self._sync()
        broker = self.broker
        group = broker._group(self.group)
        snapshot: Dict[Tuple[str, int], int] = {}
        for topic in self.topics:
            for partition in group.partitions_of(self.member_id, topic):
                position = broker._positions.get(
                    (self.group, topic, partition))
                if position is not None:
                    snapshot[(topic, partition)] = position
        return snapshot

    def commit(self, positions: Optional[Dict[Tuple[str, int], int]] = None
               ) -> Dict[Tuple[str, int], int]:
        """Commit fetch positions; {(topic, partition): offset} advanced.

        ``positions`` caps the commit at an earlier
        :meth:`position_snapshot` instead of the live positions —
        commit-after-resolve semantics for consumers that poll ahead.

        Raises :class:`RebalanceError` when fenced by a newer generation
        (the uncommitted records will be redelivered to their new
        owners); the consumer re-syncs so the next poll proceeds.
        """
        self._ensure_open()
        try:
            return self.broker._commit(self, positions)
        except RebalanceError:
            self._sync()
            raise

    def seek_to_committed(self) -> None:
        """Roll uncommitted fetches back: the next poll redelivers them."""
        self._ensure_open()
        self._sync()
        self.broker._seek_to_committed(self)

    def position(self, topic: str, partition: int) -> int:
        return self.broker.position(self.group, topic, partition)

    def committed(self, topic: str, partition: int) -> int:
        return self.broker.committed_offset(self.group, topic, partition)


class MessageBus(Broker):
    """Backwards-compatible name for :class:`Broker`.

    The original ``repro.streaming.bus.MessageBus`` grew into the broker;
    every public method it had still exists with the same semantics
    (``poll`` auto-commits by default), so existing call sites and
    imports keep working unchanged.
    """
