"""A partitioned, replayable topic log with consumer groups.

The glue of the Fig. 4 pipeline: real-time collectors (tweets, Waze,
camera annotations) produce to topics; analysis stages consume with
per-group offsets, so multiple independent consumers replay the same
stream.  Keyed records hash to a stable partition, preserving per-key
order — the property the pipeline tests assert.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime import get_runtime


class BusError(Exception):
    """Raised for unknown topics/partitions or bad consumer usage."""


@dataclass(frozen=True)
class Record:
    """One message in a topic partition."""

    topic: str
    partition: int
    offset: int
    key: Optional[str]
    value: Any
    timestamp: float


class _Topic:
    def __init__(self, name: str, partitions: int):
        if partitions < 1:
            raise BusError(f"partitions must be >= 1: {partitions}")
        self.name = name
        self.partitions: List[List[Record]] = [[] for _ in range(partitions)]
        self._round_robin = 0

    def partition_for(self, key: Optional[str]) -> int:
        if key is None:
            # True round-robin for unkeyed records: a per-topic cursor
            # cycles the partitions regardless of how full each one is.
            partition = self._round_robin % len(self.partitions)
            self._round_robin += 1
            return partition
        digest = hashlib.md5(key.encode()).digest()
        return int.from_bytes(digest[:4], "big") % len(self.partitions)


class MessageBus:
    """Topics, producers and consumer-group offset tracking.

    Produce/consume volume is reported through the shared runtime as
    ``streaming.bus.records_produced{topic=...}`` and
    ``streaming.bus.records_consumed{group=..., topic=...}``.
    """

    def __init__(self, runtime=None):
        self._topics: Dict[str, _Topic] = {}
        self._group_offsets: Dict[Tuple[str, str, int], int] = {}
        self._clock = itertools.count()
        self.runtime = runtime or get_runtime()
        self._produced = self.runtime.registry.counter(
            "streaming.bus.records_produced",
            "records appended to a topic")
        self._consumed = self.runtime.registry.counter(
            "streaming.bus.records_consumed",
            "records fetched by a consumer group")

    # -- topics -----------------------------------------------------------------
    def create_topic(self, name: str, partitions: int = 4) -> None:
        if name in self._topics:
            raise BusError(f"topic already exists: {name}")
        self._topics[name] = _Topic(name, partitions)

    def topic_names(self) -> List[str]:
        return sorted(self._topics)

    def _topic(self, name: str) -> _Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise BusError(f"no such topic: {name}") from None

    def partition_count(self, topic: str) -> int:
        return len(self._topic(topic).partitions)

    def topic_size(self, topic: str) -> int:
        return sum(len(p) for p in self._topic(topic).partitions)

    # -- produce -----------------------------------------------------------------
    def produce(self, topic: str, value: Any,
                key: Optional[str] = None) -> Record:
        t = self._topic(topic)
        partition = t.partition_for(key)
        record = Record(topic=topic, partition=partition,
                        offset=len(t.partitions[partition]),
                        key=key, value=value,
                        timestamp=float(next(self._clock)))
        t.partitions[partition].append(record)
        self._produced.inc(topic=topic)
        return record

    # -- consume ------------------------------------------------------------------
    def consumer(self, group: str, topics: Sequence[str]) -> "Consumer":
        return Consumer(self, group, topics)

    def _fetch(self, group: str, topic: str, max_records: int) -> List[Record]:
        t = self._topic(topic)
        out: List[Record] = []
        for partition in range(len(t.partitions)):
            key = (group, topic, partition)
            offset = self._group_offsets.get(key, 0)
            log = t.partitions[partition]
            while offset < len(log) and len(out) < max_records:
                out.append(log[offset])
                offset += 1
            self._group_offsets[key] = offset
            if len(out) >= max_records:
                break
        if out:
            self._consumed.inc(len(out), group=group, topic=topic)
        return out

    def lag(self, group: str, topic: str) -> int:
        """Unconsumed records for a group on a topic."""
        t = self._topic(topic)
        total = 0
        for partition in range(len(t.partitions)):
            offset = self._group_offsets.get((group, topic, partition), 0)
            total += len(t.partitions[partition]) - offset
        return total

    def reset_group(self, group: str, topic: str) -> None:
        """Rewind a group's offsets to replay a topic from the beginning."""
        t = self._topic(topic)
        for partition in range(len(t.partitions)):
            self._group_offsets.pop((group, topic, partition), None)


class Consumer:
    """A consumer-group member reading one or more topics."""

    def __init__(self, bus: MessageBus, group: str, topics: Sequence[str]):
        if not topics:
            raise BusError("consumer needs at least one topic")
        for topic in topics:
            bus._topic(topic)  # validate
        self.bus = bus
        self.group = group
        self.topics = list(topics)

    def poll(self, max_records: int = 100) -> List[Record]:
        """Fetch up to ``max_records`` new records across subscribed topics."""
        if max_records < 1:
            raise BusError(f"max_records must be >= 1: {max_records}")
        out: List[Record] = []
        for topic in self.topics:
            if len(out) >= max_records:
                break
            out.extend(self.bus._fetch(self.group, topic,
                                       max_records - len(out)))
        return out

    def drain(self, batch_size: int = 100) -> List[Record]:
        """Poll until no new records remain."""
        out: List[Record] = []
        while True:
            batch = self.poll(batch_size)
            if not batch:
                return out
            out.extend(batch)
