"""Compatibility shim: the topic log grew into :mod:`repro.streaming.broker`.

Historical import path — ``from repro.streaming.bus import MessageBus``
keeps working, but all the machinery (consumer groups with committed
offsets, rebalancing, retention/compaction, backpressure, zero-copy
shared-memory handoff) now lives in the broker module.
"""

from repro.streaming.broker import (  # noqa: F401
    BACKPRESSURE_POLICIES,
    BackpressureError,
    BackpressureStall,
    Broker,
    BrokerError,
    BusError,
    Consumer,
    MessageBus,
    RebalanceError,
    Record,
    RecordBatch,
    TopicConfig,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BackpressureError",
    "BackpressureStall",
    "Broker",
    "BrokerError",
    "BusError",
    "Consumer",
    "MessageBus",
    "RebalanceError",
    "Record",
    "RecordBatch",
    "TopicConfig",
]
