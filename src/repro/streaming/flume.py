"""Flume-style ingestion agents: source -> channel -> sink.

An agent pumps events from a :class:`FunctionSource` through a bounded
:class:`Channel` into a sink.  The channel gives *transactional batch*
semantics: a taken batch is only removed on commit; a sink failure rolls the
batch back to the head of the channel, yielding at-least-once delivery —
the property the ingestion tests assert under injected sink failures.

Two broker integrations close the loop with :mod:`repro.streaming.broker`:

- :func:`broker_sink` produces each committed batch atomically onto a
  topic; a :class:`~repro.streaming.broker.BackpressureStall` from a
  bounded partition becomes a :class:`SinkError`, so the batch rolls back
  into the channel, the channel fills, and ``pump_source`` stops pulling —
  broker backpressure propagates all the way to the source.
- :class:`ConsumerChannel` adapts a manual-commit broker consumer to the
  channel interface, so :meth:`FlumeAgent.from_consumer` builds agents
  whose transaction commit *is* an offset commit and whose rollback is a
  seek-to-committed (broker-side redelivery instead of requeueing).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, Iterator, List, Optional

from repro.runtime import get_runtime
from repro.streaming.broker import BackpressureStall, Consumer, RebalanceError


class ChannelFullError(Exception):
    """Raised when putting into a full channel."""


class SinkError(Exception):
    """Raised by sinks to signal a (possibly transient) delivery failure."""


class FunctionSource:
    """Wraps an iterable or a zero-arg callable into an event source."""

    def __init__(self, events: Any):
        if callable(events):
            self._iterator: Iterator = iter(events())
        else:
            self._iterator = iter(events)
        self.emitted = 0

    def next_event(self) -> Optional[Any]:
        """The next event, or None when exhausted."""
        try:
            event = next(self._iterator)
        except StopIteration:
            return None
        self.emitted += 1
        return event


class Channel:
    """A bounded FIFO with transactional batch take."""

    def __init__(self, capacity: int = 1000):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._queue: Deque[Any] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def put(self, event: Any) -> None:
        if self.full:
            raise ChannelFullError(
                f"channel at capacity ({self.capacity})")
        self._queue.append(event)

    def take_batch(self, max_events: int) -> "Transaction":
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1: {max_events}")
        events = []
        while self._queue and len(events) < max_events:
            events.append(self._queue.popleft())
        return Transaction(self, events)


class Transaction:
    """A taken batch awaiting commit or rollback."""

    def __init__(self, channel: Channel, events: List[Any]):
        self._channel = channel
        self.events = events
        self._closed = False

    def commit(self) -> None:
        if self._closed:
            raise RuntimeError("transaction already closed")
        self._closed = True

    def rollback(self) -> None:
        """Return the batch to the head of the channel, preserving order."""
        if self._closed:
            raise RuntimeError("transaction already closed")
        for event in reversed(self.events):
            self._channel._queue.appendleft(event)
        self._closed = True


class ConsumerTransaction:
    """A polled broker batch awaiting offset commit or redelivery.

    Commit advances the consumer group's committed offsets; rollback
    seeks back to them, so the broker redelivers the same records on the
    next take.  A commit fenced by a rebalance
    (:class:`~repro.streaming.broker.RebalanceError`) is swallowed: the
    new partition owners will redeliver — at-least-once, never loss.
    """

    def __init__(self, consumer: Consumer, events: List[Any]):
        self._consumer = consumer
        self.events = events
        self._closed = False
        self.fenced = False

    def commit(self) -> None:
        if self._closed:
            raise RuntimeError("transaction already closed")
        self._closed = True
        if not self.events:
            return
        try:
            self._consumer.commit()
        except RebalanceError:
            self.fenced = True

    def rollback(self) -> None:
        if self._closed:
            raise RuntimeError("transaction already closed")
        self._closed = True
        if self.events:
            self._consumer.seek_to_committed()


class ConsumerChannel:
    """A broker consumer behind the channel interface.

    The buffer is the broker partition itself: ``take_batch`` polls a
    manual-commit :class:`~repro.streaming.broker.Consumer`, ``__len__``
    reports the group's lag, and ``put`` is rejected — records enter via
    ``produce``, not via a source pump.
    """

    def __init__(self, consumer: Consumer):
        if consumer.auto_commit:
            raise ValueError(
                "ConsumerChannel needs a manual-commit consumer "
                "(auto_commit=False); auto-commit would discard the "
                "rollback/redelivery semantics")
        self.consumer = consumer
        self.capacity = 0

    def __len__(self) -> int:
        return sum(self.consumer.bus.lag(self.consumer.group, topic)
                   for topic in self.consumer.topics)

    @property
    def full(self) -> bool:
        return False

    def put(self, event: Any) -> None:
        raise ChannelFullError(
            "ConsumerChannel is fed by the broker; produce to the topic "
            "instead of putting into the channel")

    def take_batch(self, max_events: int) -> ConsumerTransaction:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1: {max_events}")
        # Columnar poll: the batch's value column *is* the event list —
        # no per-record materialization between broker and sink.
        batch = self.consumer.poll_batch(max_events)
        return ConsumerTransaction(self.consumer, batch.values)


@dataclass
class AgentMetrics:
    """Point-in-time view of one agent's delivery counters.

    Since the runtime refactor this is a *snapshot computed from the
    shared metrics registry* (``streaming.flume.*`` counters labeled by
    agent), not a mutable accumulator; read it via
    :attr:`FlumeAgent.metrics`.
    """

    events_received: int = 0
    events_delivered: int = 0
    batches_committed: int = 0
    batches_rolled_back: int = 0
    source_exhausted: bool = False


class FlumeAgent:
    """Pump events source -> channel -> sink with batch transactions.

    Parameters
    ----------
    source:
        A :class:`FunctionSource` (or anything with ``next_event``).
    sink:
        Callable taking a list of events; raise :class:`SinkError` to signal
        a transient failure (the batch is rolled back and retried on the
        next pump).
    channel:
        Buffering channel; defaults to capacity 1000.
    batch_size:
        Events per sink delivery.
    name:
        Label under which this agent's counters appear in the registry;
        auto-generated (``flume-agent-N``) when omitted.
    runtime:
        Observability runtime; defaults to the installed one.
    """

    def __init__(self, source: FunctionSource, sink: Callable[[List[Any]], None],
                 channel: Optional[Channel] = None, batch_size: int = 10,
                 name: Optional[str] = None, runtime=None):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {batch_size}")
        self.source = source
        self.sink = sink
        self.channel = channel if channel is not None else Channel()
        self.batch_size = batch_size
        self.runtime = runtime or get_runtime()
        self.name = name or self.runtime.gensym("flume-agent")
        self._source_exhausted = False
        registry = self.runtime.registry
        self._received = registry.counter("streaming.flume.events_received")
        self._delivered = registry.counter("streaming.flume.events_delivered")
        self._committed = registry.counter("streaming.flume.batches_committed")
        self._rolled_back = registry.counter(
            "streaming.flume.batches_rolled_back")
        self._depth = registry.gauge("streaming.flume.channel_depth")

    @classmethod
    def from_consumer(cls, consumer: Consumer,
                      sink: Callable[[List[Any]], None],
                      batch_size: int = 10, name: Optional[str] = None,
                      runtime=None) -> "FlumeAgent":
        """An agent whose channel *is* a broker consumer group.

        Transaction commit maps to offset commit and rollback to
        seek-to-committed, so a sink failure redelivers the batch from
        the broker — the flume at-least-once contract, but with the
        broker as the durable buffer.  ``consumer`` must use
        ``auto_commit=False``.
        """
        return cls(FunctionSource([]), sink,
                   channel=ConsumerChannel(consumer), batch_size=batch_size,
                   name=name, runtime=runtime)

    @property
    def metrics(self) -> AgentMetrics:
        """This agent's counters, read back from the registry."""
        return AgentMetrics(
            events_received=int(self._received.value(agent=self.name)),
            events_delivered=int(self._delivered.value(agent=self.name)),
            batches_committed=int(self._committed.value(agent=self.name)),
            batches_rolled_back=int(self._rolled_back.value(agent=self.name)),
            source_exhausted=self._source_exhausted)

    def pump_source(self, max_events: int) -> int:
        """Move up to ``max_events`` from the source into the channel."""
        moved = 0
        while moved < max_events and not self.channel.full:
            event = self.source.next_event()
            if event is None:
                self._source_exhausted = True
                break
            self.channel.put(event)
            moved += 1
        if moved:
            self._received.inc(moved, agent=self.name)
        self._depth.set(len(self.channel), agent=self.name)
        return moved

    def pump_sink(self) -> int:
        """Deliver one batch from the channel to the sink.

        Returns the number of events delivered (0 on failure or empty
        channel); a failed batch is rolled back for retry.
        """
        transaction = self.channel.take_batch(self.batch_size)
        if not transaction.events:
            transaction.commit()
            return 0
        with self.runtime.tracer.span("streaming.flume.deliver", agent=self.name) as span:
            try:
                self.sink(list(transaction.events))
            except SinkError:
                transaction.rollback()
                self._rolled_back.inc(agent=self.name)
                span.annotate(outcome="rolled_back")
                self._depth.set(len(self.channel), agent=self.name)
                return 0
            transaction.commit()
            span.annotate(outcome="committed")
        self._committed.inc(agent=self.name)
        self._delivered.inc(len(transaction.events), agent=self.name)
        self._depth.set(len(self.channel), agent=self.name)
        return len(transaction.events)

    def run(self, max_cycles: int = 10_000) -> AgentMetrics:
        """Pump until the source is exhausted and the channel is drained.

        ``max_cycles`` bounds the loop so a permanently failing sink cannot
        hang the caller.
        """
        for _ in range(max_cycles):
            self.pump_source(self.batch_size)
            delivered = self.pump_sink()
            if (self._source_exhausted and len(self.channel) == 0
                    and delivered == 0):
                break
        return self.metrics


# -- common sink factories ------------------------------------------------------

def dfs_sink(dfs, path_prefix: str,
             encode: Callable[[Any], bytes] = lambda e: repr(e).encode()
             ) -> Callable[[List[Any]], None]:
    """Sink writing each batch as a new DFS file ``<prefix>/part-NNNNN``."""
    counter = {"n": 0}

    def sink(events: List[Any]) -> None:
        payload = b"\n".join(encode(e) for e in events)
        dfs.create(f"{path_prefix}/part-{counter['n']:05d}", payload)
        counter["n"] += 1

    return sink


def collection_sink(collection) -> Callable[[List[Any]], None]:
    """Sink inserting dict events into a document-store collection."""

    def sink(events: List[Any]) -> None:
        for event in events:
            collection.insert(dict(event))

    return sink


def broker_sink(broker, topic: str,
                key_fn: Callable[[Any], Optional[str]] = lambda e: None
                ) -> Callable[[List[Any]], None]:
    """Sink producing each batch atomically onto a broker topic.

    The whole batch is admitted or none of it
    (:meth:`~repro.streaming.broker.Broker.produce_batch`), so a
    backpressure stall rolls the *entire* flume transaction back with no
    delivered prefix — a retry cannot duplicate records.  The stall is
    surfaced as :class:`SinkError`, which is exactly the flume retry
    signal: the batch returns to the channel head, the channel fills,
    and the source stops being pumped until consumers commit.
    """

    def sink(events: List[Any]) -> None:
        try:
            broker.produce_batch(topic, events, key_fn=key_fn)
        except BackpressureStall as stall:
            raise SinkError(f"broker backpressure on {topic}: {stall}") \
                from stall

    return sink


#: historical name — the bus grew into the broker, the sink came along
topic_sink = broker_sink
