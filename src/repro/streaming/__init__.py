"""Data ingestion substrates (Sec. II-C-2).

- :mod:`repro.streaming.rdbms` — a minimal relational table store standing
  in for the "legacy database systems" the paper imports from.
- :mod:`repro.streaming.sqoop` — bulk RDBMS -> DFS/document-store import
  with parallel mappers (the Apache Sqoop role).
- :mod:`repro.streaming.flume` — source -> channel -> sink agents with
  transactional batches and at-least-once delivery (the Apache Flume role).
- :mod:`repro.streaming.bus` — a partitioned topic log with consumer groups
  gluing real-time feeds to the analysis pipeline.
"""

from repro.streaming.rdbms import RelationalDatabase, Table, RDBMSError
from repro.streaming.bus import Consumer, MessageBus, Record, BusError
from repro.streaming.flume import (
    Channel,
    ChannelFullError,
    FlumeAgent,
    FunctionSource,
    SinkError,
    collection_sink,
    dfs_sink,
    topic_sink,
)
from repro.streaming.sqoop import SqoopImporter

__all__ = [
    "RelationalDatabase", "Table", "RDBMSError",
    "MessageBus", "Consumer", "Record", "BusError",
    "FlumeAgent", "FunctionSource", "Channel", "ChannelFullError", "SinkError",
    "dfs_sink", "collection_sink", "topic_sink",
    "SqoopImporter",
]
