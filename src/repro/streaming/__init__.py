"""Data ingestion substrates (Sec. II-C-2).

- :mod:`repro.streaming.rdbms` — a minimal relational table store standing
  in for the "legacy database systems" the paper imports from.
- :mod:`repro.streaming.sqoop` — bulk RDBMS -> DFS/document-store import
  with parallel mappers (the Apache Sqoop role).
- :mod:`repro.streaming.flume` — source -> channel -> sink agents with
  transactional batches and at-least-once delivery (the Apache Flume role).
- :mod:`repro.streaming.broker` — the Kafka-class pub/sub backbone:
  partitioned topics, consumer groups with committed offsets and
  rebalancing, retention/compaction, backpressure, zero-copy handoff
  (``repro.streaming.bus`` re-exports it for old imports).
"""

from repro.streaming.rdbms import RelationalDatabase, Table, RDBMSError
from repro.streaming.broker import (
    BACKPRESSURE_POLICIES,
    BackpressureError,
    BackpressureStall,
    Broker,
    BrokerError,
    BusError,
    Consumer,
    MessageBus,
    RebalanceError,
    Record,
    RecordBatch,
    TopicConfig,
)
from repro.streaming.flume import (
    Channel,
    ChannelFullError,
    ConsumerChannel,
    FlumeAgent,
    FunctionSource,
    SinkError,
    broker_sink,
    collection_sink,
    dfs_sink,
    topic_sink,
)
from repro.streaming.sqoop import SqoopImporter

__all__ = [
    "RelationalDatabase", "Table", "RDBMSError",
    "Broker", "MessageBus", "Consumer", "Record", "RecordBatch",
    "TopicConfig",
    "BrokerError", "BusError", "BackpressureError", "BackpressureStall",
    "RebalanceError", "BACKPRESSURE_POLICIES",
    "FlumeAgent", "FunctionSource", "Channel", "ChannelFullError",
    "ConsumerChannel", "SinkError",
    "dfs_sink", "collection_sink", "topic_sink", "broker_sink",
    "SqoopImporter",
]
