"""Bulk import from the relational store into the DFS or a document store.

Mirrors Apache Sqoop's shape: a table import splits the source by primary-key
range into N "mapper" chunks, each written as a ``part-mNNNNN`` CSV file
under a target DFS directory (or inserted into a document collection).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import List, Optional

from repro.dfs import DistributedFileSystem
from repro.runtime import get_runtime
from repro.streaming.rdbms import RelationalDatabase


@dataclass
class ImportReport:
    """Summary of one import job."""

    table: str
    rows: int
    mappers: int
    files: List[str]


def _rows_to_csv(columns, rows) -> bytes:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(columns)
    for row in rows:
        writer.writerow([row[c] for c in columns])
    return buffer.getvalue().encode()


def csv_to_rows(payload: bytes) -> List[dict]:
    """Inverse of the import encoding (used by downstream Spark jobs)."""
    reader = csv.reader(io.StringIO(payload.decode()))
    header = next(reader)
    return [dict(zip(header, row)) for row in reader]


class SqoopImporter:
    """Imports relational tables in parallel key-range chunks.

    Imported rows/files are reported through the runtime as
    ``streaming.sqoop.rows_imported{table=...}`` and
    ``streaming.sqoop.files_written{table=...}``; each job runs under a
    ``sqoop.import`` span.
    """

    def __init__(self, database: RelationalDatabase,
                 dfs: Optional[DistributedFileSystem] = None,
                 runtime=None):
        self.database = database
        self.dfs = dfs
        self.runtime = runtime or get_runtime()

    def _record(self, table_name: str, rows: int, files: int) -> None:
        registry = self.runtime.registry
        registry.counter("streaming.sqoop.rows_imported").inc(
            rows, table=table_name)
        registry.counter("streaming.sqoop.files_written").inc(
            files, table=table_name)

    def import_table(self, table_name: str, target_dir: str,
                     num_mappers: int = 4) -> ImportReport:
        """Table -> DFS directory of ``part-mNNNNN`` CSV files."""
        if self.dfs is None:
            raise ValueError("this importer was built without a DFS")
        table = self.database.table(table_name)
        with self.runtime.tracer.span("streaming.sqoop.import", table=table_name,
                                      target="dfs"):
            splits = table.split_ranges(num_mappers)
            files = []
            rows = 0
            for mapper, split in enumerate(splits):
                if not split:
                    continue
                path = f"{target_dir}/part-m{mapper:05d}"
                self.dfs.create(path, _rows_to_csv(table.columns, split))
                files.append(path)
                rows += len(split)
        self._record(table_name, rows, len(files))
        return ImportReport(table=table_name, rows=rows,
                            mappers=num_mappers, files=files)

    def import_to_collection(self, table_name: str, collection,
                             num_mappers: int = 4) -> ImportReport:
        """Table -> document-store collection (one insert per row)."""
        table = self.database.table(table_name)
        with self.runtime.tracer.span("streaming.sqoop.import", table=table_name,
                                      target="collection"):
            splits = table.split_ranges(num_mappers)
            rows = 0
            for split in splits:
                for row in split:
                    collection.insert(dict(row))
                    rows += 1
        self._record(table_name, rows, 0)
        return ImportReport(table=table_name, rows=rows,
                            mappers=num_mappers, files=[])
