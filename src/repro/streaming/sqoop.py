"""Bulk import from the relational store into the DFS or a document store.

Mirrors Apache Sqoop's shape: a table import splits the source by primary-key
range into N "mapper" chunks, each written as a ``part-mNNNNN`` CSV file
under a target DFS directory (or inserted into a document collection).

Since the broker refactor the mapper output travels *through the broker*:
each import job produces its splits onto a private per-job topic (rows
keyed by mapper id, so per-mapper order is the broker's per-key order
guarantee) and a manual-commit consumer group drains the topic into the
DFS or collection, committing offsets only after each write lands — the
same at-least-once contract as every other ingestion path in the tree.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dfs import DistributedFileSystem
from repro.runtime import get_runtime
from repro.streaming.broker import Broker
from repro.streaming.rdbms import RelationalDatabase


@dataclass
class ImportReport:
    """Summary of one import job."""

    table: str
    rows: int
    mappers: int
    files: List[str]


def _rows_to_csv(columns, rows) -> bytes:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(columns)
    for row in rows:
        writer.writerow([row[c] for c in columns])
    return buffer.getvalue().encode()


def csv_to_rows(payload: bytes) -> List[dict]:
    """Inverse of the import encoding (used by downstream Spark jobs)."""
    reader = csv.reader(io.StringIO(payload.decode()))
    header = next(reader)
    return [dict(zip(header, row)) for row in reader]


class SqoopImporter:
    """Imports relational tables in parallel key-range chunks.

    Imported rows/files are reported through the runtime as
    ``streaming.sqoop.rows_imported{table=...}`` and
    ``streaming.sqoop.files_written{table=...}``; each job runs under a
    ``sqoop.import`` span.

    ``broker`` is the transport between the mapper (table-scan) side and
    the writer side; when omitted each importer gets a private
    :class:`~repro.streaming.broker.Broker`.  Topics are per-job
    (``sqoop.<table>-N`` via ``gensym``), so repeated imports on a shared
    broker never collide.
    """

    def __init__(self, database: RelationalDatabase,
                 dfs: Optional[DistributedFileSystem] = None,
                 runtime=None, broker: Optional[Broker] = None):
        self.database = database
        self.dfs = dfs
        self.runtime = runtime or get_runtime()
        self.broker = broker if broker is not None \
            else Broker(runtime=self.runtime)

    def _record(self, table_name: str, rows: int, files: int) -> None:
        registry = self.runtime.registry
        registry.counter("streaming.sqoop.rows_imported").inc(
            rows, table=table_name)
        registry.counter("streaming.sqoop.files_written").inc(
            files, table=table_name)

    def _produce_splits(self, table, table_name: str,
                        num_mappers: int) -> str:
        """Scan the table and produce every split onto a per-job topic.

        Rows are keyed ``mNNNNN`` by mapper, so the broker's per-key
        ordering preserves each mapper's key-range order end to end.
        """
        topic = self.runtime.gensym(f"sqoop.{table_name}")
        self.broker.create_topic(topic, partitions=max(1, num_mappers))
        for mapper, split in enumerate(table.split_ranges(num_mappers)):
            if not split:
                continue
            self.broker.produce_batch(
                topic, [dict(row) for row in split],
                key_fn=lambda row, m=mapper: f"m{m:05d}")
        return topic

    def _drain_by_mapper(self, topic: str,
                         table_name: str) -> Dict[str, List[dict]]:
        """Consume the job topic back, grouped and ordered by mapper key."""
        consumer = self.broker.consumer(
            f"sqoop-writer-{table_name}", [topic], auto_commit=False)
        grouped: Dict[str, List[dict]] = {}
        try:
            while True:
                batch = consumer.poll(500)
                if not batch:
                    break
                for record in batch:
                    grouped.setdefault(record.key, []).append(record.value)
                consumer.commit()
        finally:
            consumer.close()
        return grouped

    def import_table(self, table_name: str, target_dir: str,
                     num_mappers: int = 4) -> ImportReport:
        """Table -> DFS directory of ``part-mNNNNN`` CSV files."""
        if self.dfs is None:
            raise ValueError("this importer was built without a DFS")
        table = self.database.table(table_name)
        with self.runtime.tracer.span("streaming.sqoop.import", table=table_name,
                                      target="dfs"):
            topic = self._produce_splits(table, table_name, num_mappers)
            grouped = self._drain_by_mapper(topic, table_name)
            files = []
            rows = 0
            for key in sorted(grouped):
                split = grouped[key]
                path = f"{target_dir}/part-{key}"
                self.dfs.create(path, _rows_to_csv(table.columns, split))
                files.append(path)
                rows += len(split)
        self._record(table_name, rows, len(files))
        return ImportReport(table=table_name, rows=rows,
                            mappers=num_mappers, files=files)

    def import_to_collection(self, table_name: str, collection,
                             num_mappers: int = 4) -> ImportReport:
        """Table -> document-store collection (one insert per row)."""
        table = self.database.table(table_name)
        with self.runtime.tracer.span("streaming.sqoop.import", table=table_name,
                                      target="collection"):
            topic = self._produce_splits(table, table_name, num_mappers)
            consumer = self.broker.consumer(
                f"sqoop-writer-{table_name}", [topic], auto_commit=False)
            rows = 0
            try:
                while True:
                    batch = consumer.poll(500)
                    if not batch:
                        break
                    for record in batch:
                        collection.insert(dict(record.value))
                        rows += 1
                    consumer.commit()
            finally:
                consumer.close()
        self._record(table_name, rows, 0)
        return ImportReport(table=table_name, rows=rows,
                            mappers=num_mappers, files=[])
