"""A minimal relational table store — the legacy RDBMS that Sqoop imports.

Just enough of a relational model to be a realistic bulk-import source:
typed columns, a primary key, insert/select/delete, and split-ranges for
parallel mappers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple


class RDBMSError(Exception):
    """Raised for schema violations and bad queries."""


class Table:
    """One relational table with a declared schema.

    Parameters
    ----------
    name:
        Table name.
    columns:
        Ordered column names; the first column is the primary key.
    """

    def __init__(self, name: str, columns: Sequence[str]):
        if not columns:
            raise RDBMSError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise RDBMSError(f"duplicate column names: {columns}")
        self.name = name
        self.columns = tuple(columns)
        self.primary_key = columns[0]
        self._rows: Dict[Any, Tuple] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def insert(self, row: Dict[str, Any]) -> None:
        missing = set(self.columns) - set(row)
        if missing:
            raise RDBMSError(f"missing columns: {sorted(missing)}")
        extra = set(row) - set(self.columns)
        if extra:
            raise RDBMSError(f"unknown columns: {sorted(extra)}")
        key = row[self.primary_key]
        if key in self._rows:
            raise RDBMSError(f"duplicate primary key: {key}")
        self._rows[key] = tuple(row[c] for c in self.columns)

    def insert_many(self, rows: Sequence[Dict[str, Any]]) -> int:
        for row in rows:
            self.insert(row)
        return len(rows)

    def get(self, key: Any) -> Optional[Dict[str, Any]]:
        row = self._rows.get(key)
        return dict(zip(self.columns, row)) if row is not None else None

    def select(self, where: Optional[Callable[[Dict], bool]] = None
               ) -> List[Dict[str, Any]]:
        out = []
        for row in self._rows.values():
            record = dict(zip(self.columns, row))
            if where is None or where(record):
                out.append(record)
        return out

    def delete(self, key: Any) -> bool:
        return self._rows.pop(key, None) is not None

    def scan_sorted(self) -> Iterator[Dict[str, Any]]:
        """Rows in primary-key order — the deterministic Sqoop read order."""
        for key in sorted(self._rows, key=lambda k: (str(type(k)), k)):
            yield dict(zip(self.columns, self._rows[key]))

    def split_ranges(self, num_splits: int) -> List[List[Dict[str, Any]]]:
        """Partition rows into ``num_splits`` contiguous key ranges.

        This is Sqoop's ``--num-mappers`` split: each mapper imports one
        range.  Splits may be empty when rows < splits.
        """
        if num_splits < 1:
            raise RDBMSError(f"num_splits must be >= 1: {num_splits}")
        rows = list(self.scan_sorted())
        splits: List[List[Dict[str, Any]]] = [[] for _ in range(num_splits)]
        if not rows:
            return splits
        per_split = (len(rows) + num_splits - 1) // num_splits
        for index, row in enumerate(rows):
            splits[min(index // per_split, num_splits - 1)].append(row)
        return splits


class RelationalDatabase:
    """A named set of tables."""

    def __init__(self, name: str = "legacy"):
        self.name = name
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        if name in self._tables:
            raise RDBMSError(f"table already exists: {name}")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise RDBMSError(f"no such table: {name}") from None

    def table_names(self) -> List[str]:
        return sorted(self._tables)
