"""Static analysis for the repro codebase: determinism & observability lints.

PR 1 made identically-seeded runs byte-identical by routing every draw of
randomness through :mod:`repro.runtime.rng` and every clock read through the
runtime's DES/wall-clock split.  Those are conventions; this package turns
them into machine-checked invariants.  It is a from-scratch framework on
:mod:`ast` — no third-party linter — with:

- a pluggable rule registry (:mod:`repro.analysis.core`) with per-rule
  severity and path scoping;
- ``# repro: noqa[RULE]`` line suppressions;
- a committed baseline file for grandfathered findings
  (:mod:`repro.analysis.baseline`);
- text and JSON reporters (:mod:`repro.analysis.report`);
- a CLI: ``python -m repro.analysis src tests benchmarks`` (also installed
  as the ``repro-lint`` console script).

Rule packs live under :mod:`repro.analysis.rules`:

- **determinism** (DET1xx): no bare ``random`` / ``np.random.default_rng``
  outside ``repro.runtime.rng``; no wall-clock reads outside
  ``repro.runtime.core``; no ``rng or <fallback>`` defaults; no set
  iteration order leaking into results.
- **observability** (OBS2xx): metric/span names must be
  ``<layer>.<component>.<metric>``; ``tracer.span(...)`` must be a context
  manager; event payloads must be serializable.
- **API hygiene** (API3xx): no mutable default arguments; ``= None``
  defaults must be annotated ``Optional``.

The package deliberately depends only on the standard library so the lint
can run before the scientific stack is importable.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.core import Finding, Rule, Severity, all_rules, rule
from repro.analysis.engine import analyze_paths, analyze_source
from repro.analysis.report import render_json, render_text

__all__ = [
    "Baseline",
    "Finding", "Rule", "Severity", "all_rules", "rule",
    "analyze_paths", "analyze_source",
    "render_json", "render_text",
]
