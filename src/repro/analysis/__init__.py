"""Static analysis for the repro codebase: determinism & observability lints.

PR 1 made identically-seeded runs byte-identical by routing every draw of
randomness through :mod:`repro.runtime.rng` and every clock read through the
runtime's DES/wall-clock split.  Those are conventions; this package turns
them into machine-checked invariants.  It is a from-scratch framework on
:mod:`ast` — no third-party linter — with:

- a pluggable rule registry (:mod:`repro.analysis.core`) with per-rule
  severity and path scoping;
- ``# repro: noqa[RULE]`` line suppressions;
- a committed baseline file for grandfathered findings
  (:mod:`repro.analysis.baseline`);
- text and JSON reporters (:mod:`repro.analysis.report`);
- a CLI: ``python -m repro.analysis src tests benchmarks`` (also installed
  as the ``repro-lint`` console script).

Since PR 7 the analyzer is *whole-program*: every parsed module feeds a
project graph (:mod:`repro.analysis.graph` — symbol tables, import
edges, re-export-following name resolution, Tarjan cycle detection, a
coarse call graph with reverse reachability) that graph-scoped rules
(:class:`~repro.analysis.core.GraphRule`) check once per run.  An
incremental cache (:mod:`repro.analysis.cache`) and an optional
``ParallelExecutor`` fan-out accelerate re-lints without changing
findings.

Rule packs live under :mod:`repro.analysis.rules`:

- **determinism** (DET1xx): no bare ``random`` / ``np.random.default_rng``
  outside ``repro.runtime.rng``; no wall-clock reads outside
  ``repro.runtime.core``; no ``rng or <fallback>`` defaults; no set
  iteration order leaking into results; no fresh generators inside
  functions that receive an ``rng`` (DET106); no wall-clock values
  flowing into record timestamps or event payloads, tracked by the
  intraprocedural taint pass in :mod:`repro.analysis.dataflow` (DET107).
- **observability** (OBS2xx): metric/span names must be
  ``<layer>.<component>.<metric>``; ``tracer.span(...)`` must be a context
  manager; event payloads must be serializable.
- **API hygiene** (API3xx): no mutable default arguments; ``= None``
  defaults must be annotated ``Optional``.
- **architecture** (ARCH5xx): the declarative package layer map, checked
  with resolved import edges — no upward imports, no top-level import
  cycles, ``repro.analysis`` stays stdlib-only, no cross-package
  ``_private`` imports, every package placed in the map.
- **concurrency** (CONC6xx): functions shipped to ``map_ordered`` —
  resolved through the project graph, across modules — must not mutate
  module globals, write into their read-only shared-memory item, touch
  runtime/broker state, or reach ``time.sleep`` from DES-clocked code.

The package deliberately depends only on the standard library so the lint
can run before the scientific stack is importable.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.cache import ResultCache, analyzer_fingerprint
from repro.analysis.core import (Finding, GraphRule, Rule, Severity,
                                 all_rules, rule)
from repro.analysis.engine import (UnknownRuleError, analyze_paths,
                                   analyze_source, registered_rule_ids)
from repro.analysis.graph import ProjectGraph, build_graph
from repro.analysis.report import render_json, render_text

__all__ = [
    "Baseline",
    "Finding", "GraphRule", "Rule", "Severity", "all_rules", "rule",
    "ProjectGraph", "build_graph",
    "ResultCache", "analyzer_fingerprint",
    "UnknownRuleError", "analyze_paths", "analyze_source",
    "registered_rule_ids",
    "render_json", "render_text",
]
