"""Per-module analysis context: source, AST, parents, imports, noqa.

A :class:`ModuleContext` is everything a rule needs to judge one file
without re-walking the tree: the parsed AST with a parent map (for "is
this call the context expression of a ``with``?" questions), a resolved
import-alias table (so ``np.random.default_rng`` is recognised however
numpy was imported), and the ``# repro: noqa[RULE]`` suppression map.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath
from typing import Dict, Iterator, List, Optional, Set, Tuple

NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")

#: marker stored in the noqa map for a blanket ``# repro: noqa``
NOQA_ALL = "*"


def _normalize(path: str) -> str:
    return str(PurePosixPath(path.replace("\\", "/")))


class ModuleContext:
    """One parsed source file plus the derived tables rules consume."""

    def __init__(self, path: str, source: str,
                 is_library: Optional[bool] = None):
        self.path = path
        self.rel_path = _normalize(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        if is_library is None:
            parts = PurePosixPath(self.rel_path).parts
            is_library = "src" in parts[:-1]
        self.is_library = is_library
        self.noqa: Dict[int, Set[str]] = self._collect_noqa()
        self._parents: Dict[int, ast.AST] = {}
        self.imports: Dict[str, str] = {}
        self._index()

    # -- construction ----------------------------------------------------------
    def _collect_noqa(self) -> Dict[int, Set[str]]:
        table: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = NOQA_RE.search(line)
            if not match:
                continue
            codes = match.group("codes")
            if codes is None:
                table[lineno] = {NOQA_ALL}
            else:
                table[lineno] = {c.strip().upper()
                                 for c in codes.split(",") if c.strip()}
        return table

    def _index(self) -> None:
        for node in self.walk():
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:       # relative import: not an external module
                    continue
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{base}.{alias.name}" if base else alias.name

    # -- traversal --------------------------------------------------------------
    def walk(self) -> Iterator[ast.AST]:
        """Document-order traversal (deterministic, parents before children)."""
        stack: List[ast.AST] = [self.tree]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(ast.iter_child_nodes(node))))

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    # -- name resolution --------------------------------------------------------
    def dotted_parts(self, node: ast.AST) -> Optional[Tuple[str, ...]]:
        """Flatten a Name/Attribute chain to its syntactic parts."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return tuple(reversed(parts))

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or None.

        Follows the module's import aliases, so with ``import numpy as np``
        the expression ``np.random.default_rng`` resolves to
        ``"numpy.random.default_rng"``.  Names not rooted at an import
        resolve to None — a local variable, not an external API.
        """
        parts = self.dotted_parts(node)
        if not parts:
            return None
        root = self.imports.get(parts[0])
        if root is None:
            return None
        return ".".join((root,) + parts[1:])

    # -- suppression -------------------------------------------------------------
    def suppressed(self, rule_id: str, line: int) -> bool:
        codes = self.noqa.get(line)
        if not codes:
            return False
        return NOQA_ALL in codes or rule_id.upper() in codes
