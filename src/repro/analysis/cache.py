"""Incremental result cache: skip rule execution for unchanged files.

The cache maps ``(file content hash, rule-set fingerprint)`` to the
findings the rules produced last run.  The fingerprint covers both the
*selected rule ids* and the *source of the analyzer itself* (every
``.py`` under ``repro/analysis``), so editing a rule, the engine, or the
selection invalidates everything at once — a cache can never serve
findings computed by different analyzer code.

Two result classes are cached separately:

- **module findings** keyed per file — valid as long as that file's
  bytes are unchanged;
- **project (graph-rule) findings** keyed on the hash of *all* analyzed
  file hashes — any file edit, addition, or removal re-runs the graph
  rules, because a cross-module finding can be created or destroyed by
  a change in either module.

Cache misses are silent; a corrupt or version-skewed cache file is
discarded wholesale.  CI enforces consistency by diffing a cold run
against a warm one (see the lint job).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import Finding, Severity

CACHE_VERSION = 1


def file_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def analyzer_fingerprint(rule_ids: Sequence[str]) -> str:
    """Hash of the selected rule ids plus the analyzer's own source."""
    digest = hashlib.sha256()
    digest.update(",".join(sorted(rule_ids)).encode("utf-8"))
    package_root = Path(__file__).resolve().parent
    for path in sorted(package_root.rglob("*.py")):
        digest.update(path.name.encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


def project_sha(file_shas: Dict[str, str]) -> str:
    digest = hashlib.sha256()
    for rel_path in sorted(file_shas):
        digest.update(rel_path.encode("utf-8"))
        digest.update(file_shas[rel_path].encode("utf-8"))
    return digest.hexdigest()


def _finding_from_dict(payload: Dict) -> Finding:
    return Finding(rule=payload["rule"],
                   severity=Severity(payload["severity"]),
                   path=payload["path"], line=int(payload["line"]),
                   col=int(payload["col"]), message=payload["message"])


class ResultCache:
    """On-disk JSON cache of per-file and whole-project findings."""

    def __init__(self, path, fingerprint: str):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._modules: Dict[str, Dict] = {}
        self._project: Optional[Dict] = None
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            return
        if payload.get("version") != CACHE_VERSION or \
                payload.get("fingerprint") != self.fingerprint:
            return
        self._modules = payload.get("modules", {})
        self._project = payload.get("project")

    # -- module findings -------------------------------------------------------
    def get_module(self, rel_path: str, sha: str) -> Optional[List[Finding]]:
        entry = self._modules.get(rel_path)
        if entry is None or entry.get("sha") != sha:
            self.misses += 1
            return None
        self.hits += 1
        return [_finding_from_dict(f) for f in entry["findings"]]

    def put_module(self, rel_path: str, sha: str,
                   findings: Sequence[Finding]) -> None:
        self._modules[rel_path] = {
            "sha": sha,
            "findings": [f.to_dict() for f in findings],
        }

    # -- project (graph-rule) findings -----------------------------------------
    def get_project(self, sha: str) -> Optional[List[Finding]]:
        if self._project is None or self._project.get("sha") != sha:
            return None
        return [_finding_from_dict(f) for f in self._project["findings"]]

    def put_project(self, sha: str, findings: Sequence[Finding]) -> None:
        self._project = {
            "sha": sha,
            "findings": [f.to_dict() for f in findings],
        }

    # -- persistence -----------------------------------------------------------
    def save(self) -> None:
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "modules": {rel: self._modules[rel]
                        for rel in sorted(self._modules)},
            "project": self._project,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload, indent=1, sort_keys=True)
                             + "\n", encoding="utf-8")
