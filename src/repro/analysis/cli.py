"""Command-line interface: ``python -m repro.analysis`` / ``repro-lint``.

Exit status: 0 when no new error-severity findings remain after baseline
and ``noqa`` filtering, 1 when errors (or, with ``--strict``, warnings)
remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.cache import ResultCache, analyzer_fingerprint
from repro.analysis.core import Severity, all_rules
from repro.analysis.engine import (UnknownRuleError, analyze_paths,
                                   registered_rule_ids)
from repro.analysis.report import render_json, render_text


def _parse_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & observability linter for the "
                    "repro codebase")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} "
                             "when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--strict", action="store_true",
                        help="warnings also fail the run")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="fan per-module rule execution out through "
                             "the repo's own ParallelExecutor (falls back "
                             "to serial when numpy is unavailable)")
    parser.add_argument("--cache", default=None, metavar="FILE",
                        help="incremental result cache file; unchanged "
                             "files skip rule execution")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule_obj in all_rules():
        scope = "library" if rule_obj.library_only else "all code"
        lines.append(f"{rule_obj.id} [{rule_obj.severity.value}, {scope}] "
                     f"{rule_obj.name}: {rule_obj.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)
    cache = None
    if args.cache:
        ids = set(registered_rule_ids())
        chosen = {i for i in ids if not select or i in select} - set(ignore or ())
        cache = ResultCache(args.cache, analyzer_fingerprint(sorted(chosen)))
    try:
        findings, contexts = analyze_paths(
            args.paths, select=select, ignore=ignore,
            workers=args.workers, cache=cache)
    except UnknownRuleError as exc:
        parser.error(str(exc))  # exits 2

    baseline_path = Path(args.baseline) if args.baseline \
        else Path(DEFAULT_BASELINE_NAME)
    if args.write_baseline:
        Baseline.from_findings(findings, contexts).save(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baselined, stale = [], []
    if not args.no_baseline and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
        findings, baselined, stale = baseline.apply(findings, contexts)

    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings, baselined, stale))

    failing_severities = {Severity.ERROR, Severity.WARNING} if args.strict \
        else {Severity.ERROR}
    failing = [f for f in findings if f.severity in failing_severities]
    return 1 if failing else 0


if __name__ == "__main__":       # pragma: no cover - exercised via __main__
    raise SystemExit(main())
