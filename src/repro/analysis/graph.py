"""Whole-program symbol/import graph for cross-module analysis.

The per-file rules in :mod:`repro.analysis.rules` judge one
:class:`~repro.analysis.context.ModuleContext` at a time; the invariants
introduced by the parallel engine and the streaming broker (worker
closures shipped across a fork, layer boundaries, DES pacing) are
*cross-module* contracts.  :class:`ProjectGraph` is the substrate for
checking them statically: built once per analysis run from every parsed
module, it provides

- **module identity** — a dotted module name derived from the file path
  (``src/repro/fog/pipeline.py`` -> ``repro.fog.pipeline``), plus the
  top-level package (``fog``) the layer map keys on;
- **symbol tables** — every top-level function, class, and assignment,
  with its def-site AST node;
- **import edges** — one edge per ``import``/``from-import``, tagged
  with the target module, the imported symbol (for from-imports), the
  line, and whether the import executes at module top level (deferred
  function-level imports legitimately break cycles);
- **cross-module name resolution** — ``resolve(module, name)`` follows
  import bindings (including re-exports) to the defining module's
  symbol table, so a rule inspecting ``map_ordered(worker, ...)`` in
  module B can fetch the ``FunctionDef`` of ``worker`` from module A;
- **cycle detection** — Tarjan SCCs over top-level import edges;
- a **call graph** — coarse edges from each function/method to the
  project symbols and external dotted names it calls, with reverse
  reachability (``callers_reaching``) for "wall pacing reachable from
  DES-clocked code"-style rules.

Everything here is standard library only, like the rest of the package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import ModuleContext


def module_name_for_path(rel_path: str) -> str:
    """Dotted module name for a source path.

    Paths under a ``src`` directory are rooted there
    (``tmp/src/repro/nn/tensor.py`` -> ``repro.nn.tensor``); other paths
    dot their full relative shape (``tests/fog/test_x.py`` ->
    ``tests.fog.test_x``).  ``__init__.py`` names the package itself.
    """
    parts = list(PurePosixPath(rel_path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "src" in parts[:-1]:
        # root at the *last* "src" so nested checkouts still resolve
        root = max(i for i, part in enumerate(parts[:-1]) if part == "src")
        parts = parts[root + 1:]
    else:
        parts = [p for p in parts if p not in (".", "..", "/")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class SymbolDef:
    """A top-level definition: where a name is born."""

    module: str
    name: str
    kind: str            # "function" | "class" | "assign"
    node: ast.AST
    lineno: int


@dataclass(frozen=True)
class ImportEdge:
    """One import statement's effect on the module graph."""

    src: str                       # importing module
    target: str                    # imported module (dotted)
    symbol: Optional[str]          # from-imported symbol, None for modules
    lineno: int
    toplevel: bool                 # executes at import time (module body)


@dataclass(frozen=True)
class _Binding:
    """What a local name refers to: a module or another module's symbol."""

    kind: str                      # "module" | "symbol"
    module: str
    symbol: Optional[str] = None


@dataclass
class ModuleNode:
    """One module's slice of the project graph."""

    name: str
    ctx: ModuleContext
    package: Optional[str]         # top-level package under "repro", else None
    symbols: Dict[str, SymbolDef] = field(default_factory=dict)
    imports: List[ImportEdge] = field(default_factory=list)
    bindings: Dict[str, _Binding] = field(default_factory=dict)

    @property
    def is_library(self) -> bool:
        return self.ctx.is_library


#: call-graph node: (module name, function qualname)
FuncKey = Tuple[str, str]


class ProjectGraph:
    """Symbol tables, import edges, and a call graph over parsed modules."""

    def __init__(self, contexts: Dict[str, ModuleContext]):
        self.modules: Dict[str, ModuleNode] = {}
        self._by_path: Dict[str, str] = {}
        for rel_path, ctx in sorted(contexts.items()):
            name = module_name_for_path(rel_path)
            if not name:
                continue
            package = None
            parts = name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                package = parts[1]
            self.modules[name] = ModuleNode(name=name, ctx=ctx,
                                            package=package)
            self._by_path[ctx.rel_path] = name
        for node in self.modules.values():
            self._collect_symbols(node)
        for node in self.modules.values():
            self._collect_imports(node)
        # call graph: built lazily, most runs never need it
        self._calls: Optional[Dict[FuncKey, Set]] = None
        self._func_sites: Dict[FuncKey, int] = {}

    # -- construction ----------------------------------------------------------
    def _collect_symbols(self, node: ModuleNode) -> None:
        for stmt in node.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                node.symbols[stmt.name] = SymbolDef(
                    node.name, stmt.name, "function", stmt, stmt.lineno)
            elif isinstance(stmt, ast.ClassDef):
                node.symbols[stmt.name] = SymbolDef(
                    node.name, stmt.name, "class", stmt, stmt.lineno)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name in _target_names(target):
                        node.symbols[name] = SymbolDef(
                            node.name, name, "assign", stmt, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                node.symbols[stmt.target.id] = SymbolDef(
                    node.name, stmt.target.id, "assign", stmt, stmt.lineno)

    def _collect_imports(self, node: ModuleNode) -> None:
        toplevel_stmts = set(map(id, node.ctx.tree.body))
        for ast_node in node.ctx.walk():
            if isinstance(ast_node, ast.Import):
                toplevel = id(ast_node) in toplevel_stmts
                for alias in ast_node.names:
                    node.imports.append(ImportEdge(
                        node.name, alias.name, None, ast_node.lineno,
                        toplevel))
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname \
                        else alias.name.split(".")[0]
                    node.bindings.setdefault(
                        bound, _Binding("module", target))
            elif isinstance(ast_node, ast.ImportFrom):
                toplevel = id(ast_node) in toplevel_stmts
                base = self._from_import_base(node, ast_node)
                if base is None:
                    continue
                for alias in ast_node.names:
                    if alias.name == "*":
                        node.imports.append(ImportEdge(
                            node.name, base, None, ast_node.lineno, toplevel))
                        continue
                    candidate = f"{base}.{alias.name}" if base else alias.name
                    bound = alias.asname or alias.name
                    if candidate in self.modules:
                        # ``from package import submodule``
                        node.imports.append(ImportEdge(
                            node.name, candidate, None, ast_node.lineno,
                            toplevel))
                        node.bindings.setdefault(
                            bound, _Binding("module", candidate))
                    else:
                        node.imports.append(ImportEdge(
                            node.name, base, alias.name, ast_node.lineno,
                            toplevel))
                        node.bindings.setdefault(
                            bound, _Binding("symbol", base, alias.name))

    def _from_import_base(self, node: ModuleNode,
                          stmt: ast.ImportFrom) -> Optional[str]:
        """Absolute module a from-import pulls from (resolving relativity)."""
        if not stmt.level:
            return stmt.module or None
        parts = node.name.split(".")
        # level 1 strips the module segment, each further level one package
        anchor = parts[:-stmt.level]
        if not anchor:
            return stmt.module or None
        if stmt.module:
            anchor.append(stmt.module)
        return ".".join(anchor)

    # -- lookups ---------------------------------------------------------------
    def module_for_path(self, rel_path: str) -> Optional[ModuleNode]:
        name = self._by_path.get(rel_path)
        return self.modules.get(name) if name else None

    def library_modules(self) -> Iterator[ModuleNode]:
        for name in sorted(self.modules):
            node = self.modules[name]
            if node.is_library:
                yield node

    def resolve(self, module: str, name: str,
                _seen: Optional[FrozenSet] = None) -> Optional[SymbolDef]:
        """Def site of ``name`` as visible in ``module``, following imports.

        Walks re-export chains (``from a import f`` in b, ``from b import
        f`` in c) with a visited set, so import cycles cannot loop the
        resolver.  Returns None for builtins, externals, and locals.
        """
        node = self.modules.get(module)
        if node is None:
            return None
        seen = _seen or frozenset()
        if (module, name) in seen:
            return None
        if name in node.symbols:
            return node.symbols[name]
        binding = node.bindings.get(name)
        if binding is not None and binding.kind == "symbol":
            return self.resolve(binding.module, binding.symbol,
                                seen | {(module, name)})
        return None

    def resolve_call_target(self, module: str,
                            func: ast.AST) -> Optional[SymbolDef]:
        """Def site of a call expression's target, cross-module.

        Handles ``worker(...)`` (local or from-imported) and
        ``mod.worker(...)`` where ``mod`` is an imported project module.
        """
        if isinstance(func, ast.Name):
            return self.resolve(module, func.id)
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            node = self.modules.get(module)
            if node is None:
                return None
            binding = node.bindings.get(func.value.id)
            if binding is not None and binding.kind == "module":
                return self.resolve(binding.module, func.attr)
        return None

    # -- cycles ----------------------------------------------------------------
    def import_cycles(self) -> List[List[str]]:
        """Cycles among project modules, via Tarjan SCC on top-level edges."""
        edges: Dict[str, List[str]] = {name: [] for name in self.modules}
        for node in self.modules.values():
            targets = {e.target for e in node.imports
                       if e.toplevel and e.target in self.modules
                       and e.target != node.name}
            edges[node.name] = sorted(targets)

        index_of: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            # iterative Tarjan: (node, child-iterator) frames
            work = [(root, iter(edges[root]))]
            index_of[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index_of:
                        index_of[child] = low[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(edges[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index_of[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1:
                        sccs.append(sorted(scc))

        for name in sorted(self.modules):
            if name not in index_of:
                strongconnect(name)
        return sorted(sccs)

    # -- call graph -------------------------------------------------------------
    def call_graph(self) -> Dict[FuncKey, Set]:
        """``(module, qualname) -> {callee}`` where a callee is either a
        :data:`FuncKey` (resolved project function) or a dotted external
        name string (``"time.sleep"``)."""
        if self._calls is None:
            self._calls = {}
            for node in self.modules.values():
                self._collect_calls(node)
        return self._calls

    def _collect_calls(self, node: ModuleNode) -> None:
        graph = self._calls
        assert graph is not None

        def walk_scope(body: Sequence[ast.stmt], qual: str,
                       is_class: bool) -> None:
            """One lexical scope: record its calls, recurse into nested defs.

            A nested function gets its own call-graph node, and — unless
            the scope is a class body, where defining a method does not
            run it — the enclosing scope gets an edge to it: closures
            handed to executors/schedulers generally do run, and the
            over-approximation only ever widens reachability.
            """
            callees = graph.setdefault((node.name, qual), set())
            stack: List[ast.AST] = list(body)
            nested: List[ast.stmt] = []
            while stack:
                item = stack.pop()
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    nested.append(item)
                    continue
                if isinstance(item, ast.Call):
                    self._record_call(node, qual, item)
                stack.extend(ast.iter_child_nodes(item))
            for item in nested:
                child_qual = f"{qual}.{item.name}" if qual else item.name
                self._func_sites[(node.name, child_qual)] = item.lineno
                if not is_class and not isinstance(item, ast.ClassDef):
                    callees.add((node.name, child_qual))
                walk_scope(item.body, child_qual,
                           isinstance(item, ast.ClassDef))

        # the module body is the pseudo-function ""
        walk_scope(node.ctx.tree.body, "", is_class=True)

    def _record_call(self, node: ModuleNode, qual: str,
                     call: ast.Call) -> None:
        graph = self._calls
        assert graph is not None
        callees = graph.setdefault((node.name, qual), set())
        resolved = node.ctx.resolve(call.func)
        if resolved is not None:
            target = self._project_symbol(resolved)
            callees.add(target if target is not None else resolved)
            return
        symbol = self.resolve_call_target(node.name, call.func)
        if symbol is not None and symbol.kind == "function":
            callees.add((symbol.module, symbol.name))
        elif isinstance(call.func, ast.Name):
            local = node.symbols.get(call.func.id)
            if local is not None and local.kind == "function":
                callees.add((node.name, local.name))

    def _project_symbol(self, dotted: str) -> Optional[FuncKey]:
        """Map a resolved dotted name onto a project function, if any."""
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module in self.modules:
                symbol = self.modules[module].symbols.get(parts[split])
                if symbol is not None and symbol.kind == "function":
                    return (module, symbol.name)
                return None
        return None

    def def_site(self, key: FuncKey) -> int:
        """Def-site line of a call-graph function (1 for module scope)."""
        self.call_graph()
        return self._func_sites.get(key, 1)

    def callers_reaching(self, external: str
                         ) -> Dict[FuncKey, List[FuncKey]]:
        """Functions that (transitively) call dotted name ``external``.

        Returns ``{function -> call chain}`` where the chain lists the
        functions stepped through, ending at the one containing the
        direct call — the evidence trail a finding message can print.
        """
        graph = self.call_graph()
        direct = [key for key, callees in graph.items()
                  if external in callees]
        reverse: Dict[FuncKey, List[FuncKey]] = {}
        for key, callees in graph.items():
            for callee in callees:
                if isinstance(callee, tuple):
                    reverse.setdefault(callee, []).append(key)
        chains: Dict[FuncKey, List[FuncKey]] = {}
        frontier = [(key, [key]) for key in sorted(direct)]
        while frontier:
            key, chain = frontier.pop(0)
            if key in chains:
                continue
            chains[key] = chain
            for caller in sorted(reverse.get(key, [])):
                if caller not in chains:
                    frontier.append((caller, [caller] + chain))
        return chains


def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def build_graph(contexts: Dict[str, ModuleContext]) -> ProjectGraph:
    """Construct the project graph the engine hands to graph-scoped rules."""
    return ProjectGraph(contexts)
