"""The analysis engine: collect, parse, dispatch — per-module and whole-program.

``analyze_paths`` is the programmatic entry the CLI and tests share.  It
runs in two phases:

1. **Per-module**: every file parses into a
   :class:`~repro.analysis.context.ModuleContext` and runs the module
   rules over one document-order walk.  Unparseable files surface as
   ``PARSE`` findings instead of crashing the run, so one bad file
   cannot hide findings in the others.
2. **Whole-program**: the parsed contexts are assembled into a
   :class:`~repro.analysis.graph.ProjectGraph` (symbol tables, import
   edges, call graph) and every :class:`~repro.analysis.core.GraphRule`
   checks it once.  Graph findings honor ``# repro: noqa`` like any
   other finding.

Two optional accelerators, both proven identical to the serial cold run
by the engine tests:

- an **incremental cache** (:mod:`repro.analysis.cache`): per-file
  findings keyed on content hash + analyzer fingerprint, graph findings
  keyed on the hash of all file hashes;
- **parallel rule execution** through the repo's own
  :class:`~repro.runtime.parallel.ParallelExecutor` (``workers > 1``) —
  the analyzer dogfoods the engine it guards.  The import is deferred
  and ``ImportError``-gated: without numpy installed the analyzer
  silently runs serially, preserving its stdlib-only cold start
  (ARCH503).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.cache import ResultCache, file_sha, project_sha
from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, GraphRule, Rule, Severity, all_rules
from repro.analysis.graph import ProjectGraph, build_graph

#: directory names never descended into during file collection
SKIP_DIRS = {"__pycache__", ".git", ".hg", ".tox", ".venv", "venv",
             "node_modules", ".mypy_cache", ".pytest_cache"}

#: pseudo-rule id for files that fail to parse
PARSE_RULE = "PARSE"


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories into a list of unique ``.py`` files.

    Deduplication is by *resolved* path, so ``repro-lint src ./src`` (or
    a file named both directly and via its directory) analyzes — and
    counts — every file exactly once.  The paths as given are preserved
    in the result; only the identity check resolves.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        key = str(path.resolve())
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def registered_rule_ids() -> List[str]:
    """Every selectable rule id (the registry plus the PARSE pseudo-rule)."""
    return sorted({r.id for r in all_rules()} | {PARSE_RULE})


class UnknownRuleError(ValueError):
    """``--select``/``--ignore`` named a rule id that is not registered."""

    def __init__(self, codes: Sequence[str]):
        self.codes = sorted(codes)
        super().__init__("unknown rule id(s): " + ", ".join(self.codes))


def _validate_codes(codes: Optional[Iterable[str]]) -> None:
    if not codes:
        return
    known = set(registered_rule_ids())
    unknown = [code for code in codes if code.upper() not in known]
    if unknown:
        raise UnknownRuleError(unknown)


def _select_rules(rules: Optional[Sequence[Rule]],
                  select: Optional[Iterable[str]],
                  ignore: Optional[Iterable[str]]) -> List[Rule]:
    chosen = list(rules) if rules is not None else all_rules()
    if rules is None:
        # only validate against the registry when running registry rules
        _validate_codes(select)
        _validate_codes(ignore)
    if select:
        wanted = {code.upper() for code in select}
        chosen = [r for r in chosen if r.id in wanted]
    if ignore:
        unwanted = {code.upper() for code in ignore}
        chosen = [r for r in chosen if r.id not in unwanted]
    return chosen


def _split_rules(rules: Sequence[Rule]) -> Tuple[List[Rule], List[GraphRule]]:
    module_rules = [r for r in rules if not isinstance(r, GraphRule)]
    graph_rules = [r for r in rules if isinstance(r, GraphRule)]
    return module_rules, graph_rules


def analyze_module(ctx: ModuleContext,
                   rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """All unsuppressed module-rule findings for one parsed module."""
    supplied = rules if rules is not None else all_rules()
    module_rules, _ = _split_rules(supplied)
    active = [r for r in module_rules if r.applies(ctx)]
    # node-type name -> [(rule, bound hook)], built once per module
    dispatch: Dict[str, List] = {}
    for rule_obj in active:
        for attr in dir(rule_obj):
            if attr.startswith("visit_"):
                dispatch.setdefault(attr[len("visit_"):], []).append(
                    getattr(rule_obj, attr))
    findings: List[Finding] = []
    if dispatch:
        for node in ctx.walk():
            for hook in dispatch.get(type(node).__name__, ()):
                findings.extend(hook(node, ctx))
    return [f for f in findings if not ctx.suppressed(f.rule, f.line)]


def analyze_graph(graph: ProjectGraph,
                  contexts: Dict[str, ModuleContext],
                  rules: Optional[Sequence[GraphRule]] = None
                  ) -> List[Finding]:
    """All unsuppressed graph-rule findings for a built project graph."""
    if rules is None:
        _, rules = _split_rules(all_rules())
    findings: List[Finding] = []
    for rule_obj in rules:
        for finding in rule_obj.check(graph):
            ctx = contexts.get(finding.path)
            if ctx is not None and ctx.suppressed(finding.rule,
                                                  finding.line):
                continue
            findings.append(finding)
    return findings


def analyze_source(source: str, path: str = "src/repro/example.py",
                   rules: Optional[Sequence[Rule]] = None,
                   is_library: Optional[bool] = None) -> List[Finding]:
    """Analyze a source string with the module rules (fixture entry point).

    Graph rules need a multi-file project; exercise them through
    :func:`analyze_paths` on a fixture tree instead.
    """
    ctx = ModuleContext(path, source, is_library=is_library)
    return sorted(analyze_module(ctx, rules=rules),
                  key=lambda f: f.sort_key())


def _make_executor(workers: int):
    """The repo's own ParallelExecutor, or None when unavailable.

    Deferred, ImportError-gated import: the parallel engine pulls in
    numpy, and the analyzer must keep working in a bare interpreter
    (ARCH503 stdlib-only contract).
    """
    if workers <= 1:
        return None
    try:
        from repro.runtime.parallel import ParallelExecutor
    except ImportError:
        return None
    return ParallelExecutor(workers=workers)


def analyze_paths(paths: Sequence[str],
                  rules: Optional[Sequence[Rule]] = None,
                  select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None,
                  workers: int = 1,
                  cache: Optional[ResultCache] = None,
                  ) -> Tuple[List[Finding], Dict[str, ModuleContext]]:
    """Analyze files/directories; returns (findings, contexts-by-path).

    ``workers > 1`` fans per-module rule execution out through the
    repo's own ParallelExecutor when it is importable (findings are
    order-independent: each task is pure and results merge in
    submission order).  ``cache`` short-circuits rule execution for
    files whose content hash matches the previous run under the same
    analyzer fingerprint.
    """
    chosen = _select_rules(rules, select, ignore)
    module_rules, graph_rules = _split_rules(chosen)

    findings: List[Finding] = []
    contexts: Dict[str, ModuleContext] = {}
    shas: Dict[str, str] = {}
    for path in collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            ctx = ModuleContext(str(path), source)
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", 1) or 1
            findings.append(Finding(
                rule=PARSE_RULE, severity=Severity.ERROR, path=str(path),
                line=lineno, col=0, message=f"failed to parse: {exc}"))
            continue
        contexts[ctx.rel_path] = ctx
        shas[ctx.rel_path] = file_sha(source)

    # -- per-module phase (cached / parallel / serial) -------------------------
    pending: List[str] = []
    for rel_path in sorted(contexts):
        cached = cache.get_module(rel_path, shas[rel_path]) \
            if cache is not None else None
        if cached is not None:
            findings.extend(cached)
        else:
            pending.append(rel_path)

    executor = _make_executor(workers) if pending else None

    def run_module(rel_path: str) -> List[Finding]:
        return analyze_module(contexts[rel_path], rules=module_rules)

    if executor is not None:
        batches = executor.map_ordered(run_module, pending,
                                       label="analysis.lint")
    else:
        batches = [run_module(rel_path) for rel_path in pending]
    for rel_path, batch in zip(pending, batches):
        findings.extend(batch)
        if cache is not None:
            cache.put_module(rel_path, shas[rel_path], batch)

    # -- whole-program phase ---------------------------------------------------
    if graph_rules and contexts:
        tree_sha = project_sha(shas)
        graph_findings = cache.get_project(tree_sha) \
            if cache is not None else None
        if graph_findings is None:
            graph = build_graph(contexts)
            graph_findings = analyze_graph(graph, contexts,
                                           rules=graph_rules)
            if cache is not None:
                cache.put_project(tree_sha, graph_findings)
        findings.extend(graph_findings)

    if cache is not None:
        cache.save()
    return sorted(findings, key=lambda f: f.sort_key()), contexts
