"""The analysis engine: collect files, walk each AST once, dispatch rules.

``analyze_paths`` is the programmatic entry the CLI and tests share: it
expands files/directories, parses each module into a
:class:`~repro.analysis.context.ModuleContext`, runs every applicable
rule over one document-order walk, drops ``# repro: noqa``-suppressed
findings, and returns the rest sorted by location.  Unparseable files
surface as ``PARSE`` findings instead of crashing the run, so one bad
file cannot hide findings in the others.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, all_rules

#: directory names never descended into during file collection
SKIP_DIRS = {"__pycache__", ".git", ".hg", ".tox", ".venv", "venv",
             "node_modules", ".mypy_cache", ".pytest_cache"}

#: pseudo-rule id for files that fail to parse
PARSE_RULE = "PARSE"


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _select_rules(rules: Optional[Sequence[Rule]],
                  select: Optional[Iterable[str]],
                  ignore: Optional[Iterable[str]]) -> List[Rule]:
    chosen = list(rules) if rules is not None else all_rules()
    if select:
        wanted = {code.upper() for code in select}
        chosen = [r for r in chosen if r.id in wanted]
    if ignore:
        unwanted = {code.upper() for code in ignore}
        chosen = [r for r in chosen if r.id not in unwanted]
    return chosen


def analyze_module(ctx: ModuleContext,
                   rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """All unsuppressed findings for one parsed module."""
    active = [r for r in (rules if rules is not None else all_rules())
              if r.applies(ctx)]
    # node-type name -> [(rule, bound hook)], built once per module
    dispatch: Dict[str, List] = {}
    for rule_obj in active:
        for attr in dir(rule_obj):
            if attr.startswith("visit_"):
                dispatch.setdefault(attr[len("visit_"):], []).append(
                    getattr(rule_obj, attr))
    findings: List[Finding] = []
    if dispatch:
        for node in ctx.walk():
            for hook in dispatch.get(type(node).__name__, ()):
                findings.extend(hook(node, ctx))
    return [f for f in findings if not ctx.suppressed(f.rule, f.line)]


def analyze_source(source: str, path: str = "src/repro/example.py",
                   rules: Optional[Sequence[Rule]] = None,
                   is_library: Optional[bool] = None) -> List[Finding]:
    """Analyze a source string (the fixture-test entry point)."""
    ctx = ModuleContext(path, source, is_library=is_library)
    return sorted(analyze_module(ctx, rules=rules),
                  key=lambda f: f.sort_key())


def analyze_paths(paths: Sequence[str],
                  rules: Optional[Sequence[Rule]] = None,
                  select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None,
                  ) -> Tuple[List[Finding], Dict[str, ModuleContext]]:
    """Analyze files/directories; returns (findings, contexts-by-path)."""
    chosen = _select_rules(rules, select, ignore)
    findings: List[Finding] = []
    contexts: Dict[str, ModuleContext] = {}
    for path in collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            ctx = ModuleContext(str(path), source)
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", 1) or 1
            findings.append(Finding(
                rule=PARSE_RULE, severity=Severity.ERROR, path=str(path),
                line=lineno, col=0, message=f"failed to parse: {exc}"))
            continue
        contexts[ctx.rel_path] = ctx
        findings.extend(analyze_module(ctx, rules=chosen))
    return sorted(findings, key=lambda f: f.sort_key()), contexts
