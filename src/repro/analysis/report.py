"""Reporters: render findings for humans (text) or tooling (JSON)."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Severity


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    by_severity = Counter(f.severity for f in findings)
    return {
        "total": len(findings),
        "errors": by_severity.get(Severity.ERROR, 0),
        "warnings": by_severity.get(Severity.WARNING, 0),
    }


def render_text(findings: Sequence[Finding],
                baselined: Sequence[Finding] = (),
                stale: Sequence[Tuple] = ()) -> str:
    lines: List[str] = []
    for finding in findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col + 1} "
                     f"{finding.rule} {finding.severity.value}: "
                     f"{finding.message}")
    summary = summarize(findings)
    lines.append(
        f"{summary['total']} finding(s): {summary['errors']} error(s), "
        f"{summary['warnings']} warning(s); "
        f"{len(baselined)} grandfathered by baseline")
    if stale:
        lines.append(f"{len(stale)} stale baseline entr(y/ies) "
                     f"matched nothing — prune with --write-baseline:")
        for rule_id, path, line_text in stale:
            lines.append(f"  stale: {rule_id} {path} {line_text!r}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                baselined: Sequence[Finding] = (),
                stale: Sequence[Tuple] = ()) -> str:
    summary = summarize(findings)
    summary["baselined"] = len(baselined)
    payload = {
        "version": 1,
        "summary": summary,
        "findings": [f.to_dict() for f in findings],
        "baselined": [f.to_dict() for f in baselined],
        "stale_baseline_entries": [
            {"rule": rule_id, "path": path, "line_text": line_text}
            for rule_id, path, line_text in stale
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
