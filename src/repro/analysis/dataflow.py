"""Intraprocedural taint tracking for determinism rules.

A tiny forward dataflow pass over one lexical scope (a function body or
the module top level): *sources* are expressions a predicate marks as
tainted (e.g. wall-clock calls), taint propagates through assignments,
augmented assignments, walrus bindings and tuple unpacking, and rules
then ask whether a *sink* expression carries taint.

Design choices, deliberately simple:

- **Monotone, no kills.**  Reassigning a tainted name with a clean value
  does not clear it.  That over-approximates (``t = time.time(); t = 0``
  stays tainted) but makes the two-pass fixpoint below exact for loops,
  and a rare false positive is one ``# repro: noqa`` away.
- **Scope-local.**  Nested function and lambda bodies are separate
  scopes: their assignments neither read nor write the enclosing
  scope's taint set.  Calls are not followed — taint does not cross a
  call boundary (that is what keeps the pass linear and predictable).
- **Two passes.**  A loop can carry taint backwards (``x = y`` before
  ``y = time.time()`` in the same ``while`` body); with a monotone
  transfer function, re-running the scan once reaches the fixpoint.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Iterator, List, Sequence, Set, Tuple

#: predicate deciding whether an AST node (typically a Call) is a source
SourcePredicate = Callable[[ast.AST], bool]

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)


def scope_nodes(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """All nodes of one scope, *excluding* nested function/class bodies."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_BARRIERS):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def iter_scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """Every lexical scope of a module: ``(owner, body)`` pairs.

    The module itself comes first (owner is the ``ast.Module``); then
    every function/method at any nesting depth (owner is its def node).
    Class bodies are folded into their enclosing scope's statement list
    only for discovery — their statements belong to the class scope,
    which for taint purposes behaves like the module level of the class.
    """
    yield tree, list(tree.body)
    stack: List[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, list(node.body)
        stack.extend(ast.iter_child_nodes(node))


def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def expression_tainted(node: ast.AST, tainted: Set[str],
                       is_source: SourcePredicate) -> bool:
    """Does this expression read a tainted name or contain a source?

    Nested lambda bodies are skipped — a lambda mentioning a tainted
    name does not evaluate it at definition time.
    """
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Lambda):
            continue
        if is_source(current):
            return True
        if isinstance(current, ast.Name) and \
                isinstance(current.ctx, ast.Load) and current.id in tainted:
            return True
        stack.extend(ast.iter_child_nodes(current))
    return False


def tainted_names(body: Sequence[ast.stmt], is_source: SourcePredicate,
                  initial: Iterable[str] = ()) -> Set[str]:
    """Names carrying taint anywhere in the scope (two-pass fixpoint)."""
    tainted: Set[str] = set(initial)
    for _ in range(2):
        before = len(tainted)
        for node in scope_nodes(body):
            value = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.AugAssign):
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.NamedExpr):
                value, targets = node.value, [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                value, targets = node.iter, [node.target]
            elif isinstance(node, ast.withitem) and \
                    node.optional_vars is not None:
                value, targets = node.context_expr, [node.optional_vars]
            if value is None:
                continue
            if expression_tainted(value, tainted, is_source):
                for target in targets:
                    tainted.update(_target_names(target))
        if len(tainted) == before:
            break
    return tainted
