"""Concurrency-safety rules (CONC6xx) for the parallel engine and broker.

``ParallelExecutor.map_ordered`` forks a fresh pool per call: workers
inherit the parent's memory, run the task, and ship back *only* the
return value plus a telemetry delta.  Everything else a worker does to
inherited state is silently discarded when the pool exits — which makes
"the worker mutated a module global" the classic heisenbug of this
engine: correct serially (``workers=1`` runs in-process), silently wrong
in parallel.  Shared-memory ndarray views are read-only by construction,
so worker-side writes raise at runtime; these rules catch both classes
*statically*, before a test has to get lucky.

All four rules are graph-scoped.  The worker function shipped to
``map_ordered`` is resolved through the project graph — a lambda at the
call site, a nested ``def`` in the enclosing function, a module-level
function, or a function *imported from another module* all resolve to
their def site, which is exactly the cross-module case a per-file linter
cannot see (worker defined in module A, shipped in module B).

The analysis of a worker body is deliberately intraprocedural: it judges
what the worker itself does, not its transitive callees, trading recall
for a rule precise enough to gate CI on.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, GraphRule, Severity, rule
from repro.analysis.graph import ModuleNode, ProjectGraph

#: method names that mutate their receiver in place (list/dict/set/ndarray)
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "setdefault", "add", "discard", "popitem", "sort", "reverse",
    "fill", "partition", "put", "resize", "setflags", "itemset",
})

#: calls that mutate runtime-wide state a forked worker cannot ship back
RUNTIME_MUTATORS = frozenset({
    "repro.runtime.core.set_runtime",
})

#: broker/bus surface that mutates log or group state; called in a forked
#: worker it mutates the *copy*, and the parent broker never sees it
BROKER_MUTATORS = frozenset({
    "produce", "produce_batch", "commit", "create_topic", "subscribe",
    "seek_to_committed", "attach_camera_feed", "publish_camera_frames",
})

#: receiver names that identify a broker/bus object well enough to judge
_BROKER_RECEIVERS = ("broker", "bus")

#: the sanctioned wall-clock home (mirrors determinism.CLOCK_HOME)
CLOCK_HOME = ("repro/runtime/core.py",)


def _receiver_parts(node: ast.AST) -> Tuple[str, ...]:
    """Name parts of an attribute chain's receiver (``a.b.c()`` -> a, b)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _local_names(fn: ast.AST) -> Set[str]:
    """Names bound inside a function: params, assignments, loop targets."""
    names: Set[str] = set()
    args = fn.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, (ast.Store, ast.Del)):
                names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                names.add(node.name)
    return names


def _first_param(fn: ast.AST) -> Optional[str]:
    args = fn.args.posonlyargs + fn.args.args
    if args:
        name = args[0].arg
        return None if name in ("self", "cls") else name
    return None


def _body_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        yield from ast.walk(stmt)


class _WorkerSite:
    """One resolved ``map_ordered`` shipment: where and what runs remotely."""

    def __init__(self, call_node: ast.Call, call_ctx: ModuleContext,
                 fn_node: ast.AST, def_ctx: ModuleContext,
                 def_module: str):
        self.call_node = call_node     # the map_ordered(...) call
        self.call_ctx = call_ctx       # module shipping the worker
        self.fn_node = fn_node         # Lambda / FunctionDef of the worker
        self.def_ctx = def_ctx         # module defining the worker
        self.def_module = def_module


def _nested_def(ctx: ModuleContext, name: str) -> Optional[ast.AST]:
    """Any ``def <name>`` in the module, including nested scopes."""
    for node in ctx.walk():
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == name:
            return node
    return None


def iter_worker_sites(graph: ProjectGraph) -> Iterator[_WorkerSite]:
    """Every ``*.map_ordered(fn, ...)`` in library code, with fn resolved.

    Resolution order for ``fn``: lambda at the call site; any ``def`` in
    the shipping module (nested scopes included); a symbol imported from
    another project module (followed through re-exports).  Bound methods
    on arbitrary objects (``self.x``) stay unresolved — the receiver's
    class is not knowable from the graph — and are skipped.
    """
    for node in graph.library_modules():
        ctx = node.ctx
        for ast_node in ctx.walk():
            if not isinstance(ast_node, ast.Call):
                continue
            func = ast_node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "map_ordered"):
                continue
            if not ast_node.args:
                continue
            worker = ast_node.args[0]
            if isinstance(worker, ast.Lambda):
                yield _WorkerSite(ast_node, ctx, worker, ctx, node.name)
            elif isinstance(worker, ast.Name):
                local = _nested_def(ctx, worker.id)
                if local is not None:
                    yield _WorkerSite(ast_node, ctx, local, ctx, node.name)
                    continue
                symbol = graph.resolve(node.name, worker.id)
                if symbol is not None and symbol.kind == "function":
                    def_node = graph.modules[symbol.module]
                    yield _WorkerSite(ast_node, ctx, symbol.node,
                                      def_node.ctx, symbol.module)
            elif isinstance(worker, ast.Attribute):
                symbol = graph.resolve_call_target(node.name, worker)
                if symbol is not None and symbol.kind == "function":
                    def_node = graph.modules[symbol.module]
                    yield _WorkerSite(ast_node, ctx, symbol.node,
                                      def_node.ctx, symbol.module)


def _module_level_mutables(module: ModuleNode) -> Set[str]:
    """Top-level names bound to mutable containers in ``module``."""
    mutable: Set[str] = set()
    for name, symbol in module.symbols.items():
        if symbol.kind != "assign":
            continue
        stmt = symbol.node
        value = getattr(stmt, "value", None)
        if value is None:
            continue
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            mutable.add(name)
        elif isinstance(value, ast.Call) and \
                isinstance(value.func, ast.Name) and \
                value.func.id in {"list", "dict", "set", "bytearray",
                                  "deque", "defaultdict", "Counter",
                                  "OrderedDict"}:
            mutable.add(name)
    return mutable


@rule
class WorkerGlobalMutationRule(GraphRule):
    """CONC601: a shipped worker must not mutate module-level state.

    A forked worker inherits module globals by copy-on-write; writes land
    in the child and vanish when the pool exits.  Only the return value
    and the telemetry delta cross back.  The rule resolves the function
    shipped to ``map_ordered`` — across modules if need be — and flags
    ``global`` writes and in-place mutation of module-level containers
    inside its body.
    """

    id = "CONC601"
    name = "worker-global-mutation"
    severity = Severity.ERROR
    description = ("function shipped to map_ordered mutates module-level "
                   "state (lost on pool exit)")

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        for site in iter_worker_sites(graph):
            def_node = graph.modules[site.def_module]
            mutables = _module_level_mutables(def_node)
            locals_ = _local_names(site.fn_node)
            globals_declared: Set[str] = set()
            for node in _body_nodes(site.fn_node):
                if isinstance(node, ast.Global):
                    globals_declared.update(node.names)
                    yield self.found_in(
                        site.def_ctx, node.lineno,
                        "worker declares `global "
                        f"{', '.join(node.names)}`; worker-side writes "
                        "to module globals are lost when the forked "
                        "pool exits — return the value instead")
            module_names = (mutables - locals_) | globals_declared
            if not module_names:
                continue
            for node in _body_nodes(site.fn_node):
                name = self._mutated_name(node)
                if name in module_names:
                    yield self.found_in(
                        site.def_ctx, node.lineno,
                        f"worker mutates module-level {name!r}; forked "
                        "workers mutate a copy that is discarded — "
                        "return the data and merge in the parent")

    @staticmethod
    def _mutated_name(node: ast.AST) -> Optional[str]:
        # NAME[...] = v  /  NAME[...] += v
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name):
                    return target.value.id
        # NAME.append(...) and friends
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in MUTATING_METHODS and \
                isinstance(node.func.value, ast.Name):
            return node.func.value.id
        return None


@rule
class SharedViewWriteRule(GraphRule):
    """CONC602: workers must not write into their shipped item.

    Arrays at or above ``shm_min_bytes`` arrive as *read-only*
    shared-memory views; a write raises ``ValueError: assignment
    destination is read-only`` at runtime — but only when the array is
    big enough to take the shared-memory path, so small-input tests pass
    while production sizes crash.  The rule flags in-place writes to the
    worker's item parameter statically.
    """

    id = "CONC602"
    name = "shared-view-write"
    severity = Severity.ERROR
    description = ("worker writes into its shipped item (a read-only "
                   "shared-memory view at runtime)")

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        for site in iter_worker_sites(graph):
            param = _first_param(site.fn_node)
            if param is None:
                continue
            rebound = self._rebound_before_use(site.fn_node, param)
            for node in _body_nodes(site.fn_node):
                message = self._write_to(node, param)
                if message and not rebound:
                    yield self.found_in(
                        site.def_ctx, node.lineno,
                        f"worker {message} parameter {param!r}, which "
                        "arrives as a read-only shared-memory view for "
                        "large arrays; np.copy(...) it first if a "
                        "scratch buffer is genuinely needed")

    @staticmethod
    def _rebound_before_use(fn: ast.AST, param: str) -> bool:
        """True when the worker's first statement(s) rebind the param
        (``item = np.copy(item)`` is the sanctioned escape)."""
        body = fn.body if isinstance(fn.body, list) else []
        for stmt in body[:2]:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == param:
                        return True
        return False

    @staticmethod
    def _write_to(node: ast.AST, param: str) -> Optional[str]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == param:
                    return "assigns into"
                if isinstance(node, ast.AugAssign) and \
                        isinstance(target, ast.Name) and target.id == param:
                    return "augments (+=) the"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == param and \
                    func.attr in {"fill", "sort", "partition", "put",
                                  "resize", "setflags", "itemset"}:
                return f"calls in-place `.{func.attr}()` on"
            if isinstance(func, ast.Attribute) and func.attr == "copyto" \
                    and node.args and isinstance(node.args[0], ast.Name) \
                    and node.args[0].id == param:
                return "np.copyto()-writes into"
        return None


@rule
class WorkerRuntimeMutationRule(GraphRule):
    """CONC603: no runtime/registry/broker mutation inside workers.

    The telemetry merge covers counters, gauges, histograms, spans and
    events — nothing else.  ``set_runtime`` rebinds the child's process
    default; ``gensym`` advances a per-process counter that diverges
    across workers (breaking dump determinism); ``registry.reset()``
    wipes the snapshot the delta is diffed against; broker produce /
    commit / subscribe mutate the *forked copy* of the log, and the
    parent broker never hears about it.
    """

    id = "CONC603"
    name = "worker-runtime-mutation"
    severity = Severity.ERROR
    description = ("worker mutates runtime/registry/broker state that "
                   "does not merge back to the parent")

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        for site in iter_worker_sites(graph):
            for node in _body_nodes(site.fn_node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = site.def_ctx.resolve(node.func)
                if resolved in RUNTIME_MUTATORS:
                    yield self.found_in(
                        site.def_ctx, node.lineno,
                        f"worker calls `{resolved.rsplit('.', 1)[-1]}()`;"
                        " rebinding the process runtime inside a forked "
                        "worker affects only the child")
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                attr = node.func.attr
                receiver = _receiver_parts(node.func.value)
                if attr == "gensym":
                    yield self.found_in(
                        site.def_ctx, node.lineno,
                        "worker calls `gensym()`; per-process counters "
                        "diverge across workers and break dump "
                        "determinism — derive names from the item key")
                elif attr == "reset" and receiver and \
                        receiver[-1] in {"registry", "runtime", "tracer",
                                         "events"}:
                    yield self.found_in(
                        site.def_ctx, node.lineno,
                        f"worker calls `{'.'.join(receiver)}.reset()`; "
                        "wiping telemetry inside a worker corrupts the "
                        "snapshot-diff merge")
                elif attr in BROKER_MUTATORS and receiver and any(
                        _BROKER_RECEIVERS[0] in part.lower()
                        or part.lower() == _BROKER_RECEIVERS[1]
                        for part in receiver):
                    yield self.found_in(
                        site.def_ctx, node.lineno,
                        f"worker calls `{'.'.join(receiver)}.{attr}()`; "
                        "broker state mutated in a forked worker is "
                        "discarded with the child — produce/commit from "
                        "the parent after results merge")


#: packages whose code runs on the DES clock when an environment is bound
DES_PACKAGES = frozenset({
    "cluster", "fog", "streaming", "compute", "dfs", "nosql", "data",
    "core", "apps", "runtime",
})


@rule
class WallPacingRule(GraphRule):
    """CONC604: ``time.sleep`` must not be reachable from DES-clocked code.

    Simulated time advances by event, not by waiting; a real sleep on a
    DES-clocked path stalls the wall clock without moving the sim clock,
    desynchronizing spans and starving the event loop.  Direct calls are
    flagged in any library module outside the wall-clock home
    (``repro/runtime/core.py``); on top of that, the call graph is
    walked backwards so a DES-layer function that reaches a sleep hidden
    in an exempt (or unflagged) module is caught at its own def site,
    with the call chain as evidence.
    """

    id = "CONC604"
    name = "wall-pacing"
    severity = Severity.ERROR
    description = ("time.sleep() on a DES-clocked path (directly or via "
                   "the call graph)")

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        direct_modules: Set[str] = set()
        for node in graph.library_modules():
            if any(node.ctx.rel_path.endswith(s) for s in CLOCK_HOME):
                continue
            for ast_node in node.ctx.walk():
                if isinstance(ast_node, ast.Call) and \
                        node.ctx.resolve(ast_node.func) == "time.sleep":
                    direct_modules.add(node.name)
                    yield self.found_in(
                        node.ctx, ast_node.lineno,
                        "`time.sleep()` blocks the wall clock; DES "
                        "pacing belongs to the simulation environment "
                        "(hold/timeout), wall pacing to "
                        "repro.runtime.core")
        chains = graph.callers_reaching("time.sleep")
        for key in sorted(chains):
            module_name, qual = key
            node = graph.modules.get(module_name)
            if node is None or not node.is_library or not qual:
                continue
            if node.package not in DES_PACKAGES:
                continue
            chain = chains[key]
            if len(chain) < 2:
                continue          # the direct call is already flagged above
            sleeper = chain[-1][0]
            if sleeper in direct_modules:
                continue          # evidence already reported at the source
            trail = " -> ".join(f"{m}:{q or '<module>'}" for m, q in chain)
            yield self.found_in(
                node.ctx, graph.def_site(key),
                f"{qual} reaches time.sleep() through {trail}; "
                "DES-clocked code must not wall-pace, even indirectly")
