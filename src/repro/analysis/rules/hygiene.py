"""API-hygiene rules (API3xx): signatures that don't lie.

Applied to tests and benchmarks too — hygiene hazards bite everywhere,
not just in library code.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, rule

MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                    ast.ListComp, ast.DictComp, ast.SetComp)
MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "deque",
                     "defaultdict", "Counter", "OrderedDict"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_FACTORIES
    return False


def _annotation_allows_none(annotation: ast.AST) -> bool:
    """True if the annotation already admits ``None``."""
    if annotation is None:
        return True                      # unannotated: nothing to contradict
    if isinstance(annotation, ast.Constant):
        if annotation.value is None:
            return True
        if isinstance(annotation.value, str):   # string annotation
            text = annotation.value
            return "Optional" in text or "None" in text or "Any" in text
    if isinstance(annotation, ast.Name):
        return annotation.id in {"Any", "object", "None"}
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in {"Any", "object"}
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return (_annotation_allows_none(annotation.left)
                or _annotation_allows_none(annotation.right))
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else "")
        if head_name == "Optional":
            return True
        if head_name == "Union":
            elements = annotation.slice
            if isinstance(elements, ast.Tuple):
                return any(_annotation_allows_none(e) for e in elements.elts)
            return _annotation_allows_none(elements)
    return False


def _args_with_defaults(node) -> List:
    """(arg, default) pairs for positional and keyword-only parameters."""
    pairs = []
    positional = node.args.posonlyargs + node.args.args
    defaults = node.args.defaults
    for arg, default in zip(positional[len(positional) - len(defaults):],
                            defaults):
        pairs.append((arg, default))
    for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
        if default is not None:
            pairs.append((arg, default))
    return pairs


@rule
class MutableDefaultRule(Rule):
    """API301: mutable default arguments are shared across calls."""

    id = "API301"
    name = "mutable-default"
    severity = Severity.ERROR
    description = "mutable default argument (shared across calls)"
    library_only = False

    def _check(self, node, ctx: ModuleContext) -> Iterator[Finding]:
        for arg, default in _args_with_defaults(node):
            if _is_mutable_default(default):
                yield self.found(default, ctx,
                                 f"parameter {arg.arg!r} of {node.name!r} "
                                 "has a mutable default evaluated once at "
                                 "def time; default to None and build "
                                 "inside the function")

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check


@rule
class ImplicitOptionalRule(Rule):
    """API302: ``param: T = None`` must be annotated ``Optional[T]``.

    A non-Optional annotation with a ``None`` default misleads callers and
    type checkers alike (e.g. the old ``rng: np.random.Generator = None``
    in ``repro.nn.init``).
    """

    id = "API302"
    name = "implicit-optional"
    severity = Severity.ERROR
    description = "None default with non-Optional annotation"
    library_only = False

    def _check(self, node, ctx: ModuleContext) -> Iterator[Finding]:
        for arg, default in _args_with_defaults(node):
            is_none = isinstance(default, ast.Constant) \
                and default.value is None
            if not is_none or arg.annotation is None:
                continue
            if not _annotation_allows_none(arg.annotation):
                rendered = ast.unparse(arg.annotation)
                yield self.found(arg, ctx,
                                 f"parameter {arg.arg!r} of {node.name!r} "
                                 f"defaults to None but is annotated "
                                 f"{rendered!r}; use Optional[{rendered}]")

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check


@rule
class BrokerInternalsRule(Rule):
    """API303: broker internals stay inside ``repro/streaming/``.

    The broker's log, group, and offset tables (``_topics``, ``_groups``,
    ``_group_offsets``, ``_positions``, ``_segments``) encode invariants —
    committed <= position <= end, assignment consistent with membership —
    that outside writers silently break.  Everything external goes through
    the public surface (``produce``/``consumer``/``lag``/
    ``committed_offset``/``partition_assignment``/...).
    """

    id = "API303"
    name = "broker-internals"
    severity = Severity.ERROR
    description = "direct access to streaming-broker internals"
    library_only = False

    BANNED = frozenset({"_topics", "_groups", "_group_offsets",
                        "_positions", "_segments"})

    def applies(self, ctx: ModuleContext) -> bool:
        # the broker package itself is the one sanctioned home
        return "repro/streaming/" not in ctx.rel_path

    def visit_Attribute(self, node: ast.Attribute,
                        ctx: ModuleContext) -> Iterator[Finding]:
        if node.attr in self.BANNED:
            yield self.found(node, ctx,
                             f"attribute {node.attr!r} is a streaming-broker "
                             "internal; use the public broker API "
                             "(committed_offset/position/lag/"
                             "partition_assignment/topic_names) instead")


@rule
class ServingPathRule(Rule):
    """API304: raw deployment serving calls stay behind ``repro.serving``.

    ``TwoTierDeployment.serve_batched`` / ``serve_streams`` are the bare
    inference surface: no coalescing, no admission control, no rate
    limits, no shedding.  Library code outside ``repro/serving/`` and
    ``repro/fog/`` that calls them directly silently opts the request
    path out of all of that, so it must route through the gateway
    (:class:`repro.serving.ServingGateway` /
    :func:`repro.serving.serve_camera_topic`) instead.  Tests and
    benchmarks may still drive deployments directly — equivalence checks
    against the raw path are exactly their job.
    """

    id = "API304"
    name = "serving-path"
    severity = Severity.ERROR
    description = ("direct TwoTierDeployment serving call outside "
                   "repro/serving/ and repro/fog/")
    library_only = True

    BANNED = frozenset({"serve_batched", "serve_streams"})

    def applies(self, ctx: ModuleContext) -> bool:
        # the serving plane and the fog tier are the sanctioned homes;
        # super() keeps the library_only scoping (tests/benchmarks exempt)
        return (super().applies(ctx)
                and "repro/serving/" not in ctx.rel_path
                and "repro/fog/" not in ctx.rel_path)

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in self.BANNED:
            yield self.found(node, ctx,
                             f"`.{func.attr}()` is the raw deployment "
                             "serving surface; route through repro.serving "
                             "(ServingGateway.submit / serve_camera_topic) "
                             "so admission control and shedding apply")
