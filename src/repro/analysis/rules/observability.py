"""Observability rules (OBS2xx): telemetry stays queryable and exportable.

The ROADMAP mandates ``<layer>.<component>.<metric>`` names so dashboards
can group series by layer; spans must be context-managed so their
durations close; event payloads must be JSON-serializable so
``repro.viz.registry_to_json`` can export any run.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, rule

#: ``<layer>.<component>.<metric>`` — at least three dotted segments
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){2,}$")

METRIC_METHODS = {"counter", "gauge", "histogram"}


def _attr_chain(ctx: ModuleContext, node: ast.AST) -> tuple:
    parts = ctx.dotted_parts(node)
    if parts:
        return parts
    # chains rooted at a call or subscript still yield their attribute tail
    tail = []
    while isinstance(node, ast.Attribute):
        tail.append(node.attr)
        node = node.value
    return tuple(reversed(tail))


def _literal_first_arg(node: ast.Call) -> Optional[str]:
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


@rule
class MetricNameFormatRule(Rule):
    """OBS201: metric and span names follow ``<layer>.<component>.<metric>``."""

    id = "OBS201"
    name = "metric-name-format"
    severity = Severity.ERROR
    description = ("metric/span name must match <layer>.<component>.<metric> "
                   "(lowercase dotted, >= 3 segments)")

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        chain = _attr_chain(ctx, node.func)
        is_metric = method in METRIC_METHODS
        is_span = method == "span" and "tracer" in chain[:-1]
        if not (is_metric or is_span):
            return
        name = _literal_first_arg(node)
        if name is None:       # dynamic names are checked at runtime, not here
            return
        if not NAME_RE.match(name):
            kind = "span" if is_span else "metric"
            yield self.found(node, ctx,
                             f"{kind} name {name!r} does not match "
                             "<layer>.<component>.<metric> (lowercase "
                             "dotted, >= 3 segments)")


@rule
class SpanContextManagerRule(Rule):
    """OBS202: ``tracer.span(...)`` must be entered with ``with``.

    A span only records its end time when its block exits; calling
    ``tracer.span`` without ``with`` leaves an unentered context manager
    and no closed span.
    """

    id = "OBS202"
    name = "span-context-manager"
    severity = Severity.ERROR
    description = "tracer.span(...) used outside a with-statement"

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr != "span":
            return
        chain = _attr_chain(ctx, node.func)
        if "tracer" not in chain[:-1]:
            return
        parent = ctx.parent(node)
        if isinstance(parent, ast.withitem) and parent.context_expr is node:
            return
        yield self.found(node, ctx,
                         "tracer.span(...) must be used as a context "
                         "manager: `with tracer.span(...) as span:`")


UNSERIALIZABLE = (ast.Lambda, ast.Set, ast.SetComp, ast.GeneratorExp)


@rule
class EventPayloadRule(Rule):
    """OBS203: event payloads must be JSON-serializable.

    ``EventLog.dump()`` feeds ``json.dumps``; lambdas, sets, generators,
    and bytes in a payload break every exporter downstream.
    """

    id = "OBS203"
    name = "event-payload-serializable"
    severity = Severity.ERROR
    description = "events.emit(...) payload value is not JSON-serializable"

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr != "emit":
            return
        chain = _attr_chain(ctx, node.func)
        if "events" not in chain[:-1]:
            return
        for keyword in node.keywords:
            value = keyword.value
            bad = isinstance(value, UNSERIALIZABLE) or (
                isinstance(value, ast.Constant)
                and isinstance(value.value, bytes))
            if bad:
                label = keyword.arg or "**payload"
                yield self.found(value, ctx,
                                 f"event payload field {label!r} is not "
                                 "JSON-serializable; pass plain "
                                 "str/int/float/bool/list/dict values")
