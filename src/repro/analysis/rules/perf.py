"""Performance rules (PERF4xx): keep the inference fast path dtype-clean.

The dtype policy lives in :mod:`repro.nn.dtypes`: float64 is the training
default (byte-stable registry dumps), float32 the inference dtype, and ops
must preserve whatever dtype their inputs carry.  A hard-coded
``np.float64`` cast anywhere else silently upcasts float32 activations and
doubles the fast path's memory traffic — these rules ban the construct
outside its sanctioned homes.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, rule

#: modules allowed to name float64 explicitly: the tensor core (default
#: policy enforcement), the optimizer state (always float64 for stable
#: moment accumulation), and the dtype policy itself.
DTYPE_HOMES = (
    "repro/nn/tensor.py",
    "repro/nn/optim.py",
    "repro/nn/dtypes.py",
)

#: numpy constructors whose ``dtype=`` argument the rule inspects.
_CAST_CONSTRUCTORS = {
    "numpy.asarray", "numpy.array", "numpy.zeros", "numpy.ones",
    "numpy.full", "numpy.empty", "numpy.zeros_like", "numpy.ones_like",
    "numpy.full_like", "numpy.empty_like", "numpy.arange", "numpy.linspace",
}


def _resolves_to_float64(node: Optional[ast.AST],
                         ctx: ModuleContext) -> bool:
    if node is None:
        return False
    resolved = ctx.resolve(node)
    if resolved == "numpy.float64":
        return True
    return isinstance(node, ast.Constant) and node.value == "float64"


@rule
class HardcodedFloat64Rule(Rule):
    """PERF401: no hard-coded float64 casts outside the dtype policy homes.

    ``np.asarray(x, dtype=np.float64)`` and ``x.astype(np.float64)``
    override the configured dtype and upcast float32 inference data back
    to float64.  Use :func:`repro.nn.dtypes.ensure_float` (respects the
    default-dtype policy and preserves float32/float64 inputs) or cast to
    the companion array's ``.dtype`` instead.
    """

    id = "PERF401"
    name = "hardcoded-float64"
    severity = Severity.ERROR
    description = ("hard-coded float64 cast outside repro.nn dtype-policy "
                   "homes; use repro.nn.dtypes.ensure_float(...) or the "
                   "input's own dtype")
    exempt_suffixes = DTYPE_HOMES

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved in _CAST_CONSTRUCTORS:
            dtype_arg = next((kw.value for kw in node.keywords
                              if kw.arg == "dtype"), None)
            if dtype_arg is None and len(node.args) >= 2 \
                    and resolved in {"numpy.asarray", "numpy.array"}:
                dtype_arg = node.args[1]
            if _resolves_to_float64(dtype_arg, ctx):
                short = resolved.replace("numpy.", "np.")
                yield self.found(node, ctx,
                                 f"`{short}(..., dtype=np.float64)` "
                                 "overrides the dtype policy; use "
                                 "ensure_float(...) or the input's dtype")
            return
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            dtype_arg = node.args[0] if node.args else next(
                (kw.value for kw in node.keywords if kw.arg == "dtype"), None)
            if _resolves_to_float64(dtype_arg, ctx):
                yield self.found(node, ctx,
                                 "`.astype(np.float64)` upcasts float32 "
                                 "inference data; use ensure_float(...) or "
                                 "the companion array's dtype")


#: the one sanctioned home for process/thread pool construction
POOL_HOME = ("repro/runtime/parallel.py",)

#: pool/worker constructors whose direct use bypasses the execution engine
_POOL_CONSTRUCTORS = {
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.pool.ThreadPool",
    "multiprocessing.dummy.Pool",
    "multiprocessing.Process",
    "multiprocessing.get_context",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
}


@rule
class DirectPoolConstructionRule(Rule):
    """PERF402: no ad-hoc worker pools outside the parallel engine.

    A pool built outside :mod:`repro.runtime.parallel` loses everything
    the engine guarantees: submission-order results, worker telemetry
    merged back into the runtime registry, shared-memory transport, the
    serial fallback, and the dump-determinism contract the worker-sweep
    property tests enforce.  Route fan-out through
    ``ParallelExecutor.map_ordered`` instead.
    """

    id = "PERF402"
    name = "direct-pool-construction"
    severity = Severity.ERROR
    description = ("process/thread pool constructed outside "
                   "repro.runtime.parallel; use "
                   "ParallelExecutor.map_ordered")
    exempt_suffixes = POOL_HOME

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved in _POOL_CONSTRUCTORS:
            short = resolved.split(".")[-1]
            yield self.found(node, ctx,
                             f"`{short}(...)` builds workers outside the "
                             "parallel engine; use repro.runtime.parallel."
                             "ParallelExecutor.map_ordered (ordered "
                             "results, merged telemetry, serial fallback)")


#: numpy constructors that allocate a fresh array
_ALLOC_CONSTRUCTORS = {
    "numpy.empty", "numpy.zeros", "numpy.ones", "numpy.full",
    "numpy.empty_like", "numpy.zeros_like", "numpy.ones_like",
    "numpy.full_like",
}

#: hot-path method names whose bodies must not allocate
_HOT_METHODS = ("run", "execute")

#: class-name suffixes marking plan-executor hot paths
_HOT_CLASS_SUFFIXES = ("Op", "Plan")


@rule
class PlanHotPathAllocationRule(Rule):
    """PERF403: no fresh array allocation in plan-executor hot paths.

    The whole point of a captured plan (:mod:`repro.nn.plan`) is that
    executing it touches only arena-owned buffers: every ``run`` is a
    straight line of ``out=``-style NumPy calls.  An ``np.empty`` /
    ``np.zeros`` inside an op's ``run`` silently reintroduces the per-call
    allocation churn the plan was built to remove — and it compounds,
    because plans execute per micro-batch on the serving fast path.
    Allocate at capture/bind time instead, and keep ``run`` allocation-
    free.  Capture-time probes that genuinely need a scratch array carry
    ``# repro: noqa[PERF403]``.
    """

    id = "PERF403"
    name = "plan-hot-path-allocation"
    severity = Severity.ERROR
    description = ("fresh numpy array allocated inside a plan-executor "
                   "run/execute method; allocate at bind time into the "
                   "arena instead")

    def _enclosing_hot_path(self, node: ast.AST,
                            ctx: ModuleContext) -> Optional[str]:
        """'Class.method' when ``node`` sits in an Op/Plan run body.

        Closures defined inside ``run`` count as the run body — they
        execute per run just the same — so any enclosing function named
        ``run``/``execute`` under a matching class qualifies.
        """
        methods = []
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(current.name)
            elif isinstance(current, ast.ClassDef):
                if not current.name.endswith(_HOT_CLASS_SUFFIXES):
                    return None
                for name in methods:
                    if name in _HOT_METHODS:
                        return f"{current.name}.{name}"
                return None
            current = ctx.parent(current)
        return None

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved not in _ALLOC_CONSTRUCTORS:
            return
        hot_path = self._enclosing_hot_path(node, ctx)
        if hot_path is None:
            return
        short = resolved.replace("numpy.", "np.")
        yield self.found(node, ctx,
                         f"`{short}(...)` allocates inside `{hot_path}` — a "
                         "plan-executor hot path; bind an arena buffer once "
                         "and reuse it (`out=`/in-place ops) instead")


#: metric-write methods whose labeled form re-resolves the series key
_METRIC_WRITE_METHODS = {"inc", "observe", "set", "dec"}

#: loop target/iterable names that mark a per-record/per-frame hot loop
_RECORD_LOOP_NAME = re.compile(
    r"record|frame|event|row|item|batch|sample|value|msg|message",
    re.IGNORECASE)

#: data-plane packages where per-record labeled metric calls are banned
_DATA_PLANE_PACKAGES = ("repro/streaming/", "repro/serving/", "repro/fog/")


def _loop_names(node: ast.AST) -> Set[str]:
    """Every bare name and attribute suffix mentioned in a loop header."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


@rule
class LabeledMetricInRecordLoopRule(Rule):
    """PERF404: no labeled metric writes inside per-record data-plane loops.

    ``counter.inc(..., topic=name)`` validates labels, sorts them, and
    rebuilds the series key string on *every* call — fine once per batch,
    ruinous once per record.  Inside a ``for`` loop over records, frames
    or events in the streaming/serving/fog data plane, the fix is a bound
    handle hoisted out of the loop::

        produced = counter.bind(topic=name)
        for record in batch:
            produced.inc()            # one dict write, no key rebuild

    Labels that *vary with the loop variable* (``tenant=pending.tenant``)
    cannot be hoisted, so those calls are exempt; so is anything outside
    ``repro/streaming/``, ``repro/serving/`` and ``repro/fog/``.
    """

    id = "PERF404"
    name = "labeled-metric-in-record-loop"
    severity = Severity.ERROR
    description = ("labeled metric call inside a per-record loop on the "
                   "data plane; bind(...) a handle outside the loop and "
                   "write through it")

    def _enclosing_record_loop(self, node: ast.AST,
                               ctx: ModuleContext) -> Optional[ast.AST]:
        """The nearest enclosing for-loop iterating records/frames/events.

        The walk stops at the enclosing function boundary: a loop in an
        outer function does not make a nested helper's body hot.
        """
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                return None
            if isinstance(current, (ast.For, ast.AsyncFor)):
                header_names = (_loop_names(current.target)
                                | _loop_names(current.iter))
                if any(_RECORD_LOOP_NAME.search(name)
                       for name in header_names):
                    return current
            current = ctx.parent(current)
        return None

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        rel_path = ctx.rel_path.replace("\\", "/")
        if not any(package in rel_path for package in _DATA_PLANE_PACKAGES):
            return
        func = node.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in _METRIC_WRITE_METHODS:
            return
        labels = [kw for kw in node.keywords if kw.arg is not None]
        if not labels:
            return
        loop = self._enclosing_record_loop(node, ctx)
        if loop is None:
            return
        targets = _loop_names(loop.target)
        for keyword in labels:
            if any(isinstance(child, ast.Name) and child.id in targets
                   for child in ast.walk(keyword.value)):
                # per-iteration labels cannot be pre-bound
                return
        label_names = ", ".join(kw.arg for kw in labels)
        yield self.found(node, ctx,
                         f"`.{func.attr}(..., {label_names}=...)` re-resolves "
                         "its series key on every loop iteration; hoist "
                         "`metric.bind(...)` out of the record loop and call "
                         "the handle instead")
