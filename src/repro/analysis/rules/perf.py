"""Performance rules (PERF4xx): keep the inference fast path dtype-clean.

The dtype policy lives in :mod:`repro.nn.dtypes`: float64 is the training
default (byte-stable registry dumps), float32 the inference dtype, and ops
must preserve whatever dtype their inputs carry.  A hard-coded
``np.float64`` cast anywhere else silently upcasts float32 activations and
doubles the fast path's memory traffic — these rules ban the construct
outside its sanctioned homes.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, rule

#: modules allowed to name float64 explicitly: the tensor core (default
#: policy enforcement), the optimizer state (always float64 for stable
#: moment accumulation), and the dtype policy itself.
DTYPE_HOMES = (
    "repro/nn/tensor.py",
    "repro/nn/optim.py",
    "repro/nn/dtypes.py",
)

#: numpy constructors whose ``dtype=`` argument the rule inspects.
_CAST_CONSTRUCTORS = {
    "numpy.asarray", "numpy.array", "numpy.zeros", "numpy.ones",
    "numpy.full", "numpy.empty", "numpy.zeros_like", "numpy.ones_like",
    "numpy.full_like", "numpy.empty_like", "numpy.arange", "numpy.linspace",
}


def _resolves_to_float64(node: Optional[ast.AST],
                         ctx: ModuleContext) -> bool:
    if node is None:
        return False
    resolved = ctx.resolve(node)
    if resolved == "numpy.float64":
        return True
    return isinstance(node, ast.Constant) and node.value == "float64"


@rule
class HardcodedFloat64Rule(Rule):
    """PERF401: no hard-coded float64 casts outside the dtype policy homes.

    ``np.asarray(x, dtype=np.float64)`` and ``x.astype(np.float64)``
    override the configured dtype and upcast float32 inference data back
    to float64.  Use :func:`repro.nn.dtypes.ensure_float` (respects the
    default-dtype policy and preserves float32/float64 inputs) or cast to
    the companion array's ``.dtype`` instead.
    """

    id = "PERF401"
    name = "hardcoded-float64"
    severity = Severity.ERROR
    description = ("hard-coded float64 cast outside repro.nn dtype-policy "
                   "homes; use repro.nn.dtypes.ensure_float(...) or the "
                   "input's own dtype")
    exempt_suffixes = DTYPE_HOMES

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved in _CAST_CONSTRUCTORS:
            dtype_arg = next((kw.value for kw in node.keywords
                              if kw.arg == "dtype"), None)
            if dtype_arg is None and len(node.args) >= 2 \
                    and resolved in {"numpy.asarray", "numpy.array"}:
                dtype_arg = node.args[1]
            if _resolves_to_float64(dtype_arg, ctx):
                short = resolved.replace("numpy.", "np.")
                yield self.found(node, ctx,
                                 f"`{short}(..., dtype=np.float64)` "
                                 "overrides the dtype policy; use "
                                 "ensure_float(...) or the input's dtype")
            return
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            dtype_arg = node.args[0] if node.args else next(
                (kw.value for kw in node.keywords if kw.arg == "dtype"), None)
            if _resolves_to_float64(dtype_arg, ctx):
                yield self.found(node, ctx,
                                 "`.astype(np.float64)` upcasts float32 "
                                 "inference data; use ensure_float(...) or "
                                 "the companion array's dtype")


#: the one sanctioned home for process/thread pool construction
POOL_HOME = ("repro/runtime/parallel.py",)

#: pool/worker constructors whose direct use bypasses the execution engine
_POOL_CONSTRUCTORS = {
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.pool.ThreadPool",
    "multiprocessing.dummy.Pool",
    "multiprocessing.Process",
    "multiprocessing.get_context",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
}


@rule
class DirectPoolConstructionRule(Rule):
    """PERF402: no ad-hoc worker pools outside the parallel engine.

    A pool built outside :mod:`repro.runtime.parallel` loses everything
    the engine guarantees: submission-order results, worker telemetry
    merged back into the runtime registry, shared-memory transport, the
    serial fallback, and the dump-determinism contract the worker-sweep
    property tests enforce.  Route fan-out through
    ``ParallelExecutor.map_ordered`` instead.
    """

    id = "PERF402"
    name = "direct-pool-construction"
    severity = Severity.ERROR
    description = ("process/thread pool constructed outside "
                   "repro.runtime.parallel; use "
                   "ParallelExecutor.map_ordered")
    exempt_suffixes = POOL_HOME

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved in _POOL_CONSTRUCTORS:
            short = resolved.split(".")[-1]
            yield self.found(node, ctx,
                             f"`{short}(...)` builds workers outside the "
                             "parallel engine; use repro.runtime.parallel."
                             "ParallelExecutor.map_ordered (ordered "
                             "results, merged telemetry, serial fallback)")


#: numpy constructors that allocate a fresh array
_ALLOC_CONSTRUCTORS = {
    "numpy.empty", "numpy.zeros", "numpy.ones", "numpy.full",
    "numpy.empty_like", "numpy.zeros_like", "numpy.ones_like",
    "numpy.full_like",
}

#: hot-path method names whose bodies must not allocate
_HOT_METHODS = ("run", "execute")

#: class-name suffixes marking plan-executor hot paths
_HOT_CLASS_SUFFIXES = ("Op", "Plan")


@rule
class PlanHotPathAllocationRule(Rule):
    """PERF403: no fresh array allocation in plan-executor hot paths.

    The whole point of a captured plan (:mod:`repro.nn.plan`) is that
    executing it touches only arena-owned buffers: every ``run`` is a
    straight line of ``out=``-style NumPy calls.  An ``np.empty`` /
    ``np.zeros`` inside an op's ``run`` silently reintroduces the per-call
    allocation churn the plan was built to remove — and it compounds,
    because plans execute per micro-batch on the serving fast path.
    Allocate at capture/bind time instead, and keep ``run`` allocation-
    free.  Capture-time probes that genuinely need a scratch array carry
    ``# repro: noqa[PERF403]``.
    """

    id = "PERF403"
    name = "plan-hot-path-allocation"
    severity = Severity.ERROR
    description = ("fresh numpy array allocated inside a plan-executor "
                   "run/execute method; allocate at bind time into the "
                   "arena instead")

    def _enclosing_hot_path(self, node: ast.AST,
                            ctx: ModuleContext) -> Optional[str]:
        """'Class.method' when ``node`` sits in an Op/Plan run body.

        Closures defined inside ``run`` count as the run body — they
        execute per run just the same — so any enclosing function named
        ``run``/``execute`` under a matching class qualifies.
        """
        methods = []
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(current.name)
            elif isinstance(current, ast.ClassDef):
                if not current.name.endswith(_HOT_CLASS_SUFFIXES):
                    return None
                for name in methods:
                    if name in _HOT_METHODS:
                        return f"{current.name}.{name}"
                return None
            current = ctx.parent(current)
        return None

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved not in _ALLOC_CONSTRUCTORS:
            return
        hot_path = self._enclosing_hot_path(node, ctx)
        if hot_path is None:
            return
        short = resolved.replace("numpy.", "np.")
        yield self.found(node, ctx,
                         f"`{short}(...)` allocates inside `{hot_path}` — a "
                         "plan-executor hot path; bind an arena buffer once "
                         "and reuse it (`out=`/in-place ops) instead")
