"""Built-in rule packs; importing a pack registers its rules."""

from repro.analysis.rules import determinism, hygiene, observability, perf

__all__ = ["determinism", "hygiene", "observability", "perf"]
