"""Architecture rules (ARCH5xx): the layer map, checked with real edges.

The paper's cyberinfrastructure is layered — ingestion feeds storage,
storage feeds compute, compute feeds fog inference, applications sit on
top — and this reproduction mirrors that shape in its package graph.
:data:`LAYERS` is the declarative map; the rules below enforce it with
*resolved import edges* from the :class:`~repro.analysis.graph.
ProjectGraph` rather than string matching, which is what lets them see
``from repro.fog import pipeline`` and ``import repro.fog.pipeline`` as
the same edge and attribute ``from repro.nn import functional`` to the
submodule instead of the package ``__init__``.

Layer numbers grow upward; a package may import its own layer or below,
never above.  ``repro.analysis`` sits outside the map entirely: it must
stay standard-library-only at import time so the lint can run before the
scientific stack is installed (deferred, ``ImportError``-gated imports —
the engine's optional ``ParallelExecutor`` fan-out — are the sanctioned
escape and are exempt by design).
"""

from __future__ import annotations

import sys
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import Finding, GraphRule, Severity, rule

#: the declarative layer map: bottom (0) may be imported by everything,
#: top imports freely.  Additions to ``src/repro`` must be registered
#: here (ARCH505 flags unplaced packages).
LAYERS: Dict[str, int] = {
    "runtime": 0,
    "nn": 1,
    "viz": 1,
    "streaming": 2,
    "compute": 2,
    "dfs": 2,
    "nosql": 2,
    "data": 2,
    "cluster": 3,
    "fog": 3,
    "apps": 4,
    "core": 4,
    "serving": 4,
}

#: packages deliberately outside the layered stack
UNLAYERED = frozenset({"analysis"})

#: the self-imposed import discipline of the analyzer package
ANALYSIS_PACKAGE = "repro.analysis"


def _target_package(target: str) -> Optional[str]:
    parts = target.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


@rule
class UpwardImportRule(GraphRule):
    """ARCH501: no package imports a layer above its own.

    ``runtime`` -> ``nn``/``viz`` -> {``streaming``, ``compute``,
    ``dfs``, ``nosql``, ``data``} -> {``cluster``, ``fog``} ->
    {``apps``, ``core``}.  An upward import inverts the dependency
    arrow the whole stack is built on — e.g. the runtime reaching into
    the fog layer would make the observability substrate depend on one
    of its own consumers.
    """

    id = "ARCH501"
    name = "upward-import"
    severity = Severity.ERROR
    description = ("import from a higher architecture layer "
                   "(see the LAYERS map)")

    def check(self, graph) -> Iterator[Finding]:
        for node in graph.library_modules():
            layer = LAYERS.get(node.package or "")
            if layer is None:
                continue
            for edge in node.imports:
                package = _target_package(edge.target)
                if package is None or package == node.package:
                    continue
                target_layer = LAYERS.get(package)
                if target_layer is not None and target_layer > layer:
                    yield self.found_in(
                        node.ctx, edge.lineno,
                        f"{node.name} (layer {layer}: {node.package!r}) "
                        f"imports {edge.target} (layer {target_layer}: "
                        f"{package!r}); dependencies must point down "
                        "the stack")


@rule
class ImportCycleRule(GraphRule):
    """ARCH502: no import cycles among project modules.

    Cycles are computed over *top-level* edges (Tarjan SCC): a deferred
    function-level import is the sanctioned way to break a genuine
    back-reference, so it does not count as a cycle edge.
    """

    id = "ARCH502"
    name = "import-cycle"
    severity = Severity.ERROR
    description = "top-level import cycle between project modules"

    def check(self, graph) -> Iterator[Finding]:
        for cycle in graph.import_cycles():
            members = set(cycle)
            anchor = graph.modules[cycle[0]]
            lineno = 1
            for edge in anchor.imports:
                if edge.toplevel and edge.target in members:
                    lineno = edge.lineno
                    break
            chain = " -> ".join(cycle + [cycle[0]])
            yield self.found_in(
                anchor.ctx, lineno,
                f"import cycle: {chain}; break it by inverting the "
                "weaker dependency or deferring one import into the "
                "function that needs it")


@rule
class AnalysisStdlibOnlyRule(GraphRule):
    """ARCH503: ``repro.analysis`` imports only the standard library.

    The linter must be runnable before numpy/scipy are installed (CI
    runs it in a bare interpreter) and must never depend on the code it
    judges.  Only *top-level* imports are checked: the engine's optional
    ``ParallelExecutor`` fan-out is imported lazily behind an
    ``ImportError`` gate, which keeps the cold-start contract intact.
    """

    id = "ARCH503"
    name = "analysis-stdlib-only"
    severity = Severity.ERROR
    description = ("repro.analysis must only import the stdlib and "
                   "itself at module top level")

    def check(self, graph) -> Iterator[Finding]:
        for node in graph.library_modules():
            name = node.name
            if not (name == ANALYSIS_PACKAGE
                    or name.startswith(ANALYSIS_PACKAGE + ".")):
                continue
            for edge in node.imports:
                if not edge.toplevel:
                    continue
                root = edge.target.split(".")[0]
                if root in sys.stdlib_module_names:
                    continue
                if edge.target == ANALYSIS_PACKAGE or \
                        edge.target.startswith(ANALYSIS_PACKAGE + "."):
                    continue
                yield self.found_in(
                    node.ctx, edge.lineno,
                    f"{name} imports {edge.target} at top level; the "
                    "analyzer stays stdlib-only so it can lint a tree "
                    "whose dependencies are not installed (defer the "
                    "import behind an ImportError gate if it is "
                    "genuinely optional)")


@rule
class PrivateCrossImportRule(GraphRule):
    """ARCH504: no importing another package's underscore symbols.

    ``from repro.streaming.broker import _compact`` couples the importer
    to an implementation detail the owning package is free to change —
    the import-graph generalization of the API303 broker-internals ban.
    Same-package imports are fine (that is what the underscore scopes
    to); tests are exempt (they may probe internals deliberately).
    """

    id = "ARCH504"
    name = "private-cross-import"
    severity = Severity.ERROR
    description = ("underscore-private symbol imported across a package "
                   "boundary")

    def check(self, graph) -> Iterator[Finding]:
        for node in graph.library_modules():
            for edge in node.imports:
                if edge.symbol is None or not edge.symbol.startswith("_") \
                        or edge.symbol.startswith("__"):
                    continue
                package = _target_package(edge.target)
                if package is None or package == node.package:
                    continue
                yield self.found_in(
                    node.ctx, edge.lineno,
                    f"{node.name} imports private symbol "
                    f"{edge.symbol!r} from {edge.target}; use (or add) "
                    "a public API on the owning package")


@rule
class UnplacedPackageRule(GraphRule):
    """ARCH505: every library package declares its layer.

    A new ``src/repro/<pkg>`` that is neither in :data:`LAYERS` nor
    :data:`UNLAYERED` is invisible to ARCH501 — this warning is the
    forcing function to place it before its import habits calcify.
    Bare modules directly under ``repro/`` are not packages and are not
    flagged.
    """

    id = "ARCH505"
    name = "unplaced-package"
    severity = Severity.WARNING
    description = "library package missing from the architecture layer map"

    def check(self, graph) -> Iterator[Finding]:
        flagged = set()
        for node in graph.library_modules():
            package = node.package
            if package is None or package in LAYERS \
                    or package in UNLAYERED or package in flagged:
                continue
            is_dir_package = node.name.count(".") >= 2 or \
                node.ctx.rel_path.endswith("__init__.py")
            if not is_dir_package:
                continue
            flagged.add(package)
            yield self.found_in(
                node.ctx, 1,
                f"package {package!r} is not in the architecture layer "
                "map; add it to repro.analysis.rules.architecture.LAYERS "
                "(or UNLAYERED) so ARCH501 can see it")
