"""Determinism rules (DET1xx): randomness and clocks stay in the runtime.

Identically-seeded runs are byte-identical only while every random draw
derives from :class:`repro.runtime.rng.RngContext` and every timestamp
comes from the runtime clock.  These rules ban the escape hatches:
module-level ``random``, ad-hoc ``np.random.default_rng(...)`` streams,
direct wall-clock reads, boolean-``or`` RNG fallbacks, and set-iteration
order leaking into results (string hashes — hence set order — vary per
process unless ``PYTHONHASHSEED`` is pinned).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, rule

#: the one module allowed to construct raw generators
RNG_HOME = ("repro/runtime/rng.py",)
#: the one module allowed to read the wall clock
CLOCK_HOME = ("repro/runtime/core.py",)

WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}


@rule
class BareRandomRule(Rule):
    """DET101: the stdlib ``random`` module is off limits outside the runtime.

    ``runtime.rng.child("<layer>.<component>")`` gives the same API
    (a ``random.Random``) with a seed derived from the run's root seed.
    """

    id = "DET101"
    name = "bare-random"
    severity = Severity.ERROR
    description = ("stdlib `random` used outside repro.runtime.rng; draw from "
                   "runtime.rng.child(...) instead")
    exempt_suffixes = RNG_HOME

    def visit_Import(self, node: ast.Import,
                     ctx: ModuleContext) -> Iterator[Finding]:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                yield self.found(node, ctx,
                                 "import of stdlib `random`; use "
                                 "runtime.rng.child(...) streams instead")

    def visit_ImportFrom(self, node: ast.ImportFrom,
                         ctx: ModuleContext) -> Iterator[Finding]:
        if node.level == 0 and node.module == "random":
            yield self.found(node, ctx,
                             "import from stdlib `random`; use "
                             "runtime.rng.child(...) streams instead")

    def visit_Attribute(self, node: ast.Attribute,
                        ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node)
        if resolved and resolved.startswith("random."):
            yield self.found(node, ctx,
                             f"`{resolved}` bypasses the runtime RNG; use "
                             "runtime.rng.child(...) instead")


@rule
class NumpyGlobalRngRule(Rule):
    """DET102: no ad-hoc numpy generators outside ``repro.runtime.rng``.

    ``np.random.default_rng(seed)`` creates a stream whose identity is
    invisible to the runtime; ``runtime.rng.np_child(scope, seed)`` gives
    a collision-resistant stream derived from the run's root seed.
    """

    id = "DET102"
    name = "numpy-global-rng"
    severity = Severity.ERROR
    description = ("numpy.random constructor/global used outside "
                   "repro.runtime.rng; use runtime.rng.np_child(...) or "
                   "resolve_rng(...)")
    exempt_suffixes = RNG_HOME

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved and resolved.startswith("numpy.random."):
            yield self.found(node, ctx,
                             f"call to `{resolved}` outside repro.runtime.rng;"
                             " use runtime.rng.np_child(...) / resolve_rng(...)"
                             " so the stream derives from the run seed")


@rule
class RngOrFallbackRule(Rule):
    """DET103: no boolean-``or`` fallbacks on RNG parameters.

    ``rng or <default>`` silently replaces a falsy-but-valid argument and
    hides the default stream from the runtime; use
    ``repro.runtime.rng.resolve_rng(rng, "<layer>.<component>")``, which
    tests ``is None`` and derives the fallback from the run seed.
    """

    id = "DET103"
    name = "rng-or-fallback"
    severity = Severity.ERROR
    description = ("implicit `rng or <default>` fallback; use "
                   "repro.runtime.rng.resolve_rng(rng, scope)")

    def visit_BoolOp(self, node: ast.BoolOp,
                     ctx: ModuleContext) -> Iterator[Finding]:
        if not isinstance(node.op, ast.Or) or not node.values:
            return
        first = node.values[0]
        if isinstance(first, ast.Name) and (
                first.id == "rng" or first.id.endswith("_rng")
                or first.id == "random_state"):
            yield self.found(node, ctx,
                             f"`{first.id} or ...` hides the fallback stream; "
                             "use resolve_rng(rng, \"<layer>.<component>\")")


@rule
class WallClockRule(Rule):
    """DET104: wall-clock reads live in ``repro.runtime.core`` only.

    Everything else asks the runtime (``runtime.now()``), which reports
    virtual time while a DES environment is bound — the wall/sim clock
    split that makes simulated runs replayable.
    """

    id = "DET104"
    name = "wall-clock"
    severity = Severity.ERROR
    description = ("direct wall-clock read outside repro.runtime.core; use "
                   "runtime.now()")
    exempt_suffixes = CLOCK_HOME

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved in WALL_CLOCK_CALLS:
            yield self.found(node, ctx,
                             f"`{resolved}()` reads the wall clock directly; "
                             "use runtime.now() so DES runs stay replayable")


def _is_set_like(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


@rule
class SetIterationOrderRule(Rule):
    """DET105: don't let set iteration order reach ordered results.

    String hashing is randomized per process, so iterating a set of
    strings yields a different order in every run unless
    ``PYTHONHASHSEED`` is pinned.  Materializing that order (``list(set)``)
    or looping over a set expression leaks it into results and dumps;
    wrap the set in ``sorted(...)`` first.
    """

    id = "DET105"
    name = "set-iteration-order"
    severity = Severity.ERROR
    description = ("iteration over a set expression leaks hash order; wrap "
                   "in sorted(...)")

    def visit_For(self, node: ast.For,
                  ctx: ModuleContext) -> Iterator[Finding]:
        if _is_set_like(node.iter):
            yield self.found(node, ctx,
                             "for-loop over a set expression has "
                             "process-dependent order; iterate "
                             "sorted(...) instead")

    def _comprehension_findings(self, node, ctx) -> Iterator[Finding]:
        for gen in node.generators:
            if _is_set_like(gen.iter):
                yield self.found(node, ctx,
                                 "comprehension over a set expression has "
                                 "process-dependent order; iterate "
                                 "sorted(...) instead")

    visit_ListComp = _comprehension_findings
    visit_DictComp = _comprehension_findings
    visit_GeneratorExp = _comprehension_findings

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        if (isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple"}
                and len(node.args) == 1 and _is_set_like(node.args[0])):
            yield self.found(node, ctx,
                             f"{node.func.id}(<set>) materializes "
                             "process-dependent order; use sorted(...) "
                             "instead")
