"""Determinism rules (DET1xx): randomness and clocks stay in the runtime.

Identically-seeded runs are byte-identical only while every random draw
derives from :class:`repro.runtime.rng.RngContext` and every timestamp
comes from the runtime clock.  These rules ban the escape hatches:
module-level ``random``, ad-hoc ``np.random.default_rng(...)`` streams,
direct wall-clock reads, boolean-``or`` RNG fallbacks, and set-iteration
order leaking into results (string hashes — hence set order — vary per
process unless ``PYTHONHASHSEED`` is pinned).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, rule
from repro.analysis.dataflow import (expression_tainted, iter_scopes,
                                     scope_nodes, tainted_names)

#: the one module allowed to construct raw generators
RNG_HOME = ("repro/runtime/rng.py",)
#: the one module allowed to read the wall clock
CLOCK_HOME = ("repro/runtime/core.py",)

WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}


@rule
class BareRandomRule(Rule):
    """DET101: the stdlib ``random`` module is off limits outside the runtime.

    ``runtime.rng.child("<layer>.<component>")`` gives the same API
    (a ``random.Random``) with a seed derived from the run's root seed.
    """

    id = "DET101"
    name = "bare-random"
    severity = Severity.ERROR
    description = ("stdlib `random` used outside repro.runtime.rng; draw from "
                   "runtime.rng.child(...) instead")
    exempt_suffixes = RNG_HOME

    def visit_Import(self, node: ast.Import,
                     ctx: ModuleContext) -> Iterator[Finding]:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                yield self.found(node, ctx,
                                 "import of stdlib `random`; use "
                                 "runtime.rng.child(...) streams instead")

    def visit_ImportFrom(self, node: ast.ImportFrom,
                         ctx: ModuleContext) -> Iterator[Finding]:
        if node.level == 0 and node.module == "random":
            yield self.found(node, ctx,
                             "import from stdlib `random`; use "
                             "runtime.rng.child(...) streams instead")

    def visit_Attribute(self, node: ast.Attribute,
                        ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node)
        if resolved and resolved.startswith("random."):
            yield self.found(node, ctx,
                             f"`{resolved}` bypasses the runtime RNG; use "
                             "runtime.rng.child(...) instead")


@rule
class NumpyGlobalRngRule(Rule):
    """DET102: no ad-hoc numpy generators outside ``repro.runtime.rng``.

    ``np.random.default_rng(seed)`` creates a stream whose identity is
    invisible to the runtime; ``runtime.rng.np_child(scope, seed)`` gives
    a collision-resistant stream derived from the run's root seed.
    """

    id = "DET102"
    name = "numpy-global-rng"
    severity = Severity.ERROR
    description = ("numpy.random constructor/global used outside "
                   "repro.runtime.rng; use runtime.rng.np_child(...) or "
                   "resolve_rng(...)")
    exempt_suffixes = RNG_HOME

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved and resolved.startswith("numpy.random."):
            yield self.found(node, ctx,
                             f"call to `{resolved}` outside repro.runtime.rng;"
                             " use runtime.rng.np_child(...) / resolve_rng(...)"
                             " so the stream derives from the run seed")


@rule
class RngOrFallbackRule(Rule):
    """DET103: no boolean-``or`` fallbacks on RNG parameters.

    ``rng or <default>`` silently replaces a falsy-but-valid argument and
    hides the default stream from the runtime; use
    ``repro.runtime.rng.resolve_rng(rng, "<layer>.<component>")``, which
    tests ``is None`` and derives the fallback from the run seed.
    """

    id = "DET103"
    name = "rng-or-fallback"
    severity = Severity.ERROR
    description = ("implicit `rng or <default>` fallback; use "
                   "repro.runtime.rng.resolve_rng(rng, scope)")

    def visit_BoolOp(self, node: ast.BoolOp,
                     ctx: ModuleContext) -> Iterator[Finding]:
        if not isinstance(node.op, ast.Or) or not node.values:
            return
        first = node.values[0]
        if isinstance(first, ast.Name) and (
                first.id == "rng" or first.id.endswith("_rng")
                or first.id == "random_state"):
            yield self.found(node, ctx,
                             f"`{first.id} or ...` hides the fallback stream; "
                             "use resolve_rng(rng, \"<layer>.<component>\")")


@rule
class WallClockRule(Rule):
    """DET104: wall-clock reads live in ``repro.runtime.core`` only.

    Everything else asks the runtime (``runtime.now()``), which reports
    virtual time while a DES environment is bound — the wall/sim clock
    split that makes simulated runs replayable.
    """

    id = "DET104"
    name = "wall-clock"
    severity = Severity.ERROR
    description = ("direct wall-clock read outside repro.runtime.core; use "
                   "runtime.now()")
    exempt_suffixes = CLOCK_HOME

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        resolved = ctx.resolve(node.func)
        if resolved in WALL_CLOCK_CALLS:
            yield self.found(node, ctx,
                             f"`{resolved}()` reads the wall clock directly; "
                             "use runtime.now() so DES runs stay replayable")


def _is_set_like(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


@rule
class SetIterationOrderRule(Rule):
    """DET105: don't let set iteration order reach ordered results.

    String hashing is randomized per process, so iterating a set of
    strings yields a different order in every run unless
    ``PYTHONHASHSEED`` is pinned.  Materializing that order (``list(set)``)
    or looping over a set expression leaks it into results and dumps;
    wrap the set in ``sorted(...)`` first.
    """

    id = "DET105"
    name = "set-iteration-order"
    severity = Severity.ERROR
    description = ("iteration over a set expression leaks hash order; wrap "
                   "in sorted(...)")

    def visit_For(self, node: ast.For,
                  ctx: ModuleContext) -> Iterator[Finding]:
        if _is_set_like(node.iter):
            yield self.found(node, ctx,
                             "for-loop over a set expression has "
                             "process-dependent order; iterate "
                             "sorted(...) instead")

    def _comprehension_findings(self, node, ctx) -> Iterator[Finding]:
        for gen in node.generators:
            if _is_set_like(gen.iter):
                yield self.found(node, ctx,
                                 "comprehension over a set expression has "
                                 "process-dependent order; iterate "
                                 "sorted(...) instead")

    visit_ListComp = _comprehension_findings
    visit_DictComp = _comprehension_findings
    visit_GeneratorExp = _comprehension_findings

    def visit_Call(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        if (isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple"}
                and len(node.args) == 1 and _is_set_like(node.args[0])):
            yield self.found(node, ctx,
                             f"{node.func.id}(<set>) materializes "
                             "process-dependent order; use sorted(...) "
                             "instead")


#: rng-parameter spellings the taint rules treat as "caller provided a stream"
def _is_rng_param_name(name: str) -> bool:
    return name == "rng" or name.endswith("_rng") or name == "random_state"


#: constructors that mint a fresh, runtime-invisible random stream
FRESH_RNG_CALLS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "random.Random",
}


@rule
class ShadowedRngRule(Rule):
    """DET106: a function handed an ``rng`` must not mint its own.

    Accepting an ``rng`` parameter is a contract: *this* stream is the
    function's randomness.  Constructing a fresh ``default_rng`` inside
    (usually a leftover fallback) silently forks determinism — the
    caller's stream advances differently than the code actually draws,
    and two call sites passing the same stream stop being reproducible.
    Applies to tests too: a test that seeds ``rng`` but draws from a
    fresh generator is not testing what it says it tests.
    """

    id = "DET106"
    name = "shadowed-rng"
    severity = Severity.ERROR
    description = ("fresh random generator constructed inside a function "
                   "that already receives an rng parameter")
    library_only = False
    exempt_suffixes = RNG_HOME

    def _check(self, node, ctx: ModuleContext) -> Iterator[Finding]:
        args = node.args
        params = [a.arg for a in
                  (args.posonlyargs + args.args + args.kwonlyargs)]
        rng_params = [p for p in params if _is_rng_param_name(p)]
        if not rng_params:
            return
        for child in scope_nodes(node.body):
            if not isinstance(child, ast.Call):
                continue
            resolved = ctx.resolve(child.func)
            if resolved in FRESH_RNG_CALLS:
                yield self.found(child, ctx,
                                 f"{node.name!r} receives "
                                 f"{rng_params[0]!r} but constructs "
                                 f"`{resolved}`; draw from the parameter "
                                 "(resolve_rng(...) for the None case)")

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check


#: keyword arguments that stamp a record with a time value
_TIMESTAMP_KEYWORDS = {"timestamp"}

#: constructor names treated as serialized-record sinks
_RECORD_CTORS = ("Record",)


@rule
class WallClockTaintRule(Rule):
    """DET107: wall-clock values must not flow into serialized records.

    DET104 flags the wall-clock *call*; this rule follows the *value*.
    A ``time.time()`` read parked in a local and later passed as
    ``Record(timestamp=...)``, assigned to ``something.timestamp``, or
    emitted in an event payload poisons ``deterministic_dump`` output
    two statements away from the offending call.  The taint pass is
    intraprocedural and monotone (see :mod:`repro.analysis.dataflow`);
    stamp from the runtime clock (``runtime.now()``) or the broker's
    logical tick instead.  Applies to tests and benchmarks too — a
    wall-stamped record breaks byte-identical dump assertions no matter
    who constructs it.
    """

    id = "DET107"
    name = "wall-clock-taint"
    severity = Severity.ERROR
    description = ("wall-clock value flows into Record timestamps / "
                   "event payloads (poisons deterministic dumps)")
    library_only = False
    exempt_suffixes = CLOCK_HOME

    def _is_source(self, ctx: ModuleContext):
        def check(node: ast.AST) -> bool:
            return (isinstance(node, ast.Call)
                    and ctx.resolve(node.func) in WALL_CLOCK_CALLS)
        return check

    def visit_Module(self, node: ast.Module,
                     ctx: ModuleContext) -> Iterator[Finding]:
        is_source = self._is_source(ctx)
        for owner, body in iter_scopes(node):
            tainted = tainted_names(body, is_source)
            yield from self._check_sinks(body, tainted, is_source, ctx)

    def _check_sinks(self, body, tainted: Set[str], is_source,
                     ctx: ModuleContext) -> Iterator[Finding]:
        def carries(expr: Optional[ast.AST]) -> bool:
            return expr is not None and \
                expression_tainted(expr, tainted, is_source)

        for node in scope_nodes(body):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, carries, ctx)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and \
                            target.attr in _TIMESTAMP_KEYWORDS and \
                            carries(node.value):
                        yield self.found(
                            node, ctx,
                            f"wall-clock value assigned to "
                            f"`.{target.attr}`; serialized timestamps "
                            "must come from runtime.now() or a logical "
                            "tick")

    def _check_call(self, node: ast.Call, carries,
                    ctx: ModuleContext) -> Iterator[Finding]:
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        if callee.endswith(_RECORD_CTORS):
            for keyword in node.keywords:
                if keyword.arg in _TIMESTAMP_KEYWORDS and \
                        carries(keyword.value):
                    yield self.found(
                        keyword.value, ctx,
                        f"wall-clock value flows into "
                        f"{callee}(timestamp=...); deterministic dumps "
                        "require runtime.now() or a logical tick")
        if callee == "emit" and isinstance(func, ast.Attribute):
            chain = []
            value = func.value
            while isinstance(value, ast.Attribute):
                chain.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name):
                chain.append(value.id)
            if "events" in chain:
                for keyword in node.keywords:
                    if carries(keyword.value):
                        label = keyword.arg or "**payload"
                        yield self.found(
                            keyword.value, ctx,
                            f"wall-clock value flows into event payload "
                            f"{label!r}; dumps serialize payloads "
                            "byte-for-byte — use runtime.now()")
