"""Baseline file support: grandfather existing findings, fail on new ones.

A baseline entry identifies a finding by ``(rule, path, stripped source
line)`` plus a count, so renumbering a file (adding lines above a
grandfathered finding) does not invalidate the baseline, while adding a
*new* violation — even an identical one on another line — exceeds the
stored count and is reported.  ``python -m repro.analysis
--write-baseline`` regenerates the file; entries that no longer match
anything are listed as stale so they can be pruned.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


def _fingerprint(finding: Finding,
                 contexts: Dict[str, ModuleContext]) -> Tuple[str, str, str]:
    ctx = contexts.get(finding.path)
    line_text = finding.fingerprint_line(ctx.lines if ctx else [])
    return (finding.rule, finding.path, line_text)


class Baseline:
    """Counted fingerprints of grandfathered findings."""

    def __init__(self, entries: Optional[Counter] = None):
        self.entries: Counter = Counter(entries or {})

    # -- persistence -----------------------------------------------------------
    @classmethod
    def load(cls, path) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version: {payload.get('version')!r}")
        entries: Counter = Counter()
        for item in payload.get("findings", []):
            key = (item["rule"], item["path"], item["line_text"])
            entries[key] += int(item.get("count", 1))
        return cls(entries)

    def save(self, path) -> None:
        findings = [
            {"rule": rule, "path": file_path, "line_text": line_text,
             "count": count}
            for (rule, file_path, line_text), count in sorted(self.entries.items())
        ]
        payload = {"version": BASELINE_VERSION, "findings": findings}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: Sequence[Finding],
                      contexts: Dict[str, ModuleContext]) -> "Baseline":
        entries: Counter = Counter()
        for finding in findings:
            entries[_fingerprint(finding, contexts)] += 1
        return cls(entries)

    # -- application -----------------------------------------------------------
    def apply(self, findings: Sequence[Finding],
              contexts: Dict[str, ModuleContext],
              ) -> Tuple[List[Finding], List[Finding], List[Tuple]]:
        """Split findings into (new, grandfathered); also report stale entries.

        Returns ``(new_findings, baselined_findings, stale_entries)`` where
        stale entries are baseline keys that matched nothing this run.
        """
        budget = Counter(self.entries)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = _fingerprint(finding, contexts)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [key for key, remaining in sorted(budget.items())
                 if remaining > 0]
        return new, baselined, stale
