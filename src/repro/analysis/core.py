"""Rule model and registry for the repro static analyzer.

A :class:`Rule` subclass declares an id, severity, and scope, and
implements ``visit_<NodeType>`` hooks; the engine walks each module's AST
once in document order and dispatches every node to every applicable
rule's hook (:mod:`repro.analysis.engine`).  Rules register themselves
with the :func:`rule` class decorator, which is what makes the pack
pluggable: importing a module full of decorated classes is all it takes
to extend the analyzer.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Type

from repro.analysis.context import ModuleContext


class Severity(enum.Enum):
    """How a finding affects the exit status: errors fail, warnings report."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def fingerprint_line(self, ctx_lines: List[str]) -> str:
        """The stripped source line, used for line-number-stable baselines."""
        if 1 <= self.line <= len(ctx_lines):
            return ctx_lines[self.line - 1].strip()
        return ""

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)


class Rule:
    """Base class for all lint rules.

    Subclasses set the class attributes below and implement any number of
    ``visit_<NodeType>(node, ctx)`` methods, each yielding
    :class:`Finding` objects (use :meth:`found` to build them).

    ``library_only`` scopes a rule to library source (files under a
    ``src`` directory); test/benchmark code is exempt.  ``exempt_suffixes``
    lists path suffixes (POSIX-style) the rule never applies to — the
    sanctioned homes of an otherwise-banned construct.
    """

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    library_only: bool = True
    exempt_suffixes: tuple = ()

    def applies(self, ctx: ModuleContext) -> bool:
        if self.library_only and not ctx.is_library:
            return False
        return not any(ctx.rel_path.endswith(suffix)
                       for suffix in self.exempt_suffixes)

    def found(self, node: ast.AST, ctx: ModuleContext,
              message: str) -> Finding:
        return Finding(rule=self.id, severity=self.severity,
                       path=ctx.rel_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message)


class GraphRule(Rule):
    """Base class for whole-program rules.

    A graph rule sees the :class:`~repro.analysis.graph.ProjectGraph`
    built once per run — symbol tables, import edges, call graph — and
    judges cross-module contracts a single-file rule cannot: layering,
    import cycles, worker closures defined in one module and shipped to
    an executor in another.  Subclasses implement :meth:`check` instead
    of ``visit_*`` hooks; per-module scoping (library vs. test code) is
    the rule's own responsibility because there is no single context.

    ``# repro: noqa[RULE]`` suppression still applies: the engine drops
    graph findings whose (path, line) is suppressed in that module.
    """

    scope = "graph"

    def check(self, graph) -> Iterator[Finding]:
        raise NotImplementedError

    def applies(self, ctx: ModuleContext) -> bool:
        # never dispatched per-module; the engine routes by isinstance
        return False

    def found_in(self, ctx: ModuleContext, lineno: int,
                 message: str, col: int = 0) -> Finding:
        return Finding(rule=self.id, severity=self.severity,
                       path=ctx.rel_path, line=lineno, col=col,
                       message=message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a :class:`Rule` subclass to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    _load_builtin_packs()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Optional[Type[Rule]]:
    _load_builtin_packs()
    return _REGISTRY.get(rule_id)


_packs_loaded = False


def _load_builtin_packs() -> None:
    """Import the built-in rule packs (idempotent)."""
    global _packs_loaded
    if _packs_loaded:
        return
    _packs_loaded = True
    from repro.analysis.rules import (  # noqa: F401
        architecture,
        concurrency,
        determinism,
        hygiene,
        observability,
        perf,
    )
