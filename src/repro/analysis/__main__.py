"""``python -m repro.analysis`` — run the linter CLI."""

from repro.analysis.cli import main

raise SystemExit(main())
