"""The asyncio serving gateway: coalesce, admit, shed, serve, observe.

:class:`ServingGateway` is the ingress in front of a
:class:`~repro.fog.deployment.TwoTierDeployment`.  Concurrent callers
``await submit(frames, tenant=...)``; the gateway coalesces whatever is
queued into micro-batches (deadline-bounded by
``coalesce_window_s``, size-bounded by ``max_batch_rows``), runs one
early-exit inference per batch through
:meth:`~repro.fog.deployment.TwoTierDeployment.serve_batched`, and slices
the :class:`~repro.nn.models.earlyexit.BatchExitDecisions` back out to
each caller.  Every admitted request resolves exactly once — with its
decisions, or with the batch's exception; every refused request raises
:class:`~repro.serving.admission.ShedError` exactly once.  That
answered-or-shed invariant is what the chaos property tests pin.

Determinism notes:

- With ``coalesce_window_s=0`` the drain loop takes exactly what the
  single-threaded event loop has queued at wake time, so batch
  composition is a deterministic function of submission order — the mode
  the worker-sweep property tests run in.
- With a positive window the gateway waits out the deadline for more
  work first (lower per-request overhead, wall-clock-dependent batching).
- Latency histograms carry wall-clock readings;
  :data:`VOLATILE_METRIC_PREFIXES` names them so determinism tests can
  pass them to :func:`~repro.runtime.parallel.deterministic_dump`.

Inference runs inline on the event loop (NumPy holds the CPU either
way); submissions landing mid-batch simply queue and ride the next
coalescing window.
"""

from __future__ import annotations

import asyncio
from collections import deque
from contextlib import asynccontextmanager
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.nn.models.earlyexit import BatchExitDecisions
from repro.runtime import get_runtime
from repro.serving.admission import (
    SHED_SHUTDOWN,
    AdmissionController,
    ShedError,
)

#: metric families whose *values* are wall-clock readings; determinism
#: tests pass these to ``deterministic_dump(drop_metric_prefixes=...)``
VOLATILE_METRIC_PREFIXES = ("serving.gateway.latency_s",)


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs for one :class:`ServingGateway`.

    ``coalesce_window_s`` bounds how long the first request of a batch
    waits for company; ``max_batch_rows`` bounds how much company it can
    get.  ``max_queue_rows`` is the admission bound (see
    :class:`~repro.serving.admission.AdmissionController`);
    ``tenant_rate``/``tenant_burst`` enable per-tenant token buckets.
    ``batch_size`` is forwarded to ``serve_batched`` as the inner
    micro-batch size (None = one chunk per coalesced batch).
    """

    coalesce_window_s: float = 0.002
    max_batch_rows: int = 64
    max_queue_rows: int = 1024
    batch_size: Optional[int] = None
    tenant_rate: Optional[float] = None
    tenant_burst: Optional[float] = None

    def __post_init__(self):
        if self.coalesce_window_s < 0:
            raise ValueError(
                f"coalesce_window_s must be >= 0: {self.coalesce_window_s}")
        if self.max_batch_rows < 1:
            raise ValueError(
                f"max_batch_rows must be >= 1: {self.max_batch_rows}")
        if self.max_queue_rows < 1:
            raise ValueError(
                f"max_queue_rows must be >= 1: {self.max_queue_rows}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {self.batch_size}")


class _Pending:
    """One admitted request waiting in the coalescing queue."""

    __slots__ = ("tenant", "frames", "rows", "future", "enqueued_at")

    def __init__(self, tenant: str, frames: np.ndarray, rows: int,
                 future: "asyncio.Future", enqueued_at: float):
        self.tenant = tenant
        self.frames = frames
        self.rows = rows
        self.future = future
        self.enqueued_at = enqueued_at


def split_decisions(decisions: BatchExitDecisions,
                    row_counts: Sequence[int]) -> List[BatchExitDecisions]:
    """Invert :meth:`BatchExitDecisions.concatenate` along ``row_counts``.

    Remote logits follow their rows: each part gets the escalated rows
    that fall inside its slice, re-based to part-local indices.
    """
    total = sum(row_counts)
    if total != len(decisions):
        raise ValueError(f"row_counts sum to {total}, "
                         f"decisions hold {len(decisions)} rows")
    parts, start = [], 0
    for rows in row_counts:
        parts.append(_slice_decisions(decisions, start, start + rows))
        start += rows
    return parts


def _slice_decisions(dec: BatchExitDecisions, start: int,
                     stop: int) -> BatchExitDecisions:
    remote_rows = np.zeros(0, dtype=int)
    remote_logits = None
    if dec.remote_logits is not None and dec.remote_rows.size:
        mask = (dec.remote_rows >= start) & (dec.remote_rows < stop)
        if mask.any():
            remote_rows = (dec.remote_rows[mask] - start).astype(int)
            remote_logits = dec.remote_logits[mask]
    return BatchExitDecisions(
        predictions=dec.predictions[start:stop],
        exit_index=dec.exit_index[start:stop],
        confidence=dec.confidence[start:stop],
        local_logits=dec.local_logits[start:stop],
        remote_logits=remote_logits,
        remote_rows=remote_rows)


class ServingGateway:
    """Coalescing, admission-controlled ingress over a fog deployment.

    Lifecycle::

        gateway = ServingGateway(deployment, policy, config)
        async with gateway.running():
            decisions = await gateway.submit(frames, tenant="cam-a")

    ``close()`` (or leaving ``running()``) drains what was already
    admitted before returning; submissions arriving after close are shed
    with reason ``shutdown``.
    """

    def __init__(self, deployment, policy, config: Optional[GatewayConfig] = None,
                 runtime=None):
        self.deployment = deployment
        self.policy = policy
        self.config = config or GatewayConfig()
        self.runtime = runtime or get_runtime()
        self.admission = AdmissionController(
            self.config.max_queue_rows,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
            clock=self.runtime.now)
        self._queue: Deque[_Pending] = deque()
        self._queued_rows = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._drain_task: Optional["asyncio.Task"] = None
        self._closed = False
        self._batch_seq = 0
        self.submitted = 0
        self.admitted = 0
        self.answered = 0
        self.shed = 0
        self.failed = 0
        registry = self.runtime.registry
        self._m_submitted = registry.counter(
            "serving.gateway.submitted",
            help="requests offered to the gateway")
        self._m_admitted = registry.counter(
            "serving.gateway.admitted",
            help="requests accepted into the coalescing queue")
        self._m_shed = registry.counter(
            "serving.gateway.shed",
            help="requests refused by admission control or shutdown")
        self._m_answered = registry.counter(
            "serving.gateway.answered",
            help="admitted requests resolved with decisions")
        self._m_failed = registry.counter(
            "serving.gateway.failed",
            help="admitted requests resolved with a batch exception")
        self._m_batches = registry.counter(
            "serving.gateway.batches",
            help="coalesced micro-batches served")
        self._m_rows = registry.counter(
            "serving.gateway.rows_served",
            help="frame rows served through coalesced batches")
        self._m_batch_rows = registry.histogram(
            "serving.gateway.batch_rows",
            help="rows per coalesced micro-batch")
        self._m_latency = registry.histogram(
            "serving.gateway.latency_s",
            help="wall seconds from admission to answer")
        self._g_queue_rows = registry.gauge(
            "serving.gateway.queue_rows",
            help="frame rows waiting in the coalescing queue")
        self._g_queue_requests = registry.gauge(
            "serving.gateway.queue_requests",
            help="requests waiting in the coalescing queue")

    # -- lifecycle --------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the drain loop on the running event loop (idempotent)."""
        if self._drain_task is not None and not self._drain_task.done():
            return
        self._closed = False
        self._wakeup = asyncio.Event()
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain_loop())

    async def close(self) -> None:
        """Stop accepting work, drain what was admitted, join the loop."""
        self._closed = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._drain_task is not None:
            await self._drain_task
            self._drain_task = None

    @asynccontextmanager
    async def running(self):
        await self.start()
        try:
            yield self
        finally:
            await self.close()

    # -- ingress ----------------------------------------------------------------
    async def submit(self, frames, tenant: str = "default"
                     ) -> BatchExitDecisions:
        """Queue one request and await its slice of the batch decisions.

        Raises :class:`ShedError` when admission refuses it, or the
        inference exception when the whole batch fails.  ``frames`` is a
        ``(rows, ...)`` array; rows may be zero (the request still rides
        a batch and resolves with zero-row decisions).
        """
        data = np.asarray(frames)
        rows = int(data.shape[0])
        self.submitted += 1
        self._m_submitted.inc(1, tenant=tenant)
        if self._closed or self._wakeup is None:
            self._shed(tenant, SHED_SHUTDOWN, "gateway is not running")
        reason = self.admission.admit(tenant, rows, self._queued_rows)
        if reason is not None:
            self._shed(tenant, reason,
                       f"{rows} rows against {self._queued_rows} queued")
        pending = _Pending(tenant, data, rows,
                           asyncio.get_running_loop().create_future(),
                           self.runtime.now())
        self._queue.append(pending)
        self._queued_rows += rows
        self.admitted += 1
        self._m_admitted.inc(1, tenant=tenant)
        self._update_queue_gauges()
        self._wakeup.set()
        return await pending.future

    def _shed(self, tenant: str, reason: str, detail: str) -> None:
        self.shed += 1
        self._m_shed.inc(1, tenant=tenant, reason=reason)
        raise ShedError(tenant, reason, detail)

    def _update_queue_gauges(self) -> None:
        self._g_queue_rows.set(self._queued_rows)
        self._g_queue_requests.set(len(self._queue))

    # -- drain loop -------------------------------------------------------------
    async def _drain_loop(self) -> None:
        while True:
            if not self._queue:
                if self._closed:
                    return
                await self._wakeup.wait()
                self._wakeup.clear()
                continue
            await self._await_coalescing_deadline()
            batch = self._take_batch()
            if batch:
                self._serve_batch(batch)

    async def _await_coalescing_deadline(self) -> None:
        """Hold the first request up to ``coalesce_window_s`` for company."""
        window = self.config.coalesce_window_s
        if window <= 0:
            return
        deadline = self.runtime.now() + window
        while not self._closed and self._queued_rows < self.config.max_batch_rows:
            remaining = deadline - self.runtime.now()
            if remaining <= 0:
                break
            try:
                await asyncio.wait_for(self._wakeup.wait(), remaining)
            except asyncio.TimeoutError:
                break
            self._wakeup.clear()

    def _take_batch(self) -> List[_Pending]:
        """Pop whole requests until the next one would overflow the batch."""
        batch: List[_Pending] = []
        rows = 0
        while self._queue:
            head = self._queue[0]
            if batch and rows + head.rows > self.config.max_batch_rows:
                break
            batch.append(self._queue.popleft())
            rows += head.rows
        self._queued_rows -= rows
        self._update_queue_gauges()
        return batch

    def _serve_batch(self, batch: List[_Pending]) -> None:
        self._batch_seq += 1
        seq = self._batch_seq
        rows = sum(p.rows for p in batch)
        arrays = [p.frames for p in batch]
        stacked = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
        tracer = self.runtime.tracer
        with tracer.span("serving.gateway.batch", batch=seq,
                         requests=len(batch), rows=rows):
            try:
                with tracer.span("serving.gateway.infer", batch=seq):
                    decisions = self.deployment.serve_batched(
                        stacked, self.policy,
                        batch_size=self.config.batch_size)
            except Exception as exc:
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
                    self.failed += 1
                    self._m_failed.inc(1, tenant=pending.tenant)
                return
            parts = split_decisions(decisions, [p.rows for p in batch])
        now = self.runtime.now()
        for pending, part in zip(batch, parts):
            if not pending.future.done():
                pending.future.set_result(part)
            self.answered += 1
            self._m_answered.inc(1, tenant=pending.tenant)
            self._m_latency.observe(now - pending.enqueued_at,
                                    tenant=pending.tenant)
        self._m_batches.inc()
        self._m_rows.inc(rows)
        self._m_batch_rows.observe(rows)

    # -- observability ----------------------------------------------------------
    def stats(self) -> dict:
        """A cheap live snapshot for health endpoints and tests.

        When the deployment serves captured plans (``capture_plans=``),
        ``plans`` carries the per-stage plan-cache counters — hit/miss
        ratios and arena bytes are the first thing to look at when
        latency regresses.
        """
        snapshot = {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "answered": self.answered,
            "shed": self.shed,
            "failed": self.failed,
            "batches": self._batch_seq,
            "queue_rows": self._queued_rows,
            "queue_requests": len(self._queue),
            "closed": self._closed,
        }
        plan_stats = getattr(self.deployment, "plan_stats", None)
        if callable(plan_stats):
            plans = plan_stats()
            if plans:
                snapshot["plans"] = plans
        return snapshot
