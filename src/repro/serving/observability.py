"""Live observability endpoint: the runtime registry over asyncio HTTP.

A tiny, dependency-free HTTP/1.1 server (``asyncio.start_server``) that
exposes what a dashboard needs while a gateway is serving:

- ``GET /healthz`` — gateway liveness + queue/shed counters (JSON);
- ``GET /metrics`` — the full runtime observability dump, canonical JSON
  via :func:`repro.viz.exporters.registry_to_json`;
- ``GET /metrics/stream?frames=N&interval_s=T`` — N registry snapshots
  as newline-delimited JSON, one every T seconds (a poll-free live feed
  for the D3 layer the paper renders with);
- ``GET /spans`` — the tracer's finished spans as a parent/child forest
  (:meth:`repro.runtime.tracing.Tracer.span_tree`).

Responses close the connection (``Connection: close``); the stream route
is length-less and close-delimited, so a plain ``curl`` tails it.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from typing import Optional, Tuple

from repro.runtime import get_runtime
from repro.viz.exporters import registry_to_json

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed"}

#: bounds on the stream route, so a typo'd query cannot pin the server
MAX_STREAM_FRAMES = 10_000
MAX_STREAM_INTERVAL_S = 60.0


def _response(status: int, body: bytes,
              content_type: str = "application/json") -> bytes:
    head = (f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def _json_response(status: int, payload) -> bytes:
    return _response(status,
                     json.dumps(payload, sort_keys=True).encode("utf-8"))


class ObservabilityServer:
    """Serve runtime observability over a loopback HTTP port.

    ``port=0`` binds an ephemeral port; :meth:`start` returns the bound
    ``(host, port)`` so tests and launchers never race on a fixed port.
    """

    def __init__(self, runtime=None, gateway=None,
                 host: str = "127.0.0.1", port: int = 0):
        self.runtime = runtime or get_runtime()
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: Optional["asyncio.base_events.Server"] = None

    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            return self.host, self.port
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        return self.host, self.port

    async def close(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "ObservabilityServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- request handling -------------------------------------------------------
    async def _handle(self, reader: "asyncio.StreamReader",
                      writer: "asyncio.StreamWriter") -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                writer.write(_json_response(400, {"error": "bad request"}))
                return
            method, target = parts[0], parts[1]
            while True:                      # drain headers; none are needed
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if method != "GET":
                writer.write(_json_response(
                    405, {"error": f"method {method} not allowed"}))
                return
            split = urllib.parse.urlsplit(target)
            query = urllib.parse.parse_qs(split.query)
            await self._route(split.path, query, writer)
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass                         # peer already hung up

    async def _route(self, path: str, query, writer) -> None:
        if path == "/healthz":
            payload = {"status": "ok"}
            if self.gateway is not None:
                payload.update(self.gateway.stats())
                if payload.pop("closed"):
                    payload["status"] = "closed"
            writer.write(_json_response(200, payload))
        elif path == "/metrics":
            body = registry_to_json(self.runtime).encode("utf-8")
            writer.write(_response(200, body))
        elif path == "/metrics/stream":
            await self._stream(query, writer)
        elif path == "/spans":
            writer.write(_json_response(
                200, self.runtime.tracer.span_tree()))
        else:
            writer.write(_json_response(404, {"error": f"no route {path}"}))

    async def _stream(self, query, writer) -> None:
        try:
            frames = int(query.get("frames", ["3"])[0])
            interval_s = float(query.get("interval_s", ["0.05"])[0])
        except ValueError:
            writer.write(_json_response(
                400, {"error": "frames/interval_s must be numeric"}))
            return
        if not 1 <= frames <= MAX_STREAM_FRAMES \
                or not 0.0 <= interval_s <= MAX_STREAM_INTERVAL_S:
            writer.write(_json_response(
                400, {"error": "frames or interval_s out of bounds"}))
            return
        writer.write(("HTTP/1.1 200 OK\r\n"
                      "Content-Type: application/x-ndjson\r\n"
                      "Connection: close\r\n\r\n").encode("latin-1"))
        for sequence in range(frames):
            snapshot = {"sequence": sequence,
                        "metrics": self.runtime.registry.dump()}
            if self.gateway is not None:
                snapshot["gateway"] = self.gateway.stats()
            writer.write(json.dumps(snapshot, sort_keys=True).encode("utf-8")
                         + b"\n")
            await writer.drain()
            if sequence + 1 < frames and interval_s > 0:
                await asyncio.sleep(interval_s)
