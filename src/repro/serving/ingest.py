"""Broker → gateway ingress: drain camera topics through the fog tier.

The camera glue (``camera.frames`` topic, shared-memory frames, manual
commits) already exists in the streaming layer; this module is the
sanctioned path from that topic into a deployment.  Each poll is
regrouped per camera (sorted, so results are deterministic), every
camera's frames become one gateway submission with the camera id as the
tenant, and offsets commit only after the whole poll resolved —
answered *or deliberately shed*.  Shed frames are dropped by design
(that is what load shedding means) and show up in the returned shed
counts and the ``serving.gateway.shed`` counter; a batch *failure* is
not a shed, so it aborts the pump without committing and the poisoned
poll is redelivered to the next consumer.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from repro.serving.admission import ShedError
from repro.serving.gateway import GatewayConfig, ServingGateway

#: the consumer group the fog tier drains camera topics with
DEFAULT_GROUP = "fog-serving"


#: record every Nth ingest poll as a real span; the rest are no-ops
POLL_SPAN_EVERY = 16


async def pump_topic(gateway: ServingGateway, bus, topic: str,
                     group: str = DEFAULT_GROUP, poll_size: int = 256
                     ) -> Tuple[Dict[str, List], Dict[str, int]]:
    """Drain ``topic`` through ``gateway`` until a poll comes back empty.

    Returns ``(served, shed)``: per-camera lists of
    :class:`~repro.nn.models.earlyexit.BatchExitDecisions` (one per poll
    the camera appeared in) and per-camera shed-request counts.

    The pump is *pipelined*: each columnar poll is regrouped per camera
    by ``batch.groups()`` (sorted keys, deterministic), the gather of
    gateway submissions is started, and the *next* poll is issued while
    that gather is in flight.  Commit-after-resolve semantics survive the
    read-ahead because each batch commits against the position snapshot
    taken right after its own poll — never the prefetched positions — so
    a failed batch (and everything polled after it) is redelivered.
    """
    consumer = bus.consumer(group, [topic], auto_commit=False)
    served: Dict[str, List] = {}
    shed: Dict[str, int] = {}
    poll_span = gateway.runtime.tracer.sampler("serving.ingest.poll",
                                               every=POLL_SPAN_EVERY)
    try:
        with poll_span.span(topic=topic):
            batch = consumer.poll_batch(poll_size)
        while batch:
            snapshot = consumer.position_snapshot()
            groups = batch.groups()
            cameras = [camera for camera, _ in groups]
            gather = asyncio.gather(
                *(gateway.submit(frames.stacked_values(), tenant=camera)
                  for camera, frames in groups),
                return_exceptions=True)
            # Let the submissions enqueue, then poll ahead while the
            # gateway resolves them.
            await asyncio.sleep(0)
            with poll_span.span(topic=topic):
                next_batch = consumer.poll_batch(poll_size)
            results = await gather
            for camera, result in zip(cameras, results):
                if isinstance(result, ShedError):
                    shed[camera] = shed.get(camera, 0) + 1
                elif isinstance(result, BaseException):
                    raise result
                else:
                    served.setdefault(camera, []).append(result)
            consumer.commit(positions=snapshot)
            batch = next_batch
    finally:
        consumer.close()
    return served, shed


def serve_camera_topic(deployment, policy, bus, topic: str,
                       batch_size: Optional[int] = None,
                       group: str = DEFAULT_GROUP, poll_size: int = 256,
                       config: Optional[GatewayConfig] = None,
                       runtime=None) -> Dict[str, List]:
    """Synchronous one-shot drain: build a gateway, pump, tear down.

    The convenience entrypoint the infrastructure facade calls.  The
    default config coalesces with a zero window (deterministic batching)
    and sizes the batch and queue bounds to the poll, so a default drain
    never sheds; pass ``config`` to exercise admission control.
    """
    if config is None:
        config = GatewayConfig(
            coalesce_window_s=0.0,
            max_batch_rows=max(1, poll_size),
            max_queue_rows=max(1024, 4 * poll_size),
            batch_size=batch_size)

    async def run() -> Dict[str, List]:
        gateway = ServingGateway(deployment, policy, config, runtime=runtime)
        async with gateway.running():
            served, _ = await pump_topic(gateway, bus, topic,
                                         group=group, poll_size=poll_size)
        return served

    return asyncio.run(run())
