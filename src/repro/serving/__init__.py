"""The serving plane: asyncio ingress over two-tier fog deployments.

Raw :class:`~repro.fog.deployment.TwoTierDeployment` serving calls stay
behind this package (lint rule API304): the gateway is where micro-batch
coalescing, admission control, per-tenant rate limits, load shedding,
and live observability happen, and bypassing it silently forfeits all
five.
"""

from repro.serving.admission import (
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
    SHED_SHUTDOWN,
    AdmissionController,
    ShedError,
    TokenBucket,
)
from repro.serving.gateway import (
    VOLATILE_METRIC_PREFIXES,
    GatewayConfig,
    ServingGateway,
    split_decisions,
)
from repro.serving.ingest import DEFAULT_GROUP, pump_topic, serve_camera_topic
from repro.serving.observability import ObservabilityServer

__all__ = [
    "AdmissionController",
    "DEFAULT_GROUP",
    "GatewayConfig",
    "ObservabilityServer",
    "SHED_QUEUE_FULL",
    "SHED_RATE_LIMIT",
    "SHED_SHUTDOWN",
    "ServingGateway",
    "ShedError",
    "TokenBucket",
    "VOLATILE_METRIC_PREFIXES",
    "pump_topic",
    "serve_camera_topic",
    "split_decisions",
]
