"""Admission control for the serving gateway: token buckets + queue bounds.

A live serving plane has two distinct reasons to say no:

- a *tenant* is sending faster than its contract allows (per-tenant
  token buckets, refilled on the runtime clock at ``rate`` rows/second up
  to ``burst`` rows), and
- the *gateway as a whole* is saturated (the coalescing queue already
  holds ``max_queue_rows`` rows, so accepting more would only grow
  latency without growing throughput).

Both outcomes surface as :class:`ShedError` with a machine-readable
``reason`` so callers — and the ``serving.gateway.shed`` counter — can
tell contractual throttling from overload shedding apart.  Queue depth is
checked *before* the rate limit so a rejected-for-overload request does
not burn the tenant's tokens.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

#: shed reasons, stable strings used as metric labels
SHED_QUEUE_FULL = "queue_full"
SHED_RATE_LIMIT = "rate_limit"
SHED_SHUTDOWN = "shutdown"


class ShedError(RuntimeError):
    """A request the gateway refused to serve (load shedding).

    Carries the ``tenant`` and a ``reason`` (one of
    :data:`SHED_QUEUE_FULL`, :data:`SHED_RATE_LIMIT`,
    :data:`SHED_SHUTDOWN`) so callers can retry, back off, or drop
    according to why they were refused.
    """

    def __init__(self, tenant: str, reason: str, detail: str = ""):
        self.tenant = tenant
        self.reason = reason
        message = f"request from tenant {tenant!r} shed ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class TokenBucket:
    """A token bucket refilled continuously on an injected clock.

    Tokens are *rows* (frames): a request for N frames costs N tokens, so
    rate limits bound pixels-per-second, not requests-per-second — a
    tenant cannot dodge its contract by batching harder.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float]):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 rows/s: {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1 row: {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def available(self) -> float:
        """Tokens usable right now (after refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if the bucket holds them; False otherwise."""
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0: {tokens}")
        self._refill()
        if tokens > self._tokens:
            return False
        self._tokens -= tokens
        return True


class AdmissionController:
    """Decide, per request, whether the gateway should accept it.

    ``admit`` returns ``None`` to accept or a shed-reason string; it never
    raises — turning the reason into a :class:`ShedError` (and counting
    it) is the gateway's job, so the controller stays a pure policy
    object that unit tests can drive with a fake clock.
    """

    def __init__(self, max_queue_rows: int,
                 tenant_rate: Optional[float] = None,
                 tenant_burst: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None):
        if max_queue_rows < 1:
            raise ValueError(f"max_queue_rows must be >= 1: {max_queue_rows}")
        if tenant_rate is None and tenant_burst is not None:
            raise ValueError("tenant_burst without tenant_rate is meaningless")
        self.max_queue_rows = int(max_queue_rows)
        self.tenant_rate = tenant_rate
        # default burst: one second's worth of the rate, at least one row
        self.tenant_burst = (tenant_burst if tenant_burst is not None
                             else (max(1.0, tenant_rate)
                                   if tenant_rate is not None else None))
        self._clock = clock or _default_clock
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket(self, tenant: str) -> Optional[TokenBucket]:
        """The tenant's bucket (created on first use; None if unlimited)."""
        if self.tenant_rate is None:
            return None
        existing = self._buckets.get(tenant)
        if existing is None:
            existing = TokenBucket(self.tenant_rate, self.tenant_burst,
                                   self._clock)
            self._buckets[tenant] = existing
        return existing

    def admit(self, tenant: str, rows: int,
              queued_rows: int) -> Optional[str]:
        """None to accept; a shed reason to refuse.

        Queue depth first (overload sheds must not consume tenant
        tokens), then the tenant's token bucket.  A request larger than
        ``max_queue_rows`` can never be admitted and is shed even against
        an empty queue — better an immediate, honest refusal than a
        request that waits forever.
        """
        if queued_rows + rows > self.max_queue_rows:
            return SHED_QUEUE_FULL
        bucket = self.bucket(tenant)
        if bucket is not None and rows > 0 and not bucket.try_acquire(rows):
            return SHED_RATE_LIMIT
        return None


def _default_clock() -> float:
    from repro.runtime import get_runtime
    return get_runtime().now()
