"""Exporters producing the JSON/GeoJSON/SVG artifacts a web layer renders.

The paper visualizes raw and analyzed data with D3 on a web server
(Fig. 4's last stage).  These exporters produce exactly the data products
that stage consumes: GeoJSON feature collections for maps, compact
time-series JSON, and self-contained SVG charts for dashboards.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def registry_to_json(source, path: Optional[str] = None,
                     indent: int = 2) -> str:
    """Serialize a runtime observability dump to canonical JSON.

    ``source`` may be a :class:`repro.runtime.Runtime` (full dump: seed,
    metrics, spans, events) or a bare
    :class:`repro.runtime.MetricsRegistry`.  Keys are sorted all the way
    down, so two identically-seeded runs produce byte-identical output —
    the determinism contract the runtime tests pin.  If ``path`` is given
    the JSON is also written there.
    """
    dump = source.dump()
    text = json.dumps(dump, sort_keys=True, indent=indent)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def points_to_geojson(points: Sequence[Dict],
                      lon_key: str = "lon", lat_key: str = "lat",
                      properties: Optional[Sequence[str]] = None) -> str:
    """Dict records with coordinates -> a GeoJSON FeatureCollection string."""
    features = []
    for point in points:
        if lon_key not in point or lat_key not in point:
            raise KeyError(f"record missing {lon_key}/{lat_key}: {point}")
        keep = properties if properties is not None else [
            k for k in point if k not in (lon_key, lat_key)]
        features.append({
            "type": "Feature",
            "geometry": {"type": "Point",
                         "coordinates": [point[lon_key], point[lat_key]]},
            "properties": {k: point[k] for k in keep if k in point},
        })
    return json.dumps({"type": "FeatureCollection", "features": features})


def cameras_to_geojson(registry) -> str:
    """A camera registry -> GeoJSON (the Fig. 2 map layer)."""
    records = [{
        "lon": camera.lon, "lat": camera.lat,
        "camera_id": camera.camera_id, "city": camera.city,
        "highway": camera.highway, "fps": camera.fps,
    } for camera in registry]
    return points_to_geojson(records)


def timeseries_json(series: Dict[str, Sequence[float]],
                    x_label: str = "day") -> str:
    """Named series -> the compact JSON a D3 line chart binds to."""
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (length,) = lengths
    return json.dumps({
        "x_label": x_label,
        "x": list(range(length)),
        "series": {name: list(map(float, values))
                   for name, values in series.items()},
    })


def bar_chart_svg(values: Dict[str, float], title: str = "",
                  width: int = 480, height: int = 240) -> str:
    """A self-contained SVG bar chart."""
    if not values:
        raise ValueError("need at least one bar")
    margin = 30
    chart_w = width - 2 * margin
    chart_h = height - 2 * margin
    peak = max(max(values.values()), 1e-12)
    bar_w = chart_w / len(values)
    parts = [f'<svg xmlns="http://www.w3.org/2000/svg" '
             f'width="{width}" height="{height}">']
    if title:
        parts.append(f'<text x="{width / 2}" y="16" text-anchor="middle" '
                     f'font-size="13">{title}</text>')
    for index, (label, value) in enumerate(values.items()):
        bar_h = chart_h * max(value, 0.0) / peak
        x = margin + index * bar_w
        y = margin + chart_h - bar_h
        parts.append(f'<rect x="{x + 2:.1f}" y="{y:.1f}" '
                     f'width="{bar_w - 4:.1f}" height="{bar_h:.1f}" '
                     f'fill="#4878a8"/>')
        parts.append(f'<text x="{x + bar_w / 2:.1f}" y="{height - 8}" '
                     f'text-anchor="middle" font-size="10">{label}</text>')
    parts.append("</svg>")
    return "".join(parts)


def heatmap_svg(grid: Sequence[Sequence[float]], title: str = "",
                cell: int = 18) -> str:
    """A density grid -> SVG heatmap (crime-hotspot map layer)."""
    rows = len(grid)
    if rows == 0 or len(grid[0]) == 0:
        raise ValueError("grid must be non-empty")
    cols = len(grid[0])
    if any(len(row) != cols for row in grid):
        raise ValueError("grid rows have unequal lengths")
    peak = max(max(row) for row in grid)
    peak = peak if peak > 0 else 1.0
    width, height = cols * cell, rows * cell + (20 if title else 0)
    offset = 20 if title else 0
    parts = [f'<svg xmlns="http://www.w3.org/2000/svg" '
             f'width="{width}" height="{height}">']
    if title:
        parts.append(f'<text x="{width / 2}" y="14" text-anchor="middle" '
                     f'font-size="12">{title}</text>')
    for r, row in enumerate(grid):
        for c, value in enumerate(row):
            intensity = int(255 * (1 - min(value / peak, 1.0)))
            parts.append(
                f'<rect x="{c * cell}" y="{offset + r * cell}" '
                f'width="{cell}" height="{cell}" '
                f'fill="rgb(255,{intensity},{intensity})"/>')
    parts.append("</svg>")
    return "".join(parts)
