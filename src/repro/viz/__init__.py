"""Visualization data products (the D3 substitute, Sec. II-C-3)."""

from repro.viz.exporters import (
    bar_chart_svg,
    cameras_to_geojson,
    heatmap_svg,
    points_to_geojson,
    registry_to_json,
    timeseries_json,
)

__all__ = ["points_to_geojson", "cameras_to_geojson", "timeseries_json",
           "bar_chart_svg", "heatmap_svg", "registry_to_json"]
