"""The four-layer cyberinfrastructure of Fig. 1, assembled end-to-end.

:class:`CyberInfrastructure` wires every substrate this repository builds
into the architecture the paper describes:

- **data layer** — synthetic feeds (cameras, tweets, Waze, open city data,
  law-enforcement transfers) registered as sources;
- **hardware layer** — the simulated four-tier fog topology plus the YARN
  cluster behind the analysis servers;
- **software layer** — DFS + HBase + document store for storage, Flume
  agents and the message bus for ingestion, the Spark-like engine for
  mining, ``repro.nn`` for deep learning, and the viz exporters;
- **application layer** — deploy hooks for the Sec. IV applications.

``run_collection_pipeline`` executes the Fig. 4 flow for a batch of feeds:
sources -> transactional ingestion -> NoSQL -> a Spark aggregation -> a
visualization payload, returning per-stage record counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.cluster.machines import NetworkTopology, Tier
from repro.compute.rdd import SparkContext
from repro.compute.yarn import NodeManager, ResourceManager
from repro.dfs import DistributedFileSystem
from repro.nosql import DocumentStore, HTable
from repro.streaming import (
    BACKPRESSURE_POLICIES,
    Channel,
    FlumeAgent,
    FunctionSource,
    MessageBus,
    broker_sink,
)
from repro.viz.exporters import bar_chart_svg, timeseries_json


@dataclass
class InfraConfig:
    """Sizing knobs for the simulated deployment."""

    edges_per_fog: int = 4
    fogs_per_server: int = 2
    servers: int = 2
    datanodes: int = 4
    dfs_replication: int = 2
    dfs_block_size: int = 64 * 1024
    bus_partitions: int = 4
    #: bound per source-topic partition; None = unbounded (the default,
    #: so late-joining consumer groups can always replay a full feed)
    bus_partition_capacity: Optional[int] = None
    #: broker policy when a bounded partition fills: block | drop | error
    bus_backpressure: str = "block"
    #: bound per camera-frame partition (frames are large; keep it tight)
    camera_partition_capacity: int = 256
    yarn_vcores_per_server: int = 8
    yarn_memory_mb_per_server: int = 32_768

    def __post_init__(self):
        if self.datanodes < self.dfs_replication:
            raise ValueError(
                f"{self.datanodes} datanodes cannot hold "
                f"{self.dfs_replication} replicas")
        if self.bus_backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown bus_backpressure {self.bus_backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}")
        if self.bus_partition_capacity is not None \
                and self.bus_partition_capacity < 1:
            raise ValueError(
                f"bus_partition_capacity must be >= 1: "
                f"{self.bus_partition_capacity}")
        if self.camera_partition_capacity < 1:
            raise ValueError(
                f"camera_partition_capacity must be >= 1: "
                f"{self.camera_partition_capacity}")


@dataclass
class PipelineRunReport:
    """Per-stage accounting of one Fig. 4 collection pass."""

    records_ingested: Dict[str, int] = field(default_factory=dict)
    records_stored: Dict[str, int] = field(default_factory=dict)
    analysis_rows: int = 0
    viz_bytes: int = 0

    @property
    def total_ingested(self) -> int:
        return sum(self.records_ingested.values())


class CyberInfrastructure:
    """All four layers, ready for ingestion, analysis, and deployment."""

    def __init__(self, config: Optional[InfraConfig] = None):
        self.config = config or InfraConfig()
        cfg = self.config
        # Hardware layer.
        self.topology = NetworkTopology.build_fog_hierarchy(
            edges_per_fog=cfg.edges_per_fog,
            fogs_per_server=cfg.fogs_per_server,
            servers=cfg.servers)
        self.yarn = ResourceManager()
        for server in self.topology.machines(Tier.SERVER):
            self.yarn.register_node(NodeManager(
                server.name, vcores=cfg.yarn_vcores_per_server,
                memory_mb=cfg.yarn_memory_mb_per_server))
        # Software layer: storage.
        self.dfs = DistributedFileSystem.with_datanodes(
            cfg.datanodes, replication=cfg.dfs_replication,
            block_size=cfg.dfs_block_size)
        self.documents = DocumentStore("smartcity")
        self._htables: Dict[str, HTable] = {}
        # Software layer: streaming + compute.
        self.bus = MessageBus()
        self.spark = SparkContext(default_parallelism=4)
        self._sources: Dict[str, Callable[[], Iterable[Dict]]] = {}

    # -- storage helpers ---------------------------------------------------------
    def htable(self, name: str, families: Sequence[str] = ("d",)) -> HTable:
        """Get or create a wide-column table backed by the DFS."""
        if name not in self._htables:
            self._htables[name] = HTable(name, self.dfs, families=families)
        return self._htables[name]

    def collection(self, name: str):
        return self.documents.collection(name)

    # -- data layer registration ---------------------------------------------------
    def register_source(self, name: str,
                        records: Callable[[], Iterable[Dict]]) -> None:
        """Register a feed; ``records`` is called at collection time."""
        if name in self._sources:
            raise ValueError(f"source already registered: {name}")
        self._sources[name] = records
        if name not in self.bus.topic_names():
            self.bus.create_topic(
                name, partitions=self.config.bus_partitions,
                max_partition_records=self.config.bus_partition_capacity,
                backpressure=self.config.bus_backpressure)

    def source_names(self) -> List[str]:
        return sorted(self._sources)

    # -- the Fig. 4 pipeline -----------------------------------------------------------
    def run_collection_pipeline(self,
                                analysis_field: str = "district"
                                ) -> PipelineRunReport:
        """Collect every registered source, store, analyze, visualize.

        Each source flows through a transactional Flume agent *onto its
        broker topic*; a manual-commit ``storage`` consumer group drains
        the topic into the document collection, committing offsets only
        after the inserts land.  Producer and storage consumer are pumped
        in lockstep, so bounded topics backpressure the Flume channel
        (and through it the source) instead of overflowing.  A Spark job
        then aggregates all stored records by ``analysis_field``; the
        result is rendered to a bar-chart SVG (the web layer's input).
        """
        if not self._sources:
            raise RuntimeError("no sources registered")
        report = PipelineRunReport()
        for name, fetch in self._sources.items():
            records = list(fetch())
            coll = self.collection(name)
            before = len(coll)
            report.records_ingested[name] = self._ingest_source(
                name, records, coll)
            report.records_stored[name] = len(coll) - before
        # Analysis: district-level counts across all stored collections.
        rows = []
        for name in self._sources:
            for document in self.collection(name).find({}):
                value = document.get(analysis_field)
                if value is not None:
                    rows.append((value, 1))
        counts = dict(
            self.spark.parallelize(rows).reduceByKey(lambda a, b: a + b)
            .collect()) if rows else {}
        report.analysis_rows = len(counts)
        svg = bar_chart_svg(
            {str(k): float(v) for k, v in sorted(counts.items())},
            title=f"records by {analysis_field}") if counts else ""
        report.viz_bytes = len(svg.encode())
        self._last_viz = svg
        return report

    def _ingest_source(self, name: str, records: List[Dict], coll,
                       max_cycles: int = 10_000) -> int:
        """Source -> Flume -> broker topic -> storage group -> collection.

        Returns the number of events the agent delivered to the broker.
        The storage consumer is pumped inside the same loop so a bounded
        topic drains as fast as it fills; its offsets commit only after
        the collection inserts succeed (at-least-once into storage).
        """
        agent = FlumeAgent(
            FunctionSource(records),
            broker_sink(self.bus, name),
            channel=Channel(capacity=max(len(records), 1)),
            batch_size=25)
        storage = self.bus.consumer("storage", [name], auto_commit=False)
        try:
            for _ in range(max_cycles):
                agent.pump_source(agent.batch_size)
                agent.pump_sink()
                batch = storage.poll(4 * agent.batch_size)
                if batch:
                    for record in batch:
                        coll.insert(dict(record.value))
                    storage.commit()
                if (agent.metrics.source_exhausted
                        and len(agent.channel) == 0 and not batch):
                    break
        finally:
            storage.close()
        return agent.metrics.events_delivered

    # -- camera -> fog glue ---------------------------------------------------------
    CAMERA_TOPIC = "camera.frames"

    def attach_camera_feed(self) -> str:
        """Ensure the bounded, shared-memory camera-frame topic exists.

        Frames are large ndarrays: the topic stages them in shared memory
        (consumers get zero-copy read-only views) and bounds each
        partition at ``camera_partition_capacity`` so a stalled fog tier
        backpressures the cameras instead of buffering frames without
        limit.
        """
        if self.CAMERA_TOPIC not in self.bus.topic_names():
            self.bus.create_topic(
                self.CAMERA_TOPIC, partitions=self.config.bus_partitions,
                max_partition_records=self.config.camera_partition_capacity,
                backpressure=self.config.bus_backpressure,
                share_ndarrays=True)
        return self.CAMERA_TOPIC

    def publish_camera_frames(self, camera_id: str, frames) -> int:
        """Produce a camera's frames, keyed by camera (per-camera order)."""
        topic = self.attach_camera_feed()
        produced = self.bus.produce_batch(
            topic, list(frames), key_fn=lambda frame: camera_id)
        return len(produced)

    def serve_camera_streams(self, deployment, policy,
                             batch_size: Optional[int] = None,
                             group: str = "fog-serving",
                             poll_size: int = 256,
                             gateway_config=None) -> Dict[str, List]:
        """Drain camera frames through a two-tier fog deployment.

        Routes ``camera.frames`` through the serving gateway
        (:func:`repro.serving.serve_camera_topic`): each poll is
        regrouped per camera (sorted, so results are deterministic),
        submitted per camera with the camera id as the tenant, coalesced
        into micro-batches, and served; offsets commit only after every
        camera in the poll resolved.  Returns
        {camera_id: [BatchExitDecisions, ...]}.  ``gateway_config`` (a
        :class:`repro.serving.GatewayConfig`) turns on admission control
        and rate limits; the default never sheds.
        """
        from repro.serving import serve_camera_topic

        topic = self.attach_camera_feed()
        return serve_camera_topic(deployment, policy, self.bus, topic,
                                  batch_size=batch_size, group=group,
                                  poll_size=poll_size,
                                  config=gateway_config)

    @property
    def last_visualization(self) -> str:
        return getattr(self, "_last_viz", "")

    # -- introspection --------------------------------------------------------------
    def describe_layers(self) -> Dict[str, Dict]:
        """The Fig. 1 inventory: what lives in each layer."""
        return {
            "data": {
                "sources": self.source_names(),
            },
            "hardware": {
                "edge_devices": len(self.topology.machines(Tier.EDGE)),
                "fog_nodes": len(self.topology.machines(Tier.FOG)),
                "analysis_servers": len(self.topology.machines(Tier.SERVER)),
                "cloud_nodes": len(self.topology.machines(Tier.CLOUD)),
                "yarn_vcores": self.yarn.total_vcores,
            },
            "software": {
                "dfs_datanodes": len(self.dfs.datanodes),
                "dfs_replication": self.dfs.namenode.replication,
                "htables": sorted(self._htables),
                "collections": self.documents.collection_names(),
                "bus_topics": self.bus.topic_names(),
            },
            "application": {
                "supported": ["vehicle-detection", "action-recognition",
                              "social-network-analysis", "multimodal-fusion",
                              "drl-camera-control"],
            },
        }
