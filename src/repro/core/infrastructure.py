"""The four-layer cyberinfrastructure of Fig. 1, assembled end-to-end.

:class:`CyberInfrastructure` wires every substrate this repository builds
into the architecture the paper describes:

- **data layer** — synthetic feeds (cameras, tweets, Waze, open city data,
  law-enforcement transfers) registered as sources;
- **hardware layer** — the simulated four-tier fog topology plus the YARN
  cluster behind the analysis servers;
- **software layer** — DFS + HBase + document store for storage, Flume
  agents and the message bus for ingestion, the Spark-like engine for
  mining, ``repro.nn`` for deep learning, and the viz exporters;
- **application layer** — deploy hooks for the Sec. IV applications.

``run_collection_pipeline`` executes the Fig. 4 flow for a batch of feeds:
sources -> transactional ingestion -> NoSQL -> a Spark aggregation -> a
visualization payload, returning per-stage record counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.cluster.machines import NetworkTopology, Tier
from repro.compute.rdd import SparkContext
from repro.compute.yarn import NodeManager, ResourceManager
from repro.dfs import DistributedFileSystem
from repro.nosql import DocumentStore, HTable
from repro.streaming import (
    Channel,
    FlumeAgent,
    FunctionSource,
    MessageBus,
    collection_sink,
)
from repro.viz.exporters import bar_chart_svg, timeseries_json


@dataclass
class InfraConfig:
    """Sizing knobs for the simulated deployment."""

    edges_per_fog: int = 4
    fogs_per_server: int = 2
    servers: int = 2
    datanodes: int = 4
    dfs_replication: int = 2
    dfs_block_size: int = 64 * 1024
    bus_partitions: int = 4
    yarn_vcores_per_server: int = 8
    yarn_memory_mb_per_server: int = 32_768

    def __post_init__(self):
        if self.datanodes < self.dfs_replication:
            raise ValueError(
                f"{self.datanodes} datanodes cannot hold "
                f"{self.dfs_replication} replicas")


@dataclass
class PipelineRunReport:
    """Per-stage accounting of one Fig. 4 collection pass."""

    records_ingested: Dict[str, int] = field(default_factory=dict)
    records_stored: Dict[str, int] = field(default_factory=dict)
    analysis_rows: int = 0
    viz_bytes: int = 0

    @property
    def total_ingested(self) -> int:
        return sum(self.records_ingested.values())


class CyberInfrastructure:
    """All four layers, ready for ingestion, analysis, and deployment."""

    def __init__(self, config: Optional[InfraConfig] = None):
        self.config = config or InfraConfig()
        cfg = self.config
        # Hardware layer.
        self.topology = NetworkTopology.build_fog_hierarchy(
            edges_per_fog=cfg.edges_per_fog,
            fogs_per_server=cfg.fogs_per_server,
            servers=cfg.servers)
        self.yarn = ResourceManager()
        for server in self.topology.machines(Tier.SERVER):
            self.yarn.register_node(NodeManager(
                server.name, vcores=cfg.yarn_vcores_per_server,
                memory_mb=cfg.yarn_memory_mb_per_server))
        # Software layer: storage.
        self.dfs = DistributedFileSystem.with_datanodes(
            cfg.datanodes, replication=cfg.dfs_replication,
            block_size=cfg.dfs_block_size)
        self.documents = DocumentStore("smartcity")
        self._htables: Dict[str, HTable] = {}
        # Software layer: streaming + compute.
        self.bus = MessageBus()
        self.spark = SparkContext(default_parallelism=4)
        self._sources: Dict[str, Callable[[], Iterable[Dict]]] = {}

    # -- storage helpers ---------------------------------------------------------
    def htable(self, name: str, families: Sequence[str] = ("d",)) -> HTable:
        """Get or create a wide-column table backed by the DFS."""
        if name not in self._htables:
            self._htables[name] = HTable(name, self.dfs, families=families)
        return self._htables[name]

    def collection(self, name: str):
        return self.documents.collection(name)

    # -- data layer registration ---------------------------------------------------
    def register_source(self, name: str,
                        records: Callable[[], Iterable[Dict]]) -> None:
        """Register a feed; ``records`` is called at collection time."""
        if name in self._sources:
            raise ValueError(f"source already registered: {name}")
        self._sources[name] = records
        if name not in self.bus.topic_names():
            self.bus.create_topic(name, partitions=self.config.bus_partitions)

    def source_names(self) -> List[str]:
        return sorted(self._sources)

    # -- the Fig. 4 pipeline -----------------------------------------------------------
    def run_collection_pipeline(self,
                                analysis_field: str = "district"
                                ) -> PipelineRunReport:
        """Collect every registered source, store, analyze, visualize.

        Each source flows through a transactional Flume agent into its
        document collection and onto its bus topic; a Spark job then
        aggregates all stored records by ``analysis_field``; the result is
        rendered to a bar-chart SVG (the web layer's input).
        """
        if not self._sources:
            raise RuntimeError("no sources registered")
        report = PipelineRunReport()
        for name, fetch in self._sources.items():
            records = list(fetch())
            coll = self.collection(name)
            before = len(coll)
            agent = FlumeAgent(
                FunctionSource(records),
                self._fanout_sink(name, coll),
                channel=Channel(capacity=max(len(records), 1)),
                batch_size=25)
            metrics = agent.run()
            report.records_ingested[name] = metrics.events_delivered
            report.records_stored[name] = len(coll) - before
        # Analysis: district-level counts across all stored collections.
        rows = []
        for name in self._sources:
            for document in self.collection(name).find({}):
                value = document.get(analysis_field)
                if value is not None:
                    rows.append((value, 1))
        counts = dict(
            self.spark.parallelize(rows).reduceByKey(lambda a, b: a + b)
            .collect()) if rows else {}
        report.analysis_rows = len(counts)
        svg = bar_chart_svg(
            {str(k): float(v) for k, v in sorted(counts.items())},
            title=f"records by {analysis_field}") if counts else ""
        report.viz_bytes = len(svg.encode())
        self._last_viz = svg
        return report

    def _fanout_sink(self, topic: str, coll):
        store = collection_sink(coll)

        def sink(events):
            store(events)
            for event in events:
                self.bus.produce(topic, event)

        return sink

    @property
    def last_visualization(self) -> str:
        return getattr(self, "_last_viz", "")

    # -- introspection --------------------------------------------------------------
    def describe_layers(self) -> Dict[str, Dict]:
        """The Fig. 1 inventory: what lives in each layer."""
        return {
            "data": {
                "sources": self.source_names(),
            },
            "hardware": {
                "edge_devices": len(self.topology.machines(Tier.EDGE)),
                "fog_nodes": len(self.topology.machines(Tier.FOG)),
                "analysis_servers": len(self.topology.machines(Tier.SERVER)),
                "cloud_nodes": len(self.topology.machines(Tier.CLOUD)),
                "yarn_vcores": self.yarn.total_vcores,
            },
            "software": {
                "dfs_datanodes": len(self.dfs.datanodes),
                "dfs_replication": self.dfs.namenode.replication,
                "htables": sorted(self._htables),
                "collections": self.documents.collection_names(),
                "bus_topics": self.bus.topic_names(),
            },
            "application": {
                "supported": ["vehicle-detection", "action-recognition",
                              "social-network-analysis", "multimodal-fusion",
                              "drl-camera-control"],
            },
        }
