"""The cyberinfrastructure facade (Fig. 1 and Fig. 4)."""

from repro.core.infrastructure import CyberInfrastructure, InfraConfig, PipelineRunReport

__all__ = ["CyberInfrastructure", "InfraConfig", "PipelineRunReport"]
