"""Storage and ingest capacity planning for the video pipeline.

Sec. II-B distinguishes *temporary storage servers for raw data* from
*long-term storage servers for annotated data*: raw video is held briefly
while models run, and only compact annotations persist.  Given a camera
registry's aggregate feed rate, :class:`CapacityPlanner` answers the
sizing questions that design implies: how long a raw buffer lasts, how
much long-term space a year of annotations needs, and the compression
factor annotation buys — the paper's core storage argument, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class AnnotationProfile:
    """How raw frames map to persisted annotations.

    annotated_fraction:
        Fraction of frames with any detection worth indexing.
    bytes_per_annotation:
        Persisted record size per annotated frame (boxes + labels + meta).
    """

    annotated_fraction: float = 0.05
    bytes_per_annotation: int = 512

    def __post_init__(self):
        if not 0.0 <= self.annotated_fraction <= 1.0:
            raise ValueError(
                f"annotated_fraction must be in [0, 1]: {self.annotated_fraction}")
        if self.bytes_per_annotation < 1:
            raise ValueError(
                f"bytes_per_annotation must be >= 1: {self.bytes_per_annotation}")


class CapacityPlanner:
    """Sizing math over a camera registry's aggregate feed."""

    def __init__(self, registry, profile: Optional[AnnotationProfile] = None):
        self.registry = registry
        self.profile = profile or AnnotationProfile()

    # -- raw (temporary) tier --------------------------------------------------
    @property
    def raw_bytes_per_second(self) -> float:
        return float(self.registry.total_ingest_bytes_per_second())

    @property
    def frames_per_second(self) -> float:
        return float(sum(camera.fps for camera in self.registry))

    def raw_retention_seconds(self, storage_bytes: float) -> float:
        """How long a raw buffer of ``storage_bytes`` lasts at full ingest."""
        if storage_bytes < 0:
            raise ValueError(f"negative storage: {storage_bytes}")
        rate = self.raw_bytes_per_second
        if rate == 0:
            return float("inf")
        return storage_bytes / rate

    def raw_storage_for_retention(self, seconds: float) -> float:
        """Buffer size needed to hold ``seconds`` of raw video."""
        if seconds < 0:
            raise ValueError(f"negative retention: {seconds}")
        return seconds * self.raw_bytes_per_second

    # -- annotated (long-term) tier ---------------------------------------------
    @property
    def annotation_bytes_per_second(self) -> float:
        return (self.frames_per_second * self.profile.annotated_fraction
                * self.profile.bytes_per_annotation)

    def annotated_storage_for_days(self, days: float) -> float:
        if days < 0:
            raise ValueError(f"negative days: {days}")
        return days * SECONDS_PER_DAY * self.annotation_bytes_per_second

    @property
    def compression_factor(self) -> float:
        """Raw rate / annotation rate — what annotation-before-storage buys."""
        annotated = self.annotation_bytes_per_second
        if annotated == 0:
            return float("inf")
        return self.raw_bytes_per_second / annotated

    def report(self, raw_buffer_bytes: float = 10e12,
               retention_days: float = 365.0) -> Dict[str, float]:
        """The sizing summary the hardware layer needs."""
        return {
            "cameras": float(len(self.registry)),
            "raw_gb_per_hour": self.raw_bytes_per_second * 3600 / 1e9,
            "raw_buffer_hours": self.raw_retention_seconds(
                raw_buffer_bytes) / 3600.0,
            "annotated_gb_per_year": self.annotated_storage_for_days(
                retention_days) / 1e9,
            "compression_factor": self.compression_factor,
        }
