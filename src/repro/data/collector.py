"""The tweet collector (Sec. II-A-2 substitute).

"Our cyberinfrastructure collects tweets via Twitter API based on specific
keywords and geospatial coordinates.  Users can easily add new keywords and
locations to gather tweets of interest."  :class:`TweetCollector` is that
component: subscriptions (keyword sets and geo circles) can be added and
removed at runtime; each accepted tweet is tagged with the subscriptions it
matched and published to a message-bus topic for the analysis pipeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.compute.mllib import tokenize
from repro.data.social import Tweet


@dataclass(frozen=True)
class KeywordSubscription:
    """Accept tweets containing any of the keywords."""

    name: str
    keywords: Tuple[str, ...]

    def matches(self, tweet: Tweet) -> bool:
        tokens = set(tokenize(tweet.text))
        return any(keyword.lower() in tokens for keyword in self.keywords)


@dataclass(frozen=True)
class GeoSubscription:
    """Accept tweets inside a circle around (x, y)."""

    name: str
    center: Tuple[float, float]
    radius: float

    def matches(self, tweet: Tweet) -> bool:
        return bool(np.hypot(tweet.location[0] - self.center[0],
                             tweet.location[1] - self.center[1])
                    <= self.radius)


class TweetCollector:
    """Keyword/geo-filtered collection into a bus topic.

    Parameters
    ----------
    bus / topic:
        Where accepted tweets are published (the topic is created if
        missing).  Pass ``bus=None`` for filter-only use.
    """

    def __init__(self, bus=None, topic: str = "tweets"):
        self.bus = bus
        self.topic = topic
        if bus is not None and topic not in bus.topic_names():
            bus.create_topic(topic)
        self._subscriptions: Dict[str, object] = {}
        self.accepted = 0
        self.rejected = 0

    # -- subscription management -------------------------------------------------
    def add_keywords(self, name: str, keywords: Sequence[str]) -> None:
        if not keywords:
            raise ValueError("a keyword subscription needs keywords")
        self._add(KeywordSubscription(name, tuple(keywords)))

    def add_location(self, name: str, center: Tuple[float, float],
                     radius: float) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive: {radius}")
        self._add(GeoSubscription(name, tuple(center), radius))

    def _add(self, subscription) -> None:
        if subscription.name in self._subscriptions:
            raise ValueError(f"duplicate subscription: {subscription.name}")
        self._subscriptions[subscription.name] = subscription

    def remove(self, name: str) -> None:
        if name not in self._subscriptions:
            raise KeyError(f"no such subscription: {name}")
        del self._subscriptions[name]

    def subscription_names(self) -> List[str]:
        return sorted(self._subscriptions)

    # -- collection ----------------------------------------------------------------
    def matching_subscriptions(self, tweet: Tweet) -> List[str]:
        return sorted(name for name, sub in self._subscriptions.items()
                      if sub.matches(tweet))

    def collect(self, tweets: Iterable[Tweet]) -> List[Dict]:
        """Filter a stream; returns the accepted, tagged documents.

        A tweet is accepted when it matches at least one subscription.
        Accepted documents gain a ``matched`` list and are produced onto
        the bus topic (keyed by user for per-user ordering).
        """
        if not self._subscriptions:
            raise RuntimeError("no subscriptions registered")
        accepted_docs = []
        for tweet in tweets:
            matched = self.matching_subscriptions(tweet)
            if not matched:
                self.rejected += 1
                continue
            document = tweet.as_document()
            document["matched"] = matched
            accepted_docs.append(document)
            self.accepted += 1
            if self.bus is not None:
                self.bus.produce(self.topic, document, key=tweet.user_id)
        return accepted_docs
