"""Social-network data: gang networks, tweets, and Waze reports.

Substitutes for the paper's Twitter API / Waze CCP feeds and the law-
enforcement gang intelligence of Sec. IV-B.  The gang network generator is
calibrated to the statistics the paper reports for Baton Rouge:

    "of the 67 groups and gangs and their 982 members ... each gang member
     has a network size of 14 first-degree associates on average ...
     [second-degree extension] may yield a field of interest which contains
     approximately 200 second-degree associates."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.core import get_runtime

from repro.compute.graphx import Graph

#: Keyword pools for synthetic tweet text.
_CHATTER = ["game", "food", "school", "music", "weather", "mall", "party",
            "movie", "work", "gym"]
_INCIDENT_TERMS = ["shots", "fired", "heard", "gunshot", "police", "sirens",
                   "fight", "robbery", "scared", "avenue"]


class GangNetworkGenerator:
    """Co-offending network with the paper's Sec. IV-B shape."""

    def __init__(self, seed: int = 0):
        self._rng = get_runtime().rng.np_child("data.social.gangs", seed)

    def generate(self, num_groups: int = 67, total_members: int = 982,
                 mean_first_degree: float = 14.0,
                 within_group_fraction: float = 0.4) -> Graph:
        """Build the gang graph.

        Members are split across groups (sizes drawn to sum exactly).
        ``within_group_fraction`` of ties stay inside a group; the rest are
        cross-group co-offending links ("a relationship connection through
        a shared co-offender", Sec. IV-B).  The default keeps the realized
        mean degree at ``mean_first_degree`` and the mean second-degree
        field near the ~200 the paper reports: dense clustering would make
        first-degree neighborhoods overlap and shrink the field, so ties
        must be substantially cross-group.
        """
        if not 0.0 <= within_group_fraction <= 1.0:
            raise ValueError(
                f"within_group_fraction must be in [0, 1]: {within_group_fraction}")
        if num_groups < 1 or total_members < num_groups:
            raise ValueError("need at least one member per group")
        rng = self._rng
        # Group sizes: multinomial around the mean, min 1 each.
        base = total_members // num_groups
        sizes = np.full(num_groups, base)
        for index in rng.choice(num_groups, total_members - base * num_groups,
                                replace=True):
            sizes[index] += 1
        vertices: Dict[str, Dict] = {}
        members_by_group: List[List[str]] = []
        counter = itertools.count()
        for group in range(num_groups):
            members = []
            for _ in range(int(sizes[group])):
                member_id = f"m{next(counter):04d}"
                vertices[member_id] = {"group": group}
                members.append(member_id)
            members_by_group.append(members)

        target_edges = int(total_members * mean_first_degree / 2)
        edges = set()
        within_target = int(target_edges * within_group_fraction)
        attempts = 0
        while len(edges) < within_target and attempts < target_edges * 50:
            attempts += 1
            group = int(rng.integers(num_groups))
            members = members_by_group[group]
            if len(members) < 2:
                continue
            a, b = rng.choice(len(members), 2, replace=False)
            edge = tuple(sorted((members[a], members[b])))
            edges.add(edge)
        all_members = [m for group in members_by_group for m in group]
        while len(edges) < target_edges:
            a, b = rng.choice(len(all_members), 2, replace=False)
            edge = tuple(sorted((all_members[a], all_members[b])))
            edges.add(edge)
        return Graph(vertices, sorted(edges))


@dataclass(frozen=True)
class Tweet:
    """One synthetic tweet."""

    tweet_id: int
    user_id: str
    text: str
    location: Tuple[float, float]
    time: float

    def as_document(self) -> Dict:
        return {
            "tweet_id": self.tweet_id,
            "user_id": self.user_id,
            "text": self.text,
            "location": list(self.location),
            "time": self.time,
        }


class TweetGenerator:
    """Keyword/geo-filtered tweet streams (the Twitter collector role).

    Ordinary users emit chatter uniformly over the city square [0, 1]^2.
    ``incident_burst`` produces tweets near a given place/time from a given
    user set, mixing incident vocabulary in — the signal the Sec. IV-B
    multimodal triangulation looks for.
    """

    def __init__(self, num_users: int = 100, seed: int = 0):
        if num_users < 1:
            raise ValueError(f"num_users must be >= 1: {num_users}")
        self._rng = get_runtime().rng.np_child("data.social.tweets", seed)
        self.users = [f"user{i:04d}" for i in range(num_users)]
        self._ids = itertools.count(1)

    def _text(self, incident: bool) -> str:
        rng = self._rng
        pool = _INCIDENT_TERMS if incident else _CHATTER
        words = [pool[int(rng.integers(len(pool)))] for _ in range(5)]
        if incident:
            words.insert(0, "just")
        return " ".join(words)

    def chatter(self, count: int, time_range: Tuple[float, float] = (0.0, 24.0)
                ) -> List[Tweet]:
        """Background tweets: random users, places and times."""
        rng = self._rng
        tweets = []
        for _ in range(count):
            tweets.append(Tweet(
                tweet_id=next(self._ids),
                user_id=self.users[int(rng.integers(len(self.users)))],
                text=self._text(incident=False),
                location=(float(rng.random()), float(rng.random())),
                time=float(rng.uniform(*time_range))))
        return tweets

    def incident_burst(self, user_ids: Sequence[str],
                       location: Tuple[float, float], time: float,
                       geo_spread: float = 0.02, time_spread: float = 0.5
                       ) -> List[Tweet]:
        """Incident-related tweets from specific users near (place, time)."""
        rng = self._rng
        tweets = []
        for user_id in user_ids:
            tweets.append(Tweet(
                tweet_id=next(self._ids),
                user_id=user_id,
                text=self._text(incident=True),
                location=(float(location[0] + rng.normal(0, geo_spread)),
                          float(location[1] + rng.normal(0, geo_spread))),
                time=float(time + rng.normal(0, time_spread))))
        return tweets

    @staticmethod
    def keyword_filter(tweets: Sequence[Tweet],
                       keywords: Sequence[str]) -> List[Tweet]:
        """Tweets containing any of the keywords (the collection filter)."""
        lowered = [k.lower() for k in keywords]
        return [t for t in tweets
                if any(k in t.text.lower() for k in lowered)]

    @staticmethod
    def geo_filter(tweets: Sequence[Tweet], center: Tuple[float, float],
                   radius: float) -> List[Tweet]:
        return [t for t in tweets
                if np.hypot(t.location[0] - center[0],
                            t.location[1] - center[1]) <= radius]


class WazeGenerator:
    """Crowd-sourced traffic reports (the Waze CCP role)."""

    REPORT_TYPES = ("JAM", "ACCIDENT", "HAZARD", "ROAD_CLOSED")

    def __init__(self, seed: int = 0):
        self._rng = get_runtime().rng.np_child("data.social.waze", seed)
        self._ids = itertools.count(1)

    def reports(self, count: int,
                time_range: Tuple[float, float] = (0.0, 24.0)) -> List[Dict]:
        """System-generated jams and user-reported incidents."""
        rng = self._rng
        out = []
        for _ in range(count):
            kind = self.REPORT_TYPES[int(rng.integers(len(self.REPORT_TYPES)))]
            out.append({
                "report_id": next(self._ids),
                "type": kind,
                "location": [float(rng.random()), float(rng.random())],
                "time": float(rng.uniform(*time_range)),
                "severity": int(rng.integers(1, 6)),
                "source": "system" if kind == "JAM" else "user",
            })
        return out
