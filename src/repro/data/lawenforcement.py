"""Law-enforcement data transfers with retention (Sec. II-A-4 substitute).

The paper receives monthly individual-level violent-crime files on a secure
server; uploads are deleted after 90 days.  :class:`LawEnforcementFeed`
generates those monthly batches (synthetic persons, no real PII) and
:class:`SecureStore` enforces the authorization and retention rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.core import get_runtime

VIOLENT_OFFENSES = ("homicide", "robbery", "aggravated assault",
                    "illegal use of a weapon")

_AGENCIES = ("BRPD", "EBRSO", "LSUPD")


class LawEnforcementFeed:
    """Monthly batches of individual-level incident records."""

    def __init__(self, seed: int = 0, num_persons: int = 300):
        if num_persons < 2:
            raise ValueError(f"num_persons must be >= 2: {num_persons}")
        self._rng = get_runtime().rng.np_child("data.lawenforcement", seed)
        self._ids = itertools.count(1)
        self.persons = [f"p{i:05d}" for i in range(num_persons)]

    def monthly_batch(self, month: int, incidents: int = 40) -> List[Dict]:
        """One month's transfer: incident rows with involved persons."""
        rng = self._rng
        records = []
        for _ in range(incidents):
            involved = rng.choice(len(self.persons),
                                  size=int(rng.integers(2, 5)), replace=False)
            suspects = [self.persons[i] for i in involved[:len(involved) // 2 + 1]]
            victims = [self.persons[i] for i in involved[len(involved) // 2 + 1:]]
            records.append({
                "report_number": next(self._ids),
                "month": month,
                "offense": VIOLENT_OFFENSES[int(rng.integers(len(VIOLENT_OFFENSES)))],
                "offense_code": f"LA-{int(rng.integers(100, 999))}",
                "district": int(rng.integers(1, 7)),
                "address_block": f"{int(rng.integers(1, 99)) * 100} block",
                "day": int(rng.integers(1, 29)),
                "hour": float(rng.uniform(0, 24)),
                "agency": str(rng.choice(_AGENCIES)),
                "suspects": suspects,
                "victims": victims,
            })
        return records

    def co_offense_edges(self, records: Sequence[Dict]) -> List[tuple]:
        """(person, person) pairs linked in place and time by incidents —
        the raw material of the Sec. IV-B co-offending network."""
        edges = set()
        for record in records:
            people = list(record["suspects"]) + list(record["victims"])
            for i, a in enumerate(people):
                for b in people[i + 1:]:
                    edges.add(tuple(sorted((a, b))))
        return sorted(edges)


@dataclass
class _Upload:
    day_uploaded: int
    records: List[Dict] = field(default_factory=list)


class SecureStore:
    """Authorized-access store with a hard retention window.

    Mirrors the paper's arrangement: agencies upload on day 1 of each month
    via a unique URL; files are deleted after 90 days.
    """

    def __init__(self, retention_days: int = 90):
        if retention_days < 1:
            raise ValueError(f"retention_days must be >= 1: {retention_days}")
        self.retention_days = retention_days
        self._uploads: Dict[str, _Upload] = {}
        self.purged_uploads = 0

    def upload(self, upload_id: str, records: Sequence[Dict],
               day: int) -> None:
        if upload_id in self._uploads:
            raise ValueError(f"duplicate upload id: {upload_id}")
        self._uploads[upload_id] = _Upload(day_uploaded=day,
                                           records=list(records))

    def read(self, upload_id: str, authorized: bool = False) -> List[Dict]:
        if not authorized:
            raise PermissionError(
                "law-enforcement data requires authorized access")
        upload = self._uploads.get(upload_id)
        if upload is None:
            raise KeyError(f"no such upload (possibly purged): {upload_id}")
        return list(upload.records)

    def purge(self, current_day: int) -> int:
        """Delete uploads older than the retention window; returns count."""
        expired = [uid for uid, up in self._uploads.items()
                   if current_day - up.day_uploaded > self.retention_days]
        for upload_id in expired:
            del self._uploads[upload_id]
        self.purged_uploads += len(expired)
        return len(expired)

    def upload_ids(self) -> List[str]:
        return sorted(self._uploads)
