"""The DOTD highway camera network (Fig. 2 substitute).

The paper connects to 200+ Louisiana DOTD cameras along the interstates
around nine cities, densest in Baton Rouge.  This module builds a synthetic
registry with the same structure: cameras are placed along interstate
segments near each city, with per-camera stream parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.core import get_runtime


@dataclass(frozen=True)
class City:
    """A covered city with approximate coordinates."""

    name: str
    lat: float
    lon: float
    interstates: Tuple[str, ...]


#: The nine cities the paper names (Sec. II-A-1), with the interstates that
#: pass near each.  Coordinates are approximate city centers.
LOUISIANA_CITIES: Tuple[City, ...] = (
    City("New Orleans", 29.95, -90.07, ("I-10", "I-610")),
    City("Baton Rouge", 30.45, -91.15, ("I-10", "I-12", "I-110")),
    City("Houma", 29.60, -90.72, ("US-90",)),
    City("Shreveport", 32.52, -93.75, ("I-20", "I-49")),
    City("Lafayette", 30.22, -92.02, ("I-10", "I-49")),
    City("North Shore", 30.41, -90.08, ("I-12", "I-10")),
    City("Lake Charles", 30.23, -93.22, ("I-10", "I-210")),
    City("Monroe", 32.51, -92.12, ("I-20",)),
    City("Alexandria", 31.31, -92.45, ("I-49",)),
)


@dataclass(frozen=True)
class Camera:
    """One traffic/surveillance camera."""

    camera_id: str
    city: str
    highway: str
    lat: float
    lon: float
    fps: int
    width: int
    height: int

    @property
    def bytes_per_frame(self) -> int:
        return self.width * self.height * 3

    @property
    def bytes_per_second(self) -> int:
        return self.bytes_per_frame * self.fps


class CameraRegistry:
    """Queryable collection of cameras."""

    def __init__(self, cameras: Sequence[Camera]):
        self._cameras = list(cameras)
        ids = [c.camera_id for c in self._cameras]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate camera ids")

    def __len__(self) -> int:
        return len(self._cameras)

    def __iter__(self):
        return iter(self._cameras)

    def all(self) -> List[Camera]:
        return list(self._cameras)

    def by_city(self, city: str) -> List[Camera]:
        return [c for c in self._cameras if c.city == city]

    def by_highway(self, highway: str) -> List[Camera]:
        return [c for c in self._cameras if c.highway == highway]

    def cities(self) -> List[str]:
        return sorted({c.city for c in self._cameras})

    def get(self, camera_id: str) -> Camera:
        for camera in self._cameras:
            if camera.camera_id == camera_id:
                return camera
        raise KeyError(f"unknown camera: {camera_id}")

    def nearest(self, lat: float, lon: float) -> Camera:
        if not self._cameras:
            raise ValueError("registry is empty")
        return min(self._cameras,
                   key=lambda c: (c.lat - lat) ** 2 + (c.lon - lon) ** 2)

    def within_radius(self, lat: float, lon: float,
                      radius_deg: float) -> List[Camera]:
        return [c for c in self._cameras
                if math.hypot(c.lat - lat, c.lon - lon) <= radius_deg]

    def total_ingest_bytes_per_second(self) -> int:
        return sum(c.bytes_per_second for c in self._cameras)

    def coverage_summary(self) -> List[Dict]:
        """Per-city camera counts and feed rates (the Fig. 2 table)."""
        rows = []
        for city in self.cities():
            cameras = self.by_city(city)
            rows.append({
                "city": city,
                "cameras": len(cameras),
                "highways": sorted({c.highway for c in cameras}),
                "mbytes_per_second": sum(
                    c.bytes_per_second for c in cameras) / 1e6,
            })
        return rows


def build_dotd_registry(seed: int = 0,
                        cameras_per_city: Optional[Dict[str, int]] = None
                        ) -> CameraRegistry:
    """Construct the synthetic DOTD network: >200 cameras, 9 cities.

    Cameras are scattered along each city's interstates within ~0.2 degrees
    of the city center; Baton Rouge (the paper's focus, Fig. 2) gets the
    densest coverage by default.
    """
    rng = get_runtime().rng.np_child("data.cameras", seed)
    default_counts = {city.name: 20 for city in LOUISIANA_CITIES}
    default_counts["Baton Rouge"] = 45
    default_counts["New Orleans"] = 35
    counts = dict(default_counts)
    if cameras_per_city:
        counts.update(cameras_per_city)
    cameras: List[Camera] = []
    for city in LOUISIANA_CITIES:
        count = counts.get(city.name, 0)
        for index in range(count):
            highway = city.interstates[index % len(city.interstates)]
            # Place along a rough line through the city with jitter.
            t = (index / max(count - 1, 1)) - 0.5
            angle = (hash(highway) % 180) * math.pi / 180.0
            lat = city.lat + 0.2 * t * math.sin(angle) + rng.normal(0, 0.01)
            lon = city.lon + 0.2 * t * math.cos(angle) + rng.normal(0, 0.01)
            cameras.append(Camera(
                camera_id=f"{city.name.lower().replace(' ', '-')}-{index:03d}",
                city=city.name,
                highway=highway,
                lat=round(lat, 5),
                lon=round(lon, 5),
                fps=int(rng.choice([10, 15, 30])),
                width=640, height=480))
    return CameraRegistry(cameras)
