"""Synthetic city data generators (substitutes for the paper's feeds).

Every generator is deterministic under a seed.  Each module documents which
paper data source it replaces:

- :mod:`repro.data.cameras` — the DOTD highway camera network (Fig. 2).
- :mod:`repro.data.video` — traffic-scene frames and action clips standing
  in for live camera feeds (Sec. II-A-1) and the 32k-image / 400-class
  vehicle dataset (Sec. IV-A-1).
- :mod:`repro.data.social` — tweets, Waze reports, and the gang
  co-offending network with the Sec. IV-B statistics.
- :mod:`repro.data.city` — Baton Rouge open-data records (Sec. II-A-3).
- :mod:`repro.data.lawenforcement` — monthly individual-level crime
  transfers with the 90-day retention rule (Sec. II-A-4).
"""

from repro.data.cameras import Camera, CameraRegistry, City, build_dotd_registry
from repro.data.video import ActionClipGenerator, SceneGenerator, VehicleCatalog
from repro.data.social import (
    GangNetworkGenerator,
    TweetGenerator,
    WazeGenerator,
)
from repro.data.city import OpenCityData
from repro.data.collector import GeoSubscription, KeywordSubscription, TweetCollector
from repro.data.lawenforcement import LawEnforcementFeed, SecureStore

__all__ = [
    "City", "Camera", "CameraRegistry", "build_dotd_registry",
    "SceneGenerator", "ActionClipGenerator", "VehicleCatalog",
    "GangNetworkGenerator", "TweetGenerator", "WazeGenerator",
    "OpenCityData",
    "LawEnforcementFeed", "SecureStore",
    "TweetCollector", "KeywordSubscription", "GeoSubscription",
]
