"""Procedural traffic scenes and action clips (camera-feed substitute).

Real DOTD video is unavailable, so these generators render controllable
synthetic frames that exercise the identical model/pipeline code paths:

- :class:`VehicleCatalog` — the 400-class make/model/year catalog of
  Sec. IV-A-1 (Stanford cars + crawled images -> 32,000 images, 400
  classes).
- :class:`SceneGenerator` — grayscale frames containing rendered vehicles
  with per-class visual signatures and exact ground-truth boxes, plus
  single-vehicle classification datasets.
- :class:`ActionClipGenerator` — short frame sequences whose *temporal*
  pattern encodes an action class (the Fig. 7 recognition target);
  per-frame appearance alone is deliberately ambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.core import get_runtime

from repro.nn.models.yolo import GroundTruthBox

_MAKES = ["Toyota", "Ford", "Chevrolet", "Honda", "Nissan", "Dodge",
          "Jeep", "GMC", "Hyundai", "Kia"]
_MODELS = ["Sedan", "Coupe", "SUV", "Pickup", "Van", "Hatchback",
           "Wagon", "Crossover"]
_YEARS = [2012, 2013, 2014, 2015, 2016]

ACTION_CLASSES = ("walking", "running", "loitering", "fighting", "breaking_in")


class VehicleCatalog:
    """Deterministic make/model/year class catalog.

    ``VehicleCatalog(400)`` enumerates 400 distinct (make, model, year)
    combinations — the label space of the paper's vehicle classifier.
    """

    def __init__(self, num_classes: int = 400):
        capacity = len(_MAKES) * len(_MODELS) * len(_YEARS)
        if not 1 <= num_classes <= capacity:
            raise ValueError(
                f"num_classes must be in [1, {capacity}]: {num_classes}")
        self.num_classes = num_classes

    def label(self, class_id: int) -> str:
        if not 0 <= class_id < self.num_classes:
            raise ValueError(f"class_id out of range: {class_id}")
        make = _MAKES[class_id % len(_MAKES)]
        model = _MODELS[(class_id // len(_MAKES)) % len(_MODELS)]
        year = _YEARS[(class_id // (len(_MAKES) * len(_MODELS))) % len(_YEARS)]
        return f"{year} {make} {model}"

    def labels(self) -> List[str]:
        return [self.label(i) for i in range(self.num_classes)]


class SceneGenerator:
    """Renders traffic frames with ground truth.

    Frames are single-channel (N, 1, H, W) arrays in [0, 1].  Each vehicle
    class has a fixed 4x4 micro-pattern (its "visual signature") scaled to
    the vehicle's box, so a classifier genuinely has something to learn.
    """

    def __init__(self, image_size: int = 32, num_classes: int = 10,
                 seed: int = 0, noise: float = 0.05):
        if image_size < 8:
            raise ValueError(f"image_size must be >= 8: {image_size}")
        if num_classes < 1:
            raise ValueError(f"num_classes must be >= 1: {num_classes}")
        self.image_size = image_size
        self.num_classes = num_classes
        self.noise = noise
        self._rng = get_runtime().rng.np_child("data.video.scenes", seed)
        # Per-class signature: a fixed 4x4 pattern in [0.3, 1.0].
        signature_rng = get_runtime().rng.np_child("data.video.signatures", seed)
        self._signatures = signature_rng.uniform(
            0.3, 1.0, size=(num_classes, 4, 4))

    def render_vehicle(self, class_id: int, height: int, width: int
                       ) -> np.ndarray:
        """The class's signature pattern resized to (height, width)."""
        if not 0 <= class_id < self.num_classes:
            raise ValueError(f"class_id out of range: {class_id}")
        signature = self._signatures[class_id]
        rows = np.linspace(0, 3.999, height).astype(int)
        cols = np.linspace(0, 3.999, width).astype(int)
        return signature[np.ix_(rows, cols)]

    def generate_scene(self, num_vehicles: int = 2,
                       min_size: Optional[int] = None,
                       max_size: Optional[int] = None
                       ) -> Tuple[np.ndarray, List[GroundTruthBox]]:
        """One frame plus its ground-truth boxes."""
        size = self.image_size
        min_size = min_size or max(6, size // 5)
        max_size = max_size or max(min_size + 1, size // 2)
        frame = self._rng.normal(0.1, self.noise, (1, size, size))
        boxes: List[GroundTruthBox] = []
        for _ in range(num_vehicles):
            class_id = int(self._rng.integers(self.num_classes))
            h = int(self._rng.integers(min_size, max_size + 1))
            w = int(self._rng.integers(min_size, max_size + 1))
            top = int(self._rng.integers(0, size - h + 1))
            left = int(self._rng.integers(0, size - w + 1))
            frame[0, top:top + h, left:left + w] = self.render_vehicle(
                class_id, h, w)
            boxes.append(GroundTruthBox(
                cx=(left + w / 2) / size, cy=(top + h / 2) / size,
                w=w / size, h=h / size, class_id=class_id))
        frame += self._rng.normal(0, self.noise, frame.shape)
        return np.clip(frame, 0.0, 1.0), boxes

    def generate_batch(self, num_scenes: int, vehicles_per_scene: int = 2
                       ) -> Tuple[np.ndarray, List[List[GroundTruthBox]]]:
        frames = np.zeros((num_scenes, 1, self.image_size, self.image_size))
        truth: List[List[GroundTruthBox]] = []
        for index in range(num_scenes):
            frame, boxes = self.generate_scene(vehicles_per_scene)
            frames[index] = frame
            truth.append(boxes)
        return frames, truth

    def classification_dataset(self, num_images: int,
                               patch_size: Optional[int] = None
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Single-vehicle crops with labels (the Sec. IV-A-1 dataset shape).

        Classes cycle round-robin so every class is represented when
        ``num_images >= num_classes``.
        """
        patch = patch_size or self.image_size
        images = np.zeros((num_images, 1, patch, patch))
        labels = np.zeros(num_images, dtype=int)
        for index in range(num_images):
            class_id = index % self.num_classes
            labels[index] = class_id
            images[index, 0] = self.render_vehicle(class_id, patch, patch)
            images[index, 0] += self._rng.normal(0, self.noise, (patch, patch))
        return np.clip(images, 0.0, 1.0), labels


class ActionClipGenerator:
    """Short clips whose motion pattern determines the action label.

    Classes (subset of the paper's "suspicious behaviours"):

    - ``walking``    — one blob drifting slowly left-to-right;
    - ``running``    — one blob crossing fast;
    - ``loitering``  — one blob jittering in place;
    - ``fighting``   — two blobs oscillating against each other;
    - ``breaking_in``— a blob approaching and stopping at a fixed doorway.

    Every class uses the same blob appearance, so single-frame models fall
    well short of temporal (LSTM) models — the property Fig. 7's
    architecture exploits and the tests assert.
    """

    def __init__(self, image_size: int = 16, frames: int = 8, seed: int = 0,
                 noise: float = 0.05):
        if image_size < 8:
            raise ValueError(f"image_size must be >= 8: {image_size}")
        if frames < 2:
            raise ValueError(f"frames must be >= 2: {frames}")
        self.image_size = image_size
        self.frames = frames
        self.noise = noise
        self.num_classes = len(ACTION_CLASSES)
        self._rng = get_runtime().rng.np_child("data.video.clips", seed)

    def _blob(self, frame: np.ndarray, x: float, y: float,
              radius: float = 1.8) -> None:
        size = self.image_size
        ys, xs = np.mgrid[0:size, 0:size]
        mask = np.exp(-(((xs - x) ** 2 + (ys - y) ** 2) / (2 * radius ** 2)))
        frame += 0.9 * mask

    def generate_clip(self, class_id: int) -> np.ndarray:
        """One (T, 1, H, W) clip for the given action class."""
        if not 0 <= class_id < self.num_classes:
            raise ValueError(f"class_id out of range: {class_id}")
        action = ACTION_CLASSES[class_id]
        size = self.image_size
        t_axis = np.arange(self.frames)
        clip = np.zeros((self.frames, 1, size, size))
        y0 = size / 2 + self._rng.normal(0, 1)
        phase = self._rng.uniform(0, 2 * np.pi)
        for t in range(self.frames):
            frame = np.zeros((size, size))
            progress = t / (self.frames - 1)
            if action == "walking":
                self._blob(frame, 2 + progress * (size - 4) * 0.4, y0)
            elif action == "running":
                self._blob(frame, 2 + progress * (size - 4), y0)
            elif action == "loitering":
                self._blob(frame,
                           size / 2 + 0.7 * np.sin(phase + t),
                           y0 + 0.7 * np.cos(phase + t))
            elif action == "fighting":
                offset = 2.0 * np.sin(phase + 2.5 * t)
                self._blob(frame, size / 2 - 2 + offset, y0)
                self._blob(frame, size / 2 + 2 - offset, y0)
            elif action == "breaking_in":
                # fixed "doorway" at the right edge; blob approaches, stops
                frame[int(size * 0.3):int(size * 0.7), size - 2:] = 0.5
                x = 2 + min(progress * 2.0, 1.0) * (size - 5)
                self._blob(frame, x, y0)
            frame += self._rng.normal(0, self.noise, (size, size))
            clip[t, 0] = np.clip(frame, 0.0, 1.0)
        return clip

    def dataset(self, clips_per_class: int
                ) -> Tuple[np.ndarray, np.ndarray]:
        """(N, T, 1, H, W) clips and integer labels, classes interleaved."""
        if clips_per_class < 1:
            raise ValueError(f"clips_per_class must be >= 1: {clips_per_class}")
        total = clips_per_class * self.num_classes
        clips = np.zeros((total, self.frames, 1, self.image_size,
                          self.image_size))
        labels = np.zeros(total, dtype=int)
        for index in range(total):
            class_id = index % self.num_classes
            clips[index] = self.generate_clip(class_id)
            labels[index] = class_id
        return clips, labels
