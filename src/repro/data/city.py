"""Baton Rouge open-data substitute (Sec. II-A-3).

Generates the record families the paper lists: public safety (crime and
fire incidents), government (citizen service requests), and transportation
(traffic incidents, potholes).  District-level crime rates are heterogeneous
so hotspot analyses have structure to find.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.core import get_runtime

CRIME_TYPES = ("homicide", "robbery", "aggravated assault", "burglary",
               "theft", "illegal weapon use")

#: Relative crime intensity per district (district id -> rate multiplier).
DISTRICT_RATES = {1: 1.8, 2: 1.2, 3: 0.7, 4: 2.4, 5: 0.5, 6: 1.0}

#: Rough district centers on the unit city square.
DISTRICT_CENTERS = {
    1: (0.2, 0.7), 2: (0.5, 0.8), 3: (0.8, 0.7),
    4: (0.3, 0.3), 5: (0.7, 0.2), 6: (0.5, 0.5),
}


class OpenCityData:
    """Deterministic generator for the open-data record families."""

    def __init__(self, seed: int = 0):
        self._rng = get_runtime().rng.np_child("data.city", seed)
        self._ids = itertools.count(1)

    def _district_location(self, district: int) -> List[float]:
        cx, cy = DISTRICT_CENTERS[district]
        return [float(np.clip(cx + self._rng.normal(0, 0.08), 0, 1)),
                float(np.clip(cy + self._rng.normal(0, 0.08), 0, 1))]

    def crime_incidents(self, days: int, base_daily_rate: float = 3.0
                        ) -> List[Dict]:
        """Poisson per-district daily incidents over ``days`` days."""
        if days < 1:
            raise ValueError(f"days must be >= 1: {days}")
        rng = self._rng
        records = []
        for day in range(days):
            for district, multiplier in DISTRICT_RATES.items():
                count = rng.poisson(base_daily_rate * multiplier)
                for _ in range(count):
                    records.append({
                        "incident_id": next(self._ids),
                        "kind": "crime",
                        "offense": CRIME_TYPES[int(rng.integers(len(CRIME_TYPES)))],
                        "district": district,
                        "location": self._district_location(district),
                        "day": day,
                        "hour": float(rng.uniform(0, 24)),
                    })
        return records

    def emergency_calls(self, days: int, daily_rate: float = 20.0
                        ) -> List[Dict]:
        """911 call records (time, district, priority)."""
        rng = self._rng
        records = []
        for day in range(days):
            for _ in range(rng.poisson(daily_rate)):
                district = int(rng.choice(list(DISTRICT_RATES)))
                records.append({
                    "call_id": next(self._ids),
                    "kind": "911",
                    "district": district,
                    "location": self._district_location(district),
                    "day": day,
                    "hour": float(rng.uniform(0, 24)),
                    "priority": int(rng.integers(1, 4)),
                })
        return records

    def traffic_incidents(self, days: int, daily_rate: float = 8.0
                          ) -> List[Dict]:
        rng = self._rng
        records = []
        for day in range(days):
            for _ in range(rng.poisson(daily_rate)):
                records.append({
                    "incident_id": next(self._ids),
                    "kind": "traffic",
                    "severity": int(rng.integers(1, 5)),
                    "location": [float(rng.random()), float(rng.random())],
                    "day": day,
                    "hour": float(rng.uniform(0, 24)),
                    "lanes_blocked": int(rng.integers(0, 3)),
                })
        return records

    def service_requests(self, days: int, daily_rate: float = 15.0
                         ) -> List[Dict]:
        """Citizen requests (potholes, signals, blight)."""
        rng = self._rng
        categories = ("pothole", "traffic signal", "street light", "blight",
                      "drainage")
        records = []
        for day in range(days):
            for _ in range(rng.poisson(daily_rate)):
                records.append({
                    "request_id": next(self._ids),
                    "kind": "service",
                    "category": categories[int(rng.integers(len(categories)))],
                    "location": [float(rng.random()), float(rng.random())],
                    "day": day,
                    "status": str(rng.choice(["open", "closed"])),
                })
        return records

    def daily_crime_counts(self, records: Sequence[Dict],
                           district: Optional[int] = None) -> List[int]:
        """Crime counts per day — the LSTM forecasting time series."""
        filtered = [r for r in records if r["kind"] == "crime"
                    and (district is None or r["district"] == district)]
        if not filtered:
            return []
        days = max(r["day"] for r in filtered) + 1
        counts = [0] * days
        for record in filtered:
            counts[record["day"]] += 1
        return counts
