"""End-to-end fog pipeline costing: analytic per-item and DES streaming.

Two complementary views of the Fig. 3 pipeline:

- :meth:`FogPipeline.item_cost` prices a single item analytically given the
  stage at which it resolves — compute time per tier plus transfer time per
  hop.  Used for threshold sweeps where per-item exit outcomes come from a
  real trained model.
- :meth:`FogPipeline.simulate_stream` runs a discrete-event simulation:
  items arrive at a configurable rate, every machine is a unit-capacity
  queueing resource, and exits are drawn per item.  This exposes queueing
  effects — an overloaded analysis server grows a backlog exactly as the
  paper's offloading rationale predicts.

Since the runtime refactor, the simulation emits everything through the
shared :mod:`repro.runtime` substrate instead of hand-rolled accumulators:

- ``fog.pipeline.stage`` spans (queue wait + service per stage,
  virtual-clock timestamps) and ``fog.pipeline.hop`` spans (transfer per
  hop);
- counters ``fog.pipeline.items_completed``, ``fog.pipeline.resolved``,
  ``fog.pipeline.bytes_shipped`` and ``fog.pipeline.machine_busy_s``;
- histogram ``fog.pipeline.item_latency_s``.

Failure model
-------------
The paper's offloading rationale (Sec. II-B-2) assumes edge and fog nodes
die constantly, so machine failure is a first-class simulation event here:
pass a :class:`FailureSpec` to either simulate entry point and a
:class:`~repro.cluster.failures.FailureProcess` drives seeded crash and
recovery events on the simulation clock.  Each item then walks its stages
fault-tolerantly:

- a crash *interrupts* in-flight work on the dead machine (both waiters in
  the queue and the item being serviced);
- each stage attempt may bound its queue wait with
  :attr:`FaultPolicy.stage_timeout_s`;
- failed attempts retry up to :attr:`FaultPolicy.max_attempts` times with
  deterministic exponential backoff, *failing over* to a live sibling
  machine of the same tier when the placed machine is dead (re-shipping
  the activation from the machine that last completed a stage);
- when an entire tier is dead or attempts are exhausted, the item
  *degrades*: it resolves at the deepest already-completed stage with an
  exit head (the paper's graceful-degradation-by-early-exit design), or is
  *dropped* when no exit was reached.

Outcomes are counted in ``fog.pipeline.items_completed`` /
``fog.pipeline.degraded`` / ``fog.pipeline.dropped`` (every arrival lands
in exactly one) plus ``fog.pipeline.retries`` and
``fog.pipeline.failovers``; crash/recovery records appear as
``cluster.failure`` / ``cluster.recovery`` events with sim timestamps.

:class:`StreamStats` is a thin view assembled from those registry series
after the run, so the existing benchmark/test API is unchanged while any
other layer's telemetry recorded during the same run shares one dump.
Exit draws come from the runtime's seeded :class:`~repro.runtime.RngContext`
(scope ``("fog.pipeline.exits", seed)``), and the failure schedule from
``("cluster.failures*", spec.seed)``, which makes identically-seeded runs
byte-identical end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.failures import FailureProcess
from repro.cluster.machines import Machine, NetworkTopology, failover_transfer_time
from repro.cluster.sim import Environment, Interrupt, Process, Resource
from repro.fog.split import Stage, TierPlacement
from repro.runtime import get_runtime


@dataclass
class ItemCost:
    """Cost breakdown for one item."""

    resolved_stage: int
    compute_s: float
    network_s: float
    bytes_shipped: int
    per_stage_compute: List[float] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.compute_s + self.network_s


@dataclass(frozen=True)
class FaultPolicy:
    """How an in-flight item reacts to crashes and stalls, per stage.

    Parameters
    ----------
    stage_timeout_s:
        Upper bound on the queue wait for a machine grant per attempt;
        ``None`` (the default) waits indefinitely, which reproduces the
        pre-failure-model behaviour for healthy runs — crashes still
        interrupt the wait.
    max_attempts:
        Attempts per stage (including the first) before the item gives up
        and degrades or drops.
    backoff_base_s:
        Retry ``n`` (1-based) sleeps ``backoff_base_s * 2**(n-1)`` before
        re-attempting — deterministic, so seeded runs replay exactly.
    """

    stage_timeout_s: Optional[float] = None
    max_attempts: int = 3
    backoff_base_s: float = 0.01

    def __post_init__(self):
        if self.stage_timeout_s is not None and self.stage_timeout_s <= 0:
            raise ValueError(
                f"stage_timeout_s must be > 0: {self.stage_timeout_s}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0: {self.backoff_base_s}")

    def backoff_s(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based)."""
        return self.backoff_base_s * (2 ** retry_index)


@dataclass(frozen=True)
class FailureSpec:
    """Configuration for the in-sim failure schedule of one run.

    ``simulate_stream`` / ``simulate_shared_streams`` turn this into a
    :class:`~repro.cluster.failures.FailureProcess` wired to the run's
    machine fabric, so crashes interrupt in-flight work and recoveries
    restore the placed machines.

    Parameters
    ----------
    seed:
        Drives victim choice and crash/repair timing (under the runtime's
        root seed); same spec + same runtime seed replays byte-identically.
    mean_time_to_failure_s / mean_time_to_repair_s:
        Exponential means; ``mean_time_to_repair_s=None`` leaves victims
        dead for the rest of the run.
    max_failures / horizon_s:
        Bounds on the schedule (at least one must be set, else the event
        queue would never drain).
    targets:
        Machine names eligible to crash; ``None`` targets every placed
        machine.
    """

    seed: int = 0
    mean_time_to_failure_s: float = 0.5
    mean_time_to_repair_s: Optional[float] = None
    max_failures: Optional[int] = 4
    horizon_s: Optional[float] = None
    targets: Optional[Sequence[str]] = None


@dataclass
class StreamStats:
    """Aggregate results of a simulated stream (a view over the registry).

    ``completed`` counts items that resolved at their intended stage;
    ``degraded`` items resolved early at the deepest completed exit after
    failures; ``dropped`` items never reached an exit.  Every arrival is
    exactly one of the three (see :attr:`accounted`).
    """

    completed: int
    mean_latency_s: float
    p95_latency_s: float
    max_latency_s: float
    resolved_per_stage: Dict[int, int]
    bytes_per_hop: Dict[str, int]
    machine_busy_s: Dict[str, float]
    degraded: int = 0
    dropped: int = 0
    retries: int = 0
    failovers: int = 0

    @property
    def accounted(self) -> int:
        """Total arrivals this stream accounted for, any outcome."""
        return self.completed + self.degraded + self.dropped

    def resolved_fraction(self, stage_index: int) -> float:
        if self.completed == 0:
            return 0.0
        return self.resolved_per_stage.get(stage_index, 0) / self.completed


def _draw_resolved_stages(stages: Sequence[Stage], num_items: int,
                          probabilities: Dict[int, float], rng) -> List[int]:
    """Per-item resolution stages under {stage: P(exit | reached)}."""
    last_stage = len(stages) - 1
    resolved_at = []
    for _ in range(num_items):
        stage = last_stage
        for index, spec in enumerate(stages):
            if spec.has_exit and probabilities:
                if rng.random() < probabilities.get(index, 0.0):
                    stage = index
                    break
        resolved_at.append(stage)
    return resolved_at


class _Fabric:
    """Shared machine state for one simulation run.

    One unit-capacity :class:`Resource` per machine (shared across every
    stream of the run), liveness-aware failover candidate selection, and
    the registry of in-flight processes that lets a crash interrupt the
    work queued or running on the dead machine.
    """

    def __init__(self, env: Environment, runtime, busy_id: str):
        self.env = env
        self.runtime = runtime
        self.busy_id = busy_id
        self._resources: Dict[str, Resource] = {}
        self._machines: Dict[str, Machine] = {}
        self._topology_of: Dict[str, NetworkTopology] = {}
        self._inflight: Dict[str, Dict[Process, None]] = {}

    def add_machine(self, name: str, topology: NetworkTopology) -> str:
        if name not in self._resources:
            self._machines[name] = topology.machine(name)
            self._topology_of[name] = topology
            self._resources[name] = Resource(self.env, capacity=1)
            self.runtime.registry.counter("fog.pipeline.machine_busy_s").inc(
                0.0, sim=self.busy_id, machine=name)
        return name

    def machine(self, name: str) -> Machine:
        return self._machines[name]

    def resource(self, name: str) -> Resource:
        return self._resources[name]

    def topology(self, name: str) -> NetworkTopology:
        return self._topology_of[name]

    def machine_names(self) -> List[str]:
        return sorted(self._resources)

    def resolve_target(self, name: str) -> Machine:
        """A :class:`Machine` for ``name``, from the fabric or any topology."""
        if name in self._machines:
            return self._machines[name]
        seen = set()
        for topology in self._topology_of.values():
            if id(topology) in seen:
                continue
            seen.add(id(topology))
            try:
                return topology.machine(name)
            except KeyError:
                continue
        raise KeyError(f"unknown failure target: {name}")

    def pick_machine(self, placed: str) -> Optional[str]:
        """``placed`` if alive, else the first live same-tier machine by name.

        Returns None when the whole tier is dead — the caller degrades.
        """
        machine = self._machines[placed]
        if machine.alive:
            return placed
        topology = self._topology_of[placed]
        candidates = sorted(topology.machines(machine.tier),
                            key=lambda m: m.name)
        for candidate in candidates:
            if candidate.alive:
                return self.add_machine(candidate.name, topology)
        return None

    def enter(self, name: str, process: Process) -> None:
        self._inflight.setdefault(name, {})[process] = None

    def leave(self, name: str, process: Process) -> None:
        self._inflight.get(name, {}).pop(process, None)

    def on_machine_fail(self, machine: Machine) -> None:
        """FailureInjector hook: interrupt everything in flight there."""
        for process in list(self._inflight.get(machine.name, {})):
            if process.is_alive:
                process.interrupt(("machine-crash", machine.name))


class _ItemHandle:
    """Lets an item generator learn its own Process for fabric registration."""

    __slots__ = ("process",)


def _spawn_item(env, runtime, pipeline: "FogPipeline", fabric: _Fabric,
                resolve_stage: int, run_id: str,
                policy: FaultPolicy) -> Process:
    handle = _ItemHandle()
    handle.process = env.process(_item_process(
        env, runtime, pipeline, fabric, resolve_stage, run_id, policy,
        handle))
    return handle.process


def _attempt_stage(env, runtime, fabric: _Fabric, index: int,
                   machine_name: str, data_at: Optional[str],
                   stage_flops: float, hop_bytes: int, run_id: str,
                   handle: _ItemHandle, policy: FaultPolicy):
    """One attempt at one stage on one machine; returns True on success.

    Pays the activation hop when the item's data lives on another machine
    (re-shipping after a failover), then queues for the machine — bounded
    by ``policy.stage_timeout_s`` when set — and runs the service time.
    A crash of ``machine_name`` interrupts the hop, the wait, or the
    service; partial service time still counts as machine busy time.
    """
    machine = fabric.machine(machine_name)
    resource = fabric.resource(machine_name)
    registry = runtime.registry
    busy = registry.counter("fog.pipeline.machine_busy_s")
    service = stage_flops / machine.flops
    request = None
    service_start = None
    fabric.enter(machine_name, handle.process)
    try:
        if data_at is not None and data_at != machine_name:
            hop_time = failover_transfer_time(
                fabric.topology(machine_name), data_at, machine_name,
                hop_bytes)
            registry.counter("fog.pipeline.bytes_shipped").inc(
                hop_bytes, run=run_id, hop=f"{data_at}->{machine_name}")
            if hop_time > 0:
                with runtime.tracer.span("fog.pipeline.hop", run=run_id,
                                         machine=data_at):
                    yield env.timeout(hop_time)
        with runtime.tracer.span("fog.pipeline.stage", run=run_id,
                                 stage=index, machine=machine_name):
            request = resource.request()
            if not request.triggered:
                if policy.stage_timeout_s is None:
                    yield request
                else:
                    yield env.any_of(
                        [request, env.timeout(policy.stage_timeout_s)])
                    if not request.triggered:
                        return False  # grant timed out; finally withdraws
            service_start = env.now
            if service > 0:
                yield env.timeout(service)
            busy.inc(env.now - service_start, sim=fabric.busy_id,
                     machine=machine_name)
        return True
    except Interrupt:
        if service_start is not None and env.now > service_start:
            busy.inc(env.now - service_start, sim=fabric.busy_id,
                     machine=machine_name)
        return False
    finally:
        fabric.leave(machine_name, handle.process)
        if request is not None:
            resource.cancel(request)


def _resolve_disrupted(registry, run_id: str,
                       deepest_exit: Optional[int]) -> None:
    """Degrade to the deepest completed exit head, or drop the item."""
    if deepest_exit is not None:
        registry.counter("fog.pipeline.degraded").inc(
            run=run_id, stage=deepest_exit)
    else:
        registry.counter("fog.pipeline.dropped").inc(run=run_id)


def _item_process(env, runtime, pipeline: "FogPipeline", fabric: _Fabric,
                  resolve_stage: int, run_id: str, policy: FaultPolicy,
                  handle: _ItemHandle):
    """One item walking the placed stages fault-tolerantly.

    Every arrival terminates in exactly one of three outcomes —
    completed at its intended stage, degraded to the deepest completed
    exit, or dropped — regardless of the failure schedule; the module
    docstring describes the retry/failover/degradation rules.
    """
    registry = runtime.registry
    retries = registry.counter("fog.pipeline.retries")
    failovers = registry.counter("fog.pipeline.failovers")
    start = env.now
    data_at: Optional[str] = None     # machine holding the latest activation
    deepest_exit: Optional[int] = None
    try:
        for index in range(resolve_stage + 1):
            stage = pipeline.stages[index]
            placed = pipeline.placement.machines[index]
            stage_flops = stage.flops
            if stage.has_exit or index == resolve_stage:
                stage_flops += stage.exit_head_flops
            hop_bytes = (pipeline.stages[index - 1].output_bytes
                         if index > 0 else 0)
            attempts = 0
            chosen: Optional[str] = None
            while True:
                previous = chosen if chosen is not None else placed
                candidate = fabric.pick_machine(placed)
                if candidate is None:
                    _resolve_disrupted(registry, run_id, deepest_exit)
                    return None
                if candidate != previous:
                    failovers.inc(run=run_id, stage=index)
                chosen = candidate
                attempts += 1
                done = yield from _attempt_stage(
                    env, runtime, fabric, index, chosen, data_at,
                    stage_flops, hop_bytes, run_id, handle, policy)
                if done:
                    break
                if attempts >= policy.max_attempts:
                    _resolve_disrupted(registry, run_id, deepest_exit)
                    return None
                retries.inc(run=run_id, stage=index)
                backoff = policy.backoff_s(attempts - 1)
                if backoff > 0:
                    yield env.timeout(backoff)
            data_at = chosen
            if stage.has_exit:
                deepest_exit = index
    except Interrupt:
        # A stray interrupt outside an attempt (e.g. racing crash events)
        # must not lose the item from the accounting.
        _resolve_disrupted(registry, run_id, deepest_exit)
        return None
    registry.histogram("fog.pipeline.item_latency_s").observe(
        env.now - start, run=run_id)
    registry.counter("fog.pipeline.items_completed").inc(run=run_id)
    registry.counter("fog.pipeline.resolved").inc(run=run_id,
                                                  stage=resolve_stage)
    return None


def _sum_for_run(counter, run_id: str) -> float:
    """Sum of a counter's series belonging to one stream's run label."""
    return sum(value for labels, value in counter.labeled_series()
               if labels.get("run") == run_id)


def _stream_stats(runtime, pipeline: "FogPipeline", run_id: str,
                  busy_id: str) -> StreamStats:
    """Assemble a :class:`StreamStats` view from this run's registry series."""
    registry = runtime.registry
    latencies = registry.histogram("fog.pipeline.item_latency_s").values(run=run_id)
    latency_array = np.array(latencies) if latencies else np.zeros(0)

    resolved_counter: Dict[int, int] = {}
    resolved = registry.counter("fog.pipeline.resolved")
    for index in range(len(pipeline.stages)):
        count = resolved.value(run=run_id, stage=index)
        if count:
            resolved_counter[index] = int(count)

    bytes_per_hop: Dict[str, int] = {}
    shipped = registry.counter("fog.pipeline.bytes_shipped")
    for labels, value in shipped.labeled_series():
        if labels.get("run") == run_id and value:
            bytes_per_hop[labels["hop"]] = int(value)

    busy = registry.counter("fog.pipeline.machine_busy_s")
    machines = sorted(set(pipeline.placement.machines))
    machine_busy = {name: busy.value(sim=busy_id, machine=name)
                    for name in machines}

    return StreamStats(
        completed=len(latencies),
        mean_latency_s=float(latency_array.mean()) if latencies else 0.0,
        p95_latency_s=(float(np.percentile(latency_array, 95))
                       if latencies else 0.0),
        max_latency_s=float(latency_array.max()) if latencies else 0.0,
        resolved_per_stage=resolved_counter,
        bytes_per_hop=bytes_per_hop,
        machine_busy_s=machine_busy,
        degraded=int(_sum_for_run(
            registry.counter("fog.pipeline.degraded"), run_id)),
        dropped=int(_sum_for_run(
            registry.counter("fog.pipeline.dropped"), run_id)),
        retries=int(_sum_for_run(
            registry.counter("fog.pipeline.retries"), run_id)),
        failovers=int(_sum_for_run(
            registry.counter("fog.pipeline.failovers"), run_id)))


def _start_failures(env: Environment, fabric: _Fabric, spec: FailureSpec,
                    runtime) -> FailureProcess:
    """Wire a :class:`FailureProcess` to this run's fabric."""
    names = (list(spec.targets) if spec.targets is not None
             else fabric.machine_names())
    targets = [fabric.resolve_target(name) for name in names]
    return FailureProcess(
        env, targets, seed=spec.seed,
        mean_time_to_failure_s=spec.mean_time_to_failure_s,
        mean_time_to_repair_s=spec.mean_time_to_repair_s,
        max_failures=spec.max_failures,
        horizon_s=spec.horizon_s,
        on_fail=fabric.on_machine_fail,
        runtime=runtime)


def _simulate(runtime, stream_states: List[dict],
              failures: Optional[FailureSpec],
              fault_policy: Optional[FaultPolicy]) -> List[StreamStats]:
    """Run prepared streams (with per-item outcomes drawn) to completion."""
    policy = fault_policy or FaultPolicy()
    env = Environment(runtime=runtime)
    busy_id = runtime.gensym("fog-sim")
    fabric = _Fabric(env, runtime, busy_id)
    registry = runtime.registry
    for state in stream_states:
        pipeline: "FogPipeline" = state["pipeline"]
        for name in pipeline.placement.machines:
            fabric.add_machine(name, pipeline.placement.topology)
        state["run_id"] = runtime.gensym("fog-stream")
        # Pre-create the outcome series so dumps carry them even when a
        # run sees no disruption at all (the documented inc(0.0) idiom).
        for metric in ("retries", "failovers", "degraded", "dropped"):
            registry.counter(f"fog.pipeline.{metric}").inc(
                0.0, run=state["run_id"])

    if failures is not None:
        _start_failures(env, fabric, failures, runtime)

    def arrival_process(env, state):
        for item, stage in enumerate(state["resolved_at"]):
            _spawn_item(env, runtime, state["pipeline"], fabric, stage,
                        state["run_id"], policy)
            if state["interval"] > 0 and item < len(state["resolved_at"]) - 1:
                yield env.timeout(state["interval"])
        return None

    for state in stream_states:
        env.process(arrival_process(env, state))
    env.run()

    return [_stream_stats(runtime, state["pipeline"], state["run_id"],
                          busy_id)
            for state in stream_states]


def _validated_outcomes(stages: Sequence[Stage],
                        exit_outcomes: Sequence[int]) -> List[int]:
    last_stage = len(stages) - 1
    resolved_at = []
    for stage in exit_outcomes:
        stage = int(stage)
        if not 0 <= stage <= last_stage:
            raise ValueError(f"exit outcome {stage} out of range")
        resolved_at.append(stage)
    return resolved_at


def simulate_shared_streams(streams: Sequence[dict], seed: int = 0,
                            runtime=None,
                            failures: Optional[FailureSpec] = None,
                            fault_policy: Optional[FaultPolicy] = None
                            ) -> List[StreamStats]:
    """Run several pipelines' streams against *shared* machine queues.

    This models the paper's deployment reality: many edge devices feed a
    handful of fog nodes and one analysis server, so one camera's offloads
    queue behind another's.  Each entry of ``streams`` is a dict with keys
    ``pipeline`` (:class:`FogPipeline`), ``num_items``,
    ``arrival_interval_s`` and optionally ``exit_probabilities`` or
    ``exit_outcomes``.  Machines with the same name share a single
    unit-capacity resource across all streams; per-stream
    :class:`StreamStats` are returned in input order.  Each stream's
    ``machine_busy_s`` reports the *combined* busy time of its machines
    across all streams, matching the shared queues.

    Passing ``failures`` injects a seeded in-sim crash/recovery schedule
    shared by every stream; ``fault_policy`` tunes the per-item retry and
    failover behaviour (see the module docstring's failure model).
    """
    if not streams:
        raise ValueError("need at least one stream")
    runtime = runtime or get_runtime()
    rng = runtime.rng.child("fog.pipeline.exits", seed)
    stream_states: List[dict] = []
    for spec in streams:
        pipeline: "FogPipeline" = spec["pipeline"]
        num_items = spec["num_items"]
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1: {num_items}")
        if spec.get("exit_outcomes") is not None:
            if len(spec["exit_outcomes"]) != num_items:
                raise ValueError("need one exit outcome per item")
            resolved_at = _validated_outcomes(pipeline.stages,
                                              spec["exit_outcomes"])
        else:
            resolved_at = _draw_resolved_stages(
                pipeline.stages, num_items,
                spec.get("exit_probabilities") or {}, rng)
        stream_states.append({
            "pipeline": pipeline,
            "interval": spec["arrival_interval_s"],
            "resolved_at": resolved_at,
        })
    return _simulate(runtime, stream_states, failures, fault_policy)


class FogPipeline:
    """A placed stage chain ready for costing and simulation."""

    def __init__(self, placement: TierPlacement):
        self.placement = placement
        self.stages: Sequence[Stage] = placement.stages

    # -- analytic ------------------------------------------------------------
    def item_cost(self, resolved_stage: int) -> ItemCost:
        """Cost of one item that resolves at ``resolved_stage``.

        The item runs every stage up to and including ``resolved_stage``
        (paying each stage's main FLOPs plus its exit head where present)
        and ships each intermediate activation across its hop.
        """
        if not 0 <= resolved_stage < len(self.stages):
            raise ValueError(
                f"resolved_stage {resolved_stage} out of range "
                f"0..{len(self.stages) - 1}")
        compute = 0.0
        network = 0.0
        shipped = 0
        per_stage = []
        for index in range(resolved_stage + 1):
            stage = self.stages[index]
            machine = self.placement.machine_for(index)
            stage_flops = stage.flops
            if stage.has_exit or index == resolved_stage:
                stage_flops += stage.exit_head_flops
            seconds = stage_flops / machine.flops
            per_stage.append(seconds)
            compute += seconds
            if index < resolved_stage:
                network += self.placement.hop_transfer_time(
                    index, stage.output_bytes)
                if self.placement.machines[index] != self.placement.machines[index + 1]:
                    shipped += stage.output_bytes
        return ItemCost(resolved_stage=resolved_stage, compute_s=compute,
                        network_s=network, bytes_shipped=shipped,
                        per_stage_compute=per_stage)

    def mean_cost(self, resolution_profile: Dict[int, float]) -> ItemCost:
        """Expected cost under {stage_index: fraction resolving there}."""
        total = sum(resolution_profile.values())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"resolution fractions must sum to 1: {total}")
        compute = network = bytes_shipped = 0.0
        for stage_index, fraction in resolution_profile.items():
            cost = self.item_cost(stage_index)
            compute += fraction * cost.compute_s
            network += fraction * cost.network_s
            bytes_shipped += fraction * cost.bytes_shipped
        # Report as a synthetic item resolving at the deepest used stage.
        deepest = max(s for s, f in resolution_profile.items() if f > 0)
        return ItemCost(resolved_stage=deepest, compute_s=compute,
                        network_s=network, bytes_shipped=int(bytes_shipped))

    # -- discrete-event stream --------------------------------------------------
    def simulate_stream(self, num_items: int, arrival_interval_s: float,
                        exit_probabilities: Optional[Dict[int, float]] = None,
                        exit_outcomes: Optional[Sequence[int]] = None,
                        seed: int = 0, runtime=None,
                        failures: Optional[FailureSpec] = None,
                        fault_policy: Optional[FaultPolicy] = None
                        ) -> StreamStats:
        """Queueing simulation of a stream of items.

        Parameters
        ----------
        num_items / arrival_interval_s:
            Deterministic arrivals every ``arrival_interval_s`` seconds.
        exit_probabilities:
            {stage_index: P(exit at stage | reached stage)} for stages with
            exits; drawn per item from the runtime's seeded RNG context.
        exit_outcomes:
            Alternative: per-item resolved stage indices measured from a
            real model (overrides probabilities).
        failures:
            Optional :class:`FailureSpec`; when given, a seeded
            :class:`~repro.cluster.failures.FailureProcess` crashes and
            recovers machines on the simulation clock while items retry,
            fail over, and degrade per ``fault_policy``.
        fault_policy:
            Optional :class:`FaultPolicy`; defaults to unbounded queue
            waits with 3 attempts per stage.
        runtime:
            Observability runtime receiving spans/metrics; defaults to the
            installed one.
        """
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1: {num_items}")
        if arrival_interval_s < 0:
            raise ValueError("arrival_interval_s must be >= 0")
        if exit_outcomes is not None and len(exit_outcomes) != num_items:
            raise ValueError("need one exit outcome per item")
        runtime = runtime or get_runtime()
        if exit_outcomes is not None:
            resolved_at = _validated_outcomes(self.stages, exit_outcomes)
        else:
            rng = runtime.rng.child("fog.pipeline.exits", seed)
            resolved_at = _draw_resolved_stages(
                self.stages, num_items, exit_probabilities or {}, rng)
        stats = _simulate(runtime, [{
            "pipeline": self,
            "interval": arrival_interval_s,
            "resolved_at": resolved_at,
        }], failures, fault_policy)
        return stats[0]
