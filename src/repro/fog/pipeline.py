"""End-to-end fog pipeline costing: analytic per-item and DES streaming.

Two complementary views of the Fig. 3 pipeline:

- :meth:`FogPipeline.item_cost` prices a single item analytically given the
  stage at which it resolves — compute time per tier plus transfer time per
  hop.  Used for threshold sweeps where per-item exit outcomes come from a
  real trained model.
- :meth:`FogPipeline.simulate_stream` runs a discrete-event simulation:
  items arrive at a configurable rate, every machine is a unit-capacity
  queueing resource, and exits are drawn per item.  This exposes queueing
  effects — an overloaded analysis server grows a backlog exactly as the
  paper's offloading rationale predicts.

Since the runtime refactor, the simulation emits everything through the
shared :mod:`repro.runtime` substrate instead of hand-rolled accumulators:

- ``fog.stage`` spans (queue wait + service per stage, virtual-clock
  timestamps) and ``fog.hop`` spans (transfer per hop);
- counters ``fog.items_completed``, ``fog.resolved``,
  ``fog.bytes_shipped`` and ``fog.machine_busy_s``;
- histogram ``fog.item_latency_s``.

:class:`StreamStats` is a thin view assembled from those registry series
after the run, so the existing benchmark/test API is unchanged while any
other layer's telemetry recorded during the same run shares one dump.
Exit draws come from the runtime's seeded :class:`~repro.runtime.RngContext`
(scope ``("fog.pipeline.exits", seed)``), which makes identically-seeded
runs byte-identical end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.sim import Environment, Resource
from repro.fog.split import Stage, TierPlacement
from repro.runtime import get_runtime


@dataclass
class ItemCost:
    """Cost breakdown for one item."""

    resolved_stage: int
    compute_s: float
    network_s: float
    bytes_shipped: int
    per_stage_compute: List[float] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.compute_s + self.network_s


@dataclass
class StreamStats:
    """Aggregate results of a simulated stream (a view over the registry)."""

    completed: int
    mean_latency_s: float
    p95_latency_s: float
    max_latency_s: float
    resolved_per_stage: Dict[int, int]
    bytes_per_hop: Dict[str, int]
    machine_busy_s: Dict[str, float]

    def resolved_fraction(self, stage_index: int) -> float:
        if self.completed == 0:
            return 0.0
        return self.resolved_per_stage.get(stage_index, 0) / self.completed


def _draw_resolved_stages(stages: Sequence[Stage], num_items: int,
                          probabilities: Dict[int, float], rng) -> List[int]:
    """Per-item resolution stages under {stage: P(exit | reached)}."""
    last_stage = len(stages) - 1
    resolved_at = []
    for _ in range(num_items):
        stage = last_stage
        for index, spec in enumerate(stages):
            if spec.has_exit and probabilities:
                if rng.random() < probabilities.get(index, 0.0):
                    stage = index
                    break
        resolved_at.append(stage)
    return resolved_at


def _item_process(env, runtime, pipeline: "FogPipeline", resources,
                  resolve_stage: int, run_id: str, busy_id: str):
    """One item walking the placed stages; telemetry goes to ``runtime``.

    ``run_id`` labels this stream's own metrics; ``busy_id`` labels the
    machine busy-seconds counter, which is *shared* across every stream
    of one simulation so contention shows up as combined utilization.
    """
    registry = runtime.registry
    busy = registry.counter("fog.pipeline.machine_busy_s")
    shipped = registry.counter("fog.pipeline.bytes_shipped")
    start = env.now
    for index in range(resolve_stage + 1):
        stage = pipeline.stages[index]
        machine_name = pipeline.placement.machines[index]
        machine = pipeline.placement.topology.machine(machine_name)
        stage_flops = stage.flops
        if stage.has_exit or index == resolve_stage:
            stage_flops += stage.exit_head_flops
        service = stage_flops / machine.flops
        with runtime.tracer.span("fog.pipeline.stage", run=run_id, stage=index,
                                 machine=machine_name):
            request = resources[machine_name].request()
            yield request
            try:
                if service > 0:
                    yield env.timeout(service)
                busy.inc(service, sim=busy_id, machine=machine_name)
            finally:
                resources[machine_name].release(request)
        if index < resolve_stage:
            hop_time = pipeline.placement.hop_transfer_time(
                index, stage.output_bytes)
            next_machine = pipeline.placement.machines[index + 1]
            if machine_name != next_machine:
                hop = f"{machine_name}->{next_machine}"
                shipped.inc(stage.output_bytes, run=run_id, hop=hop)
            if hop_time > 0:
                with runtime.tracer.span("fog.pipeline.hop", run=run_id,
                                         machine=machine_name):
                    yield env.timeout(hop_time)
    registry.histogram("fog.pipeline.item_latency_s").observe(
        env.now - start, run=run_id)
    registry.counter("fog.pipeline.items_completed").inc(run=run_id)
    registry.counter("fog.pipeline.resolved").inc(run=run_id, stage=resolve_stage)


def _stream_stats(runtime, pipeline: "FogPipeline", run_id: str,
                  busy_id: str) -> StreamStats:
    """Assemble a :class:`StreamStats` view from this run's registry series."""
    registry = runtime.registry
    latencies = registry.histogram("fog.pipeline.item_latency_s").values(run=run_id)
    latency_array = np.array(latencies)

    resolved_counter: Dict[int, int] = {}
    resolved = registry.counter("fog.pipeline.resolved")
    for index in range(len(pipeline.stages)):
        count = resolved.value(run=run_id, stage=index)
        if count:
            resolved_counter[index] = int(count)

    bytes_per_hop: Dict[str, int] = {}
    shipped = registry.counter("fog.pipeline.bytes_shipped")
    for key, value in shipped.series().items():
        parts = dict(part.split("=", 1) for part in key.split(","))
        if parts.get("run") == run_id and value:
            bytes_per_hop[parts["hop"]] = int(value)

    busy = registry.counter("fog.pipeline.machine_busy_s")
    machines = sorted(set(pipeline.placement.machines))
    machine_busy = {name: busy.value(sim=busy_id, machine=name)
                    for name in machines}

    return StreamStats(
        completed=len(latencies),
        mean_latency_s=float(latency_array.mean()),
        p95_latency_s=float(np.percentile(latency_array, 95)),
        max_latency_s=float(latency_array.max()),
        resolved_per_stage=resolved_counter,
        bytes_per_hop=bytes_per_hop,
        machine_busy_s=machine_busy)


def simulate_shared_streams(streams: Sequence[dict], seed: int = 0,
                            runtime=None) -> List[StreamStats]:
    """Run several pipelines' streams against *shared* machine queues.

    This models the paper's deployment reality: many edge devices feed a
    handful of fog nodes and one analysis server, so one camera's offloads
    queue behind another's.  Each entry of ``streams`` is a dict with keys
    ``pipeline`` (:class:`FogPipeline`), ``num_items``,
    ``arrival_interval_s`` and optionally ``exit_probabilities``.
    Machines with the same name share a single unit-capacity resource
    across all streams; per-stream :class:`StreamStats` are returned in
    input order.  Each stream's ``machine_busy_s`` reports the *combined*
    busy time of its machines across all streams, matching the shared
    queues.
    """
    if not streams:
        raise ValueError("need at least one stream")
    runtime = runtime or get_runtime()
    env = Environment(runtime=runtime)
    resources: Dict[str, Resource] = {}
    rng = runtime.rng.child("fog.pipeline.exits", seed)
    busy_id = runtime.gensym("fog-sim")
    busy = runtime.registry.counter("fog.pipeline.machine_busy_s")
    per_stream: List[dict] = []

    for spec in streams:
        pipeline: "FogPipeline" = spec["pipeline"]
        num_items = spec["num_items"]
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1: {num_items}")
        for name in pipeline.placement.machines:
            if name not in resources:
                resources[name] = Resource(env, capacity=1)
                busy.inc(0.0, sim=busy_id, machine=name)
        per_stream.append({
            "pipeline": pipeline,
            "interval": spec["arrival_interval_s"],
            "resolved_at": _draw_resolved_stages(
                pipeline.stages, num_items,
                spec.get("exit_probabilities") or {}, rng),
            "run_id": runtime.gensym("fog-stream"),
        })

    def arrival_process(env, state):
        for item, stage in enumerate(state["resolved_at"]):
            env.process(_item_process(
                env, runtime, state["pipeline"], resources, stage,
                state["run_id"], busy_id))
            if state["interval"] > 0 and item < len(state["resolved_at"]) - 1:
                yield env.timeout(state["interval"])
        return None

    for state in per_stream:
        env.process(arrival_process(env, state))
    env.run()

    return [_stream_stats(runtime, state["pipeline"], state["run_id"],
                          busy_id)
            for state in per_stream]


class FogPipeline:
    """A placed stage chain ready for costing and simulation."""

    def __init__(self, placement: TierPlacement):
        self.placement = placement
        self.stages: Sequence[Stage] = placement.stages

    # -- analytic ------------------------------------------------------------
    def item_cost(self, resolved_stage: int) -> ItemCost:
        """Cost of one item that resolves at ``resolved_stage``.

        The item runs every stage up to and including ``resolved_stage``
        (paying each stage's main FLOPs plus its exit head where present)
        and ships each intermediate activation across its hop.
        """
        if not 0 <= resolved_stage < len(self.stages):
            raise ValueError(
                f"resolved_stage {resolved_stage} out of range "
                f"0..{len(self.stages) - 1}")
        compute = 0.0
        network = 0.0
        shipped = 0
        per_stage = []
        for index in range(resolved_stage + 1):
            stage = self.stages[index]
            machine = self.placement.machine_for(index)
            stage_flops = stage.flops
            if stage.has_exit or index == resolved_stage:
                stage_flops += stage.exit_head_flops
            seconds = stage_flops / machine.flops
            per_stage.append(seconds)
            compute += seconds
            if index < resolved_stage:
                network += self.placement.hop_transfer_time(
                    index, stage.output_bytes)
                if self.placement.machines[index] != self.placement.machines[index + 1]:
                    shipped += stage.output_bytes
        return ItemCost(resolved_stage=resolved_stage, compute_s=compute,
                        network_s=network, bytes_shipped=shipped,
                        per_stage_compute=per_stage)

    def mean_cost(self, resolution_profile: Dict[int, float]) -> ItemCost:
        """Expected cost under {stage_index: fraction resolving there}."""
        total = sum(resolution_profile.values())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"resolution fractions must sum to 1: {total}")
        compute = network = bytes_shipped = 0.0
        for stage_index, fraction in resolution_profile.items():
            cost = self.item_cost(stage_index)
            compute += fraction * cost.compute_s
            network += fraction * cost.network_s
            bytes_shipped += fraction * cost.bytes_shipped
        # Report as a synthetic item resolving at the deepest used stage.
        deepest = max(s for s, f in resolution_profile.items() if f > 0)
        return ItemCost(resolved_stage=deepest, compute_s=compute,
                        network_s=network, bytes_shipped=int(bytes_shipped))

    # -- discrete-event stream --------------------------------------------------
    def simulate_stream(self, num_items: int, arrival_interval_s: float,
                        exit_probabilities: Optional[Dict[int, float]] = None,
                        exit_outcomes: Optional[Sequence[int]] = None,
                        seed: int = 0, runtime=None) -> StreamStats:
        """Queueing simulation of a stream of items.

        Parameters
        ----------
        num_items / arrival_interval_s:
            Deterministic arrivals every ``arrival_interval_s`` seconds.
        exit_probabilities:
            {stage_index: P(exit at stage | reached stage)} for stages with
            exits; drawn per item from the runtime's seeded RNG context.
        exit_outcomes:
            Alternative: per-item resolved stage indices measured from a
            real model (overrides probabilities).
        runtime:
            Observability runtime receiving spans/metrics; defaults to the
            installed one.
        """
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1: {num_items}")
        if arrival_interval_s < 0:
            raise ValueError("arrival_interval_s must be >= 0")
        if exit_outcomes is not None and len(exit_outcomes) != num_items:
            raise ValueError("need one exit outcome per item")
        runtime = runtime or get_runtime()
        last_stage = len(self.stages) - 1
        if exit_outcomes is not None:
            resolved_at = []
            for stage in exit_outcomes:
                stage = int(stage)
                if not 0 <= stage <= last_stage:
                    raise ValueError(f"exit outcome {stage} out of range")
                resolved_at.append(stage)
        else:
            rng = runtime.rng.child("fog.pipeline.exits", seed)
            resolved_at = _draw_resolved_stages(
                self.stages, num_items, exit_probabilities or {}, rng)

        env = Environment(runtime=runtime)
        resources = {name: Resource(env, capacity=1)
                     for name in sorted(set(self.placement.machines))}
        run_id = runtime.gensym("fog-stream")
        busy_id = runtime.gensym("fog-sim")
        busy = runtime.registry.counter("fog.pipeline.machine_busy_s")
        for name in resources:
            busy.inc(0.0, sim=busy_id, machine=name)

        def arrival_process(env):
            for item in range(num_items):
                env.process(_item_process(
                    env, runtime, self, resources, resolved_at[item],
                    run_id, busy_id))
                if arrival_interval_s > 0 and item < num_items - 1:
                    yield env.timeout(arrival_interval_s)
            return None

        env.process(arrival_process(env))
        env.run()
        return _stream_stats(runtime, self, run_id, busy_id)
