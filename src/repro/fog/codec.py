"""Compressed cross-tier activation shipping (offload codecs).

When an early-exit sample escalates, the device ships the local stage's
feature map to the analysis server (Sec. III-B's device/server split).
The raw activation is large — for Fig. 5's geometry it dwarfs the input
frame — so the paper's autoencoder (Sec. III-C) doubles as a learned
compressor: the device runs the *encoder* and transmits the code, the
server runs the *decoder* and feeds the reconstruction to the remote
stage.  :class:`AutoencoderCodec` models that round trip in-process and
meters the payload delta as ``fog.deploy.offload_bytes_saved``.

A codec is anything with ``transfer(features) -> features`` — the hook
:class:`repro.nn.models.earlyexit.EarlyExitNetwork` calls on escalated
rows (and :class:`repro.fog.deployment.TwoTierDeployment` wires up via
``activation_codec=``).  Transfers are lossy by construction; the
reconstruction error is the price of the bandwidth, which
:meth:`AutoencoderCodec.fidelity` quantifies for a held-out batch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.grad_mode import no_grad
from repro.nn.inference import eval_mode
from repro.nn.models.autoencoder import Autoencoder
from repro.nn.quantize import (
    QPARAM_OVERHEAD_BYTES,
    calibrate_activation,
    fake_quant,
)
from repro.nn.tensor import Tensor
from repro.runtime import get_runtime


class ActivationCodec:
    """Protocol for cross-tier activation transfer simulation.

    ``transfer`` receives the escalated rows' feature array (any float
    dtype, batch-leading) and returns the array the *server side* sees.
    Implementations must return a fresh array of the same shape and dtype
    and must be deterministic — exit decisions downstream of a transfer
    feed the reproducibility invariants (identical decisions across
    worker counts).
    """

    def transfer(self, features: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class AutoencoderCodec(ActivationCodec):
    """Ship activations through a trained autoencoder's bottleneck.

    The device-side encoder maps each flattened feature map to a
    ``code_dim`` vector; optionally the code itself is int8-quantized for
    the wire (per-transfer min/max calibration, the scale/zero-point
    riding along as :data:`~repro.nn.quantize.QPARAM_OVERHEAD_BYTES`).
    The server-side decoder reconstructs the feature map, which continues
    into the remote stage.

    Byte accounting per transfer::

        raw  = rows * prod(feature_shape) * itemsize     (uncompressed)
        sent = rows * code_dim * wire_itemsize + qparams (what ships)

    and ``raw - sent`` accumulates into ``fog.deploy.offload_bytes_saved``.
    The codec never trains or mutates the autoencoder; it runs eval-mode
    under ``no_grad``.
    """

    def __init__(self, autoencoder: Autoencoder, quantize_code: bool = True,
                 runtime=None):
        self.autoencoder = autoencoder
        self.quantize_code = quantize_code
        self.runtime = runtime
        self.transfers = 0
        self.bytes_raw = 0
        self.bytes_sent = 0

    @property
    def bytes_saved(self) -> int:
        return self.bytes_raw - self.bytes_sent

    def _registry(self):
        return (self.runtime or get_runtime()).registry

    def transfer(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features)
        rows = features.shape[0]
        flat_dim = int(np.prod(features.shape[1:], dtype=np.int64))
        if flat_dim != self.autoencoder.input_dim:
            raise ValueError(
                f"feature maps flatten to {flat_dim} values per row, but the "
                f"codec autoencoder expects input_dim="
                f"{self.autoencoder.input_dim}")
        flat = np.ascontiguousarray(features).reshape(rows, flat_dim)
        ae = self.autoencoder
        with eval_mode(ae), no_grad():
            code = ae.encode(Tensor(flat)).data
            if self.quantize_code:
                scale, zero_point = calibrate_activation(code)
                code = fake_quant(code, scale, zero_point)
            decoded = ae.decode(Tensor(code)).data
        restored = np.ascontiguousarray(
            decoded.astype(features.dtype, copy=False)).reshape(features.shape)

        raw = int(features.nbytes)
        if self.quantize_code:
            sent = rows * ae.code_dim + QPARAM_OVERHEAD_BYTES
        else:
            sent = rows * ae.code_dim * features.dtype.itemsize
        self.transfers += 1
        self.bytes_raw += raw
        self.bytes_sent += sent
        registry = self._registry()
        registry.counter(
            "fog.deploy.offload_bytes_saved",
            help="activation bytes avoided by the offload codec "
                 "(raw feature payload minus shipped code payload)").inc(
                raw - sent)
        registry.counter(
            "fog.deploy.offload_transfers",
            help="escalation batches shipped through the offload codec").inc(1)
        return restored

    def fidelity(self, features: np.ndarray) -> float:
        """Mean relative L2 reconstruction error over a feature batch.

        Runs a real :meth:`transfer`, so it shows up in the byte counters.
        """
        features = np.asarray(features)
        restored = self.transfer(features)
        denom = float(np.linalg.norm(features.reshape(features.shape[0], -1),
                                     axis=1).mean())
        if denom == 0.0:
            return 0.0
        error = np.linalg.norm(
            (restored - features).reshape(features.shape[0], -1), axis=1)
        return float(error.mean()) / denom
