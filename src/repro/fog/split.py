"""Model stage descriptions and tier placement.

A deployed model is a chain of :class:`Stage` objects.  Each stage has a
compute cost (FLOPs per item), the size of the activation it ships to the
next stage, and optionally an *exit head*: a cheap classifier whose
confident predictions terminate processing at that stage (the paper's
Fig. 5/7 pattern).  A :class:`TierPlacement` maps stages to machines of a
:class:`~repro.cluster.machines.NetworkTopology`; placements must ascend
the uplink chain, mirroring the paper's edge -> fog -> server -> cloud flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.machines import Machine, NetworkTopology, Tier


class PlacementError(Exception):
    """Raised when a placement violates the uplink ordering."""


@dataclass(frozen=True)
class Stage:
    """One segment of a split model."""

    name: str
    flops: float
    output_bytes: int          # activation shipped upstream if not exiting
    exit_head_flops: float = 0.0
    has_exit: bool = False

    def __post_init__(self):
        if self.flops < 0 or self.exit_head_flops < 0:
            raise ValueError(f"stage {self.name}: negative FLOPs")
        if self.output_bytes < 0:
            raise ValueError(f"stage {self.name}: negative output size")


@dataclass
class TierPlacement:
    """Assignment of each stage to a machine, in chain order."""

    topology: NetworkTopology
    stages: Sequence[Stage]
    machines: Sequence[str]    # machine name per stage, same length

    def __post_init__(self):
        if len(self.stages) != len(self.machines):
            raise PlacementError(
                f"{len(self.stages)} stages but {len(self.machines)} machines")
        if not self.stages:
            raise PlacementError("a placement needs at least one stage")
        for name in self.machines:
            self.topology.machine(name)  # validates existence
        # Consecutive distinct machines must be connected by the uplink chain.
        for current, following in zip(self.machines, self.machines[1:]):
            if current == following:
                continue
            if not self._upstream_of(current, following):
                raise PlacementError(
                    f"{following} is not upstream of {current}")

    def _upstream_of(self, lower: str, upper: str) -> bool:
        current = lower
        while True:
            parent = self.topology.parent_of(current)
            if parent is None:
                return False
            if parent == upper:
                return True
            current = parent

    def machine_for(self, stage_index: int) -> Machine:
        return self.topology.machine(self.machines[stage_index])

    def hop_transfer_time(self, stage_index: int, size_bytes: float) -> float:
        """Time to ship ``size_bytes`` from stage i's machine to stage i+1's."""
        src = self.machines[stage_index]
        dst = self.machines[stage_index + 1]
        if src == dst:
            return 0.0
        return self.topology.uplink_transfer_time(src, dst, size_bytes)

    def with_failures(self, failed_machines: Iterable[str]) -> "TierPlacement":
        """Degraded placement: stages on failed machines migrate upstream.

        The paper's hierarchy is supervisory — "each analysis server
        handles a set of fog nodes" — so when a fog node dies, its stages
        run on the machine one tier up (recursively, if that one is dead
        too).  Raises :class:`PlacementError` when no live ancestor exists.
        """
        failed = set(failed_machines)
        for name in failed:
            self.topology.machine(name)  # validate
        migrated = []
        for machine_name in self.machines:
            current = machine_name
            while current in failed:
                parent = self.topology.parent_of(current)
                if parent is None:
                    raise PlacementError(
                        f"no live ancestor for failed machine {machine_name}")
                current = parent
            migrated.append(current)
        return TierPlacement(self.topology, list(self.stages), migrated)

    def describe(self) -> List[Dict]:
        """Human-readable placement rows (used by benches and examples)."""
        rows = []
        for stage, machine_name in zip(self.stages, self.machines):
            machine = self.topology.machine(machine_name)
            rows.append({
                "stage": stage.name,
                "machine": machine_name,
                "tier": machine.tier.value,
                "gflops": stage.flops / 1e9,
                "compute_ms": 1000.0 * stage.flops / machine.flops,
            })
        return rows


def model_split_from_early_exit(local_flops: float, remote_flops: float,
                                feature_bytes: int, input_bytes: int,
                                local_exit_flops: float = 0.0,
                                remote_exit_flops: float = 0.0) -> List[Stage]:
    """The canonical two-stage split of Figs. 5 and 7.

    Stage 0 ("local") runs the shared stem plus the cheap exit head; stage 1
    ("server") consumes the stem's feature map.  ``input_bytes`` is recorded
    on a zero-cost ingest stage so the raw-frame hop from the camera to the
    local device is also priced.
    """
    return [
        Stage("ingest", flops=0.0, output_bytes=input_bytes),
        Stage("local", flops=local_flops, output_bytes=feature_bytes,
              exit_head_flops=local_exit_flops, has_exit=True),
        Stage("server", flops=remote_flops, output_bytes=0,
              exit_head_flops=remote_exit_flops),
    ]


def materialize_stages(named_modules: Sequence[Tuple[str, object]],
                       input_shape: Tuple[int, ...],
                       fuse: bool = False,
                       dtype_bytes: int = 4,
                       exit_heads: Optional[Dict[str, object]] = None
                       ) -> List[Stage]:
    """Build :class:`Stage` rows from actual modules instead of hand costs.

    ``named_modules`` is the chain as ``(name, module)`` pairs; FLOPs and
    activation sizes come from :func:`repro.nn.flops.estimate_flops` on the
    given per-sample ``input_shape``.  With ``fuse`` set, each module is
    costed *after* :func:`repro.nn.fuse.fuse_for_inference` — BatchNorm
    layers fold to :class:`~repro.nn.modules.Identity`, so the stage FLOPs
    reflect what the deployed fast-path graph actually executes.

    ``exit_heads`` maps a stage name to its exit-head module; the head's
    FLOPs are estimated on that stage's output shape and the stage is
    marked ``has_exit``.  The last stage ships nothing upstream.
    """
    from repro.nn.flops import activation_size_bytes, estimate_flops
    from repro.nn.fuse import fuse_for_inference

    exit_heads = exit_heads or {}
    stages: List[Stage] = []
    shape = input_shape
    costed = [(name, fuse_for_inference(module) if fuse else module)
              for name, module in named_modules]
    for index, (name, module) in enumerate(costed):
        flops, shape = estimate_flops(module, shape)
        head = exit_heads.get(name)
        head_flops = estimate_flops(head, shape)[0] if head is not None else 0.0
        last = index == len(costed) - 1
        stages.append(Stage(
            name=name,
            flops=flops,
            output_bytes=0 if last else activation_size_bytes(shape, dtype_bytes),
            exit_head_flops=head_flops,
            has_exit=head is not None))
    return stages


def place_bottom_up(topology: NetworkTopology, stages: Sequence[Stage],
                    start: str) -> TierPlacement:
    """One stage per tier, ascending from ``start`` along its uplinks.

    The default Fig. 3 placement: stage 0 on the edge device, each later
    stage one tier up.  Extra stages beyond the chain length pile onto the
    last machine.
    """
    chain = [start]
    current = start
    while True:
        parent = topology.parent_of(current)
        if parent is None:
            break
        chain.append(parent)
        current = parent
    machines = [chain[min(i, len(chain) - 1)] for i in range(len(stages))]
    return TierPlacement(topology, list(stages), machines)


def place_all_on(topology: NetworkTopology, stages: Sequence[Stage],
                 machine: str, ingest_from: Optional[str] = None
                 ) -> TierPlacement:
    """Every compute stage on one machine (the all-server baseline).

    When ``ingest_from`` is given, stage 0 stays on that machine so the raw
    input still pays the network hop to ``machine``.
    """
    machines = [machine] * len(stages)
    if ingest_from is not None and stages:
        machines[0] = ingest_from
    return TierPlacement(topology, list(stages), machines)


def bottleneck_latency(placement: TierPlacement) -> float:
    """The slowest per-item stage cost — the pipeline's throughput bound."""
    costs = []
    for index, stage in enumerate(placement.stages):
        machine = placement.machine_for(index)
        compute = (stage.flops + stage.exit_head_flops) / machine.flops
        transfer = 0.0
        if index + 1 < len(placement.stages):
            transfer = placement.hop_transfer_time(index, stage.output_bytes)
        costs.append(compute + transfer)
    return max(costs)
