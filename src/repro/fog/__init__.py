"""The four-tier fog-computing model (Sec. II-B-1, Fig. 3).

This package turns a trained early-exit model plus a simulated network
topology into end-to-end latency/throughput numbers:

- :mod:`repro.fog.split` — describe a model as a chain of stages (FLOPs,
  activation bytes, optional exit head) and place stages onto machines;
- :mod:`repro.fog.policies` — exit policies (score/entropy thresholds) and
  helpers that measure a trained model's per-stage exit fractions;
- :mod:`repro.fog.pipeline` — analytic per-item cost accounting and a
  discrete-event stream simulation with queueing at every machine.
"""

from repro.fog.split import (
    PlacementError,
    Stage,
    TierPlacement,
    materialize_stages,
    model_split_from_early_exit,
    place_bottom_up,
    place_all_on,
)
from repro.fog.policies import (
    EntropyThresholdPolicy,
    ExitPolicy,
    ScoreThresholdPolicy,
    measured_exit_fractions,
    run_policy_batched,
)
from repro.fog.pipeline import (
    FailureSpec,
    FaultPolicy,
    FogPipeline,
    ItemCost,
    StreamStats,
    simulate_shared_streams,
)
from repro.fog.deployment import TwoTierDeployment, split_state_dict

__all__ = [
    "Stage", "TierPlacement", "PlacementError",
    "model_split_from_early_exit", "materialize_stages",
    "place_bottom_up", "place_all_on",
    "ExitPolicy", "ScoreThresholdPolicy", "EntropyThresholdPolicy",
    "measured_exit_fractions", "run_policy_batched",
    "FogPipeline", "ItemCost", "StreamStats", "simulate_shared_streams",
    "FailureSpec", "FaultPolicy",
    "TwoTierDeployment", "split_state_dict",
]
