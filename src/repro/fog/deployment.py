"""Two-tier model deployment: split trained weights between device and server.

After joint training (Fig. 5 / Fig. 7), the local stage's weights go to the
edge/fog device and the remote stage's weights to the analysis server.
:func:`split_state_dict` partitions a state dict by stage prefixes, and
:class:`TwoTierDeployment` reconstructs the inference path from the two
halves — verifying that the deployed pair reproduces the monolithic
model's outputs exactly (the invariant the deployment tests assert).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.fog.policies import ExitPolicy, run_policy_batched
from repro.nn.fuse import fuse_for_inference
from repro.nn.models.earlyexit import BatchExitDecisions, EarlyExitNetwork
from repro.nn.modules import Module
from repro.nn.serialization import state_from_bytes, state_to_bytes
from repro.runtime import get_runtime


def split_state_dict(state: Dict[str, np.ndarray],
                     local_prefixes: Sequence[str],
                     remote_prefixes: Sequence[str]
                     ) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Partition a state dict by top-level module prefixes.

    Every key must match exactly one side; anything unmatched or doubly
    matched is an error — a deployment that silently drops weights is the
    worst possible failure mode.
    """
    local: Dict[str, np.ndarray] = {}
    remote: Dict[str, np.ndarray] = {}
    for key, value in state.items():
        in_local = any(key.startswith(prefix + ".") or key == prefix
                       for prefix in local_prefixes)
        in_remote = any(key.startswith(prefix + ".") or key == prefix
                        for prefix in remote_prefixes)
        if in_local and in_remote:
            raise ValueError(f"key matches both sides: {key}")
        if in_local:
            local[key] = value
        elif in_remote:
            remote[key] = value
        else:
            raise ValueError(f"key matches neither side: {key}")
    return local, remote


class TwoTierDeployment:
    """Ship a trained early-exit model to a device and a server.

    The device holds the modules named by ``local_modules`` (stem, local
    branch, local head); the server holds ``remote_modules``.  Both sides
    are fresh instances of the same architecture, populated from the
    serialized halves — modelling the real workflow where weights travel
    over the network as bytes.

    With ``fuse_inference`` set, each tier-local instance goes through
    :func:`repro.nn.fuse.fuse_for_inference` after loading: BatchNorm
    layers are folded into their preceding conv/dense weights and the copy
    is optionally cast to ``inference_dtype`` (typically ``np.float32``),
    so what each tier actually serves is the fast-path deployment graph.
    """

    def __init__(self, architecture_factory, local_modules: Sequence[str],
                 remote_modules: Sequence[str], fuse_inference: bool = False,
                 inference_dtype=None, runtime=None, executor=None):
        self.architecture_factory = architecture_factory
        self.local_modules = list(local_modules)
        self.remote_modules = list(remote_modules)
        self.fuse_inference = fuse_inference
        self.inference_dtype = inference_dtype
        self.executor = executor
        self.runtime = runtime or get_runtime()
        self.device_model: Optional[Module] = None
        self.server_model: Optional[Module] = None
        self.payload_bytes = {"device": 0, "server": 0}
        self.fused_layers = {"device": 0, "server": 0}

    def deploy(self, trained: Module) -> None:
        """Split ``trained`` and load each half into a fresh instance."""
        state = trained.state_dict()
        shared = self.local_modules  # stem etc. live on the device side
        local_state, remote_state = split_state_dict(
            state, shared, self.remote_modules)
        self.device_model = self.architecture_factory()
        self.server_model = self.architecture_factory()
        # Serialize each half to bytes (the network payload), then load
        # into the matching fresh instance; untouched modules keep their
        # fresh initialization, which is fine — each side only runs its
        # own half.
        device_payload = _dict_to_bytes(local_state)
        server_payload = _dict_to_bytes(remote_state)
        self.payload_bytes = {"device": len(device_payload),
                              "server": len(server_payload)}
        _load_partial(self.device_model, _bytes_to_dict(device_payload))
        _load_partial(self.server_model, _bytes_to_dict(server_payload))
        if self.fuse_inference:
            self.device_model = fuse_for_inference(
                self.device_model, dtype=self.inference_dtype)
            self.server_model = fuse_for_inference(
                self.server_model, dtype=self.inference_dtype)
            self.fused_layers = {
                "device": self.device_model.fused_layers,
                "server": self.server_model.fused_layers,
            }
            counter = self.runtime.registry.counter(
                "fog.deploy.fused_layers",
                help="BatchNorm layers folded into tier-local weights")
            counter.inc(self.fused_layers["device"], tier="device")
            counter.inc(self.fused_layers["server"], tier="server")

    def device_weight_names(self) -> List[str]:
        return sorted(self.local_modules)

    def server_weight_names(self) -> List[str]:
        return sorted(self.remote_modules)

    # -- serving ---------------------------------------------------------------
    def served_model(self) -> EarlyExitNetwork:
        """The composite the two-tier pair actually serves.

        Device-side local stage + head and server-side remote stage +
        head, stitched back into one :class:`EarlyExitNetwork` so the
        early-exit inference path runs over the *deployed* weights.
        Requires an architecture exposing the four early-exit submodules
        (``local_stage``/``local_head``/``remote_stage``/``remote_head``).
        """
        if self.device_model is None or self.server_model is None:
            raise RuntimeError("deploy() must run before serving")
        for side, attrs in ((self.device_model, ("local_stage", "local_head")),
                            (self.server_model, ("remote_stage", "remote_head"))):
            missing = [a for a in attrs if getattr(side, a, None) is None]
            if missing:
                raise TypeError(
                    f"{type(side).__name__} does not expose {missing}; "
                    "served_model() needs the EarlyExitNetwork submodule "
                    "layout")
        return EarlyExitNetwork(
            local_stage=self.device_model.local_stage,
            local_head=self.device_model.local_head,
            remote_stage=self.server_model.remote_stage,
            remote_head=self.server_model.remote_head)

    def serve_batched(self, x, policy: ExitPolicy,
                      batch_size: Optional[int] = None) -> BatchExitDecisions:
        """One batch through the deployed pair, micro-batches fanned out
        across the deployment executor (serial when None)."""
        return run_policy_batched(self.served_model(), x, policy,
                                  batch_size=batch_size,
                                  executor=self.executor)

    def serve_streams(self, streams: Sequence, policy: ExitPolicy,
                      batch_size: Optional[int] = None
                      ) -> List[BatchExitDecisions]:
        """Serve independent camera streams, one executor task per stream.

        This is the fog fan-out: forked workers inherit both tier models,
        each stream's frames cross via shared memory, and the per-stream
        exit decisions come back in submission order — identical to
        serving every stream serially, which the parallel-serving tests
        assert.
        """
        model = self.served_model()
        streams = list(streams)

        def serve(frames):
            return run_policy_batched(model, frames, policy,
                                      batch_size=batch_size)

        if self.executor is None:
            results = [serve(frames) for frames in streams]
        else:
            results = self.executor.map_ordered(
                serve, streams, label="fog.serve_streams")
        self.runtime.registry.counter(
            "fog.deploy.streams_served",
            help="camera streams served by two-tier deployments").inc(
                len(streams))
        return results


def _dict_to_bytes(state: Dict[str, np.ndarray]) -> bytes:
    import io
    buffer = io.BytesIO()
    np.savez(buffer, **state)
    return buffer.getvalue()


def _bytes_to_dict(payload: bytes) -> Dict[str, np.ndarray]:
    import io
    with np.load(io.BytesIO(payload)) as archive:
        return {key: archive[key] for key in archive.files}


def _load_partial(model: Module, state: Dict[str, np.ndarray]) -> None:
    """Load only the provided keys; leave the rest untouched."""
    own = dict(model.named_parameters())
    buffers = {name: (holder, attr)
               for name, holder, attr in model._buffer_holders()}
    for key, value in state.items():
        if key in own:
            if own[key].data.shape != value.shape:
                raise ValueError(f"shape mismatch for {key}")
            own[key].data = value.copy()
        elif key in buffers:
            holder, attr = buffers[key]
            setattr(holder, "_buffer_" + attr, value.copy())
        else:
            raise KeyError(f"no such parameter or buffer: {key}")
