"""Two-tier model deployment: split trained weights between device and server.

After joint training (Fig. 5 / Fig. 7), the local stage's weights go to the
edge/fog device and the remote stage's weights to the analysis server.
:func:`split_state_dict` partitions a state dict by stage prefixes, and
:class:`TwoTierDeployment` reconstructs the inference path from the two
halves — verifying that the deployed pair reproduces the monolithic
model's outputs exactly (the invariant the deployment tests assert).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.fog.policies import ExitPolicy, run_policy_batched
from repro.nn.fuse import fuse_for_inference
from repro.nn.models.earlyexit import BatchExitDecisions, EarlyExitNetwork
from repro.nn.modules import Module
from repro.nn.serialization import state_from_bytes, state_to_bytes
from repro.runtime import get_runtime


def split_state_dict(state: Dict[str, np.ndarray],
                     local_prefixes: Sequence[str],
                     remote_prefixes: Sequence[str]
                     ) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Partition a state dict by top-level module prefixes.

    Every key must match exactly one side; anything unmatched or doubly
    matched is an error — a deployment that silently drops weights is the
    worst possible failure mode.
    """
    local: Dict[str, np.ndarray] = {}
    remote: Dict[str, np.ndarray] = {}
    for key, value in state.items():
        in_local = any(key.startswith(prefix + ".") or key == prefix
                       for prefix in local_prefixes)
        in_remote = any(key.startswith(prefix + ".") or key == prefix
                        for prefix in remote_prefixes)
        if in_local and in_remote:
            raise ValueError(f"key matches both sides: {key}")
        if in_local:
            local[key] = value
        elif in_remote:
            remote[key] = value
        else:
            raise ValueError(f"key matches neither side: {key}")
    return local, remote


class TwoTierDeployment:
    """Ship a trained early-exit model to a device and a server.

    The device holds the modules named by ``local_modules`` (stem, local
    branch, local head); the server holds ``remote_modules``.  Both sides
    are fresh instances of the same architecture, populated from the
    serialized halves — modelling the real workflow where weights travel
    over the network as bytes.

    With ``fuse_inference`` set, each tier-local instance goes through
    :func:`repro.nn.fuse.fuse_for_inference` after loading: BatchNorm
    layers are folded into their preceding conv/dense weights and the copy
    is optionally cast to ``inference_dtype`` (typically ``np.float32``),
    so what each tier actually serves is the fast-path deployment graph.

    Three further serving knobs (all default off):

    - ``capture_plans`` — the served composite runs through captured
      inference plans (:mod:`repro.nn.plan`): per-stage LRU plan caches,
      arena-reused buffers, bit-identical decisions.
    - ``quantize_edge`` — the *device-side* stage and head are int8
      weight-quantized with activation fake-quant calibrated on the
      ``calibration`` batch (required), shrinking the edge weight payload
      ~4x; the server half stays float.  Edge byte savings land in
      ``fog.deploy.edge_int8_bytes_saved`` and ``edge_quantization``.
    - ``activation_codec`` — escalated feature maps round-trip through a
      :class:`repro.fog.codec.ActivationCodec` before the remote stage,
      modelling compressed cross-tier activation shipping
      (``fog.deploy.offload_bytes_saved``).
    """

    def __init__(self, architecture_factory, local_modules: Sequence[str],
                 remote_modules: Sequence[str], fuse_inference: bool = False,
                 inference_dtype=None, capture_plans: bool = False,
                 quantize_edge: bool = False, calibration=None,
                 activation_codec=None, runtime=None, executor=None):
        if quantize_edge and calibration is None:
            raise ValueError(
                "quantize_edge needs a representative calibration batch")
        self.architecture_factory = architecture_factory
        self.local_modules = list(local_modules)
        self.remote_modules = list(remote_modules)
        self.fuse_inference = fuse_inference
        self.inference_dtype = inference_dtype
        self.capture_plans = capture_plans
        self.quantize_edge = quantize_edge
        self.calibration = calibration
        self.activation_codec = activation_codec
        self.executor = executor
        self.runtime = runtime or get_runtime()
        self.device_model: Optional[Module] = None
        self.server_model: Optional[Module] = None
        self.payload_bytes = {"device": 0, "server": 0}
        self.fused_layers = {"device": 0, "server": 0}
        self.edge_quantization = {"layers": 0, "float_bytes": 0,
                                  "int8_bytes": 0}
        self._served: Optional[EarlyExitNetwork] = None

    def deploy(self, trained: Module) -> None:
        """Split ``trained`` and load each half into a fresh instance."""
        state = trained.state_dict()
        shared = self.local_modules  # stem etc. live on the device side
        local_state, remote_state = split_state_dict(
            state, shared, self.remote_modules)
        self.device_model = self.architecture_factory()
        self.server_model = self.architecture_factory()
        # Serialize each half to bytes (the network payload), then load
        # into the matching fresh instance; untouched modules keep their
        # fresh initialization, which is fine — each side only runs its
        # own half.
        device_payload = _dict_to_bytes(local_state)
        server_payload = _dict_to_bytes(remote_state)
        self.payload_bytes = {"device": len(device_payload),
                              "server": len(server_payload)}
        _load_partial(self.device_model, _bytes_to_dict(device_payload))
        _load_partial(self.server_model, _bytes_to_dict(server_payload))
        self._served = None
        if self.fuse_inference:
            self.device_model = fuse_for_inference(
                self.device_model, dtype=self.inference_dtype)
            self.server_model = fuse_for_inference(
                self.server_model, dtype=self.inference_dtype)
            self.fused_layers = {
                "device": self.device_model.fused_layers,
                "server": self.server_model.fused_layers,
            }
            counter = self.runtime.registry.counter(
                "fog.deploy.fused_layers",
                help="BatchNorm layers folded into tier-local weights")
            counter.inc(self.fused_layers["device"], tier="device")
            counter.inc(self.fused_layers["server"], tier="server")
        if self.quantize_edge:
            self._quantize_device_tier()

    def _quantize_device_tier(self) -> None:
        """Int8-quantize the device-side stage and head after loading.

        The stage calibrates on the raw frames; the head calibrates on the
        *quantized* stage's features, matching what it will actually see
        at serve time.  The server half stays float — Sec. III-B's
        asymmetry: the edge is bandwidth/storage constrained, the analysis
        server is not.
        """
        from repro.nn.inference import batched_forward
        from repro.nn.quantize import (
            quantize_for_inference,
            quantized_state_bytes,
        )
        calibration = np.asarray(self.calibration)
        if self.inference_dtype is not None:
            calibration = calibration.astype(self.inference_dtype, copy=False)
        device = self.device_model
        float_bytes = sum(
            p.data.nbytes for name in ("local_stage", "local_head")
            for p in getattr(device, name).parameters())
        device.local_stage = quantize_for_inference(
            device.local_stage, calibration)
        features = batched_forward(device.local_stage, calibration,
                                   model="edge_calibration",
                                   runtime=self.runtime)
        device.local_head = quantize_for_inference(
            device.local_head, features)
        layers = (device.local_stage.quantized_layers
                  + device.local_head.quantized_layers)
        int8_bytes = (quantized_state_bytes(device.local_stage)
                      + quantized_state_bytes(device.local_head))
        self.edge_quantization = {"layers": layers,
                                  "float_bytes": int(float_bytes),
                                  "int8_bytes": int(int8_bytes)}
        registry = self.runtime.registry
        registry.counter(
            "fog.deploy.quantized_layers",
            help="conv/dense layers int8-quantized for the edge tier").inc(
                layers, tier="device")
        registry.counter(
            "fog.deploy.edge_int8_bytes_saved",
            help="edge weight payload bytes saved by int8 quantization").inc(
                float_bytes - int8_bytes)

    def device_weight_names(self) -> List[str]:
        return sorted(self.local_modules)

    def server_weight_names(self) -> List[str]:
        return sorted(self.remote_modules)

    # -- serving ---------------------------------------------------------------
    def served_model(self) -> EarlyExitNetwork:
        """The composite the two-tier pair actually serves.

        Device-side local stage + head and server-side remote stage +
        head, stitched back into one :class:`EarlyExitNetwork` so the
        early-exit inference path runs over the *deployed* weights.
        Requires an architecture exposing the four early-exit submodules
        (``local_stage``/``local_head``/``remote_stage``/``remote_head``).

        The composite is built once per deploy and cached, so plan caches
        (``capture_plans``) and codec byte counters persist across serve
        calls.  ``capture_plans`` and ``activation_codec`` are attached
        here.
        """
        if self._served is not None:
            return self._served
        if self.device_model is None or self.server_model is None:
            raise RuntimeError("deploy() must run before serving")
        for side, attrs in ((self.device_model, ("local_stage", "local_head")),
                            (self.server_model, ("remote_stage", "remote_head"))):
            missing = [a for a in attrs if getattr(side, a, None) is None]
            if missing:
                raise TypeError(
                    f"{type(side).__name__} does not expose {missing}; "
                    "served_model() needs the EarlyExitNetwork submodule "
                    "layout")
        served = EarlyExitNetwork(
            local_stage=self.device_model.local_stage,
            local_head=self.device_model.local_head,
            remote_stage=self.server_model.remote_stage,
            remote_head=self.server_model.remote_head)
        if self.capture_plans:
            served.enable_plans()
        if self.activation_codec is not None:
            served.activation_codec = self.activation_codec
        self._served = served
        return served

    def plan_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage plan-cache statistics of the served composite."""
        if self._served is None:
            return {}
        return self._served.plan_stats()

    def serve_batched(self, x, policy: ExitPolicy,
                      batch_size: Optional[int] = None) -> BatchExitDecisions:
        """One batch through the deployed pair, micro-batches fanned out
        across the deployment executor (serial when None)."""
        return run_policy_batched(self.served_model(), x, policy,
                                  batch_size=batch_size,
                                  executor=self.executor)

    def serve_streams(self, streams: Sequence, policy: ExitPolicy,
                      batch_size: Optional[int] = None
                      ) -> List[BatchExitDecisions]:
        """Serve independent camera streams, one executor task per stream.

        This is the fog fan-out: forked workers inherit both tier models,
        each stream's frames cross via shared memory, and the per-stream
        exit decisions come back in submission order — identical to
        serving every stream serially, which the parallel-serving tests
        assert.

        ``streams`` is either a sequence of per-camera frame arrays (the
        legacy shape) or a broker record batch exposing per-key
        ``groups()`` (duck-typed, so the fog layer needs no broker
        import): each camera's sub-batch stacks its frames once and
        serves as one stream, in key order.
        """
        model = self.served_model()
        groups = getattr(streams, "groups", None)
        if callable(groups):
            streams = [group.stacked_values() for _, group in groups()]
        else:
            streams = list(streams)

        def serve(frames):
            return run_policy_batched(model, frames, policy,
                                      batch_size=batch_size)

        if self.executor is None:
            results = [serve(frames) for frames in streams]
        else:
            results = self.executor.map_ordered(
                serve, streams, label="fog.serve_streams")
        self.runtime.registry.counter(
            "fog.deploy.streams_served",
            help="camera streams served by two-tier deployments").inc(
                len(streams))
        return results


def _dict_to_bytes(state: Dict[str, np.ndarray]) -> bytes:
    import io
    buffer = io.BytesIO()
    np.savez(buffer, **state)
    return buffer.getvalue()


def _bytes_to_dict(payload: bytes) -> Dict[str, np.ndarray]:
    import io
    with np.load(io.BytesIO(payload)) as archive:
        return {key: archive[key] for key in archive.files}


def _load_partial(model: Module, state: Dict[str, np.ndarray]) -> None:
    """Load only the provided keys; leave the rest untouched."""
    own = dict(model.named_parameters())
    buffers = {name: (holder, attr)
               for name, holder, attr in model._buffer_holders()}
    for key, value in state.items():
        if key in own:
            if own[key].data.shape != value.shape:
                raise ValueError(f"shape mismatch for {key}")
            own[key].data = value.copy()
        elif key in buffers:
            holder, attr = buffers[key]
            setattr(holder, "_buffer_" + attr, value.copy())
        else:
            raise KeyError(f"no such parameter or buffer: {key}")
