"""Exit policies: when may a tier keep a result instead of escalating?

The paper uses two concrete rules:

- Fig. 5 (vehicle detection): accept locally when the classification
  *score* exceeds a threshold — :class:`ScoreThresholdPolicy`;
- Fig. 7 (action recognition): accept locally when the prediction
  *entropy* is low — :class:`EntropyThresholdPolicy`.

Both reduce to "confidence >= threshold" with an appropriate confidence
function, so downstream code only sees the :class:`ExitPolicy` interface.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.nn.models.earlyexit import (
    BatchExitDecisions,
    entropy_confidence,
    score_confidence,
)


class ExitPolicy:
    """Base: decides per-row whether logits are confident enough to exit."""

    def __init__(self, threshold: float,
                 confidence_fn: Callable[[np.ndarray], np.ndarray]):
        self.threshold = threshold
        self.confidence_fn = confidence_fn

    def confidences(self, logits: np.ndarray) -> np.ndarray:
        return self.confidence_fn(np.asarray(logits))

    def should_exit(self, logits: np.ndarray) -> np.ndarray:
        """Boolean mask per row: True = resolve at this tier."""
        return self.confidences(logits) >= self.threshold

    def exit_fraction(self, logits: np.ndarray) -> float:
        mask = self.should_exit(logits)
        return float(mask.mean()) if mask.size else 0.0


class ScoreThresholdPolicy(ExitPolicy):
    """Exit when max softmax probability >= threshold (Fig. 5)."""

    def __init__(self, threshold: float):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"score threshold must be in [0, 1]: {threshold}")
        super().__init__(threshold, score_confidence)


class EntropyThresholdPolicy(ExitPolicy):
    """Exit when prediction entropy <= max_entropy nats (Fig. 7).

    Internally negated so the shared >=-threshold rule applies.
    """

    def __init__(self, max_entropy: float):
        if max_entropy < 0:
            raise ValueError(f"max_entropy must be >= 0: {max_entropy}")
        self.max_entropy = max_entropy
        super().__init__(-max_entropy, entropy_confidence)


def measured_exit_fractions(local_logits: np.ndarray,
                            policies: Sequence[ExitPolicy]) -> List[float]:
    """Exit fraction of each policy on a batch of local-head logits."""
    return [policy.exit_fraction(local_logits) for policy in policies]


def run_policy_batched(model, x, policy: ExitPolicy,
                       batch_size: Optional[int] = None,
                       executor=None) -> BatchExitDecisions:
    """Drive an early-exit model with a policy on the batched fast path.

    ``model`` is anything with the
    :meth:`repro.nn.models.earlyexit.EarlyExitNetwork.infer_batch` contract.
    The policy's confidence function and threshold become the exit rule, so
    the Fig. 5 (score) and Fig. 7 (entropy) policies both run through one
    vectorized, no-grad, micro-batched path.  ``executor`` (a
    :class:`~repro.runtime.parallel.ParallelExecutor`) fans the
    micro-batches out across pool workers; exit decisions are identical
    to the serial path either way.
    """
    if executor is not None:
        return model.infer_batch(x, policy.threshold,
                                 confidence=policy.confidence_fn,
                                 batch_size=batch_size,
                                 executor=executor)
    # Keep the executor kwarg out of the serial call: ``model`` is duck-
    # typed and pre-engine implementations of the contract don't take it.
    return model.infer_batch(x, policy.threshold,
                             confidence=policy.confidence_fn,
                             batch_size=batch_size)


def accuracy_offload_tradeoff(local_logits: np.ndarray,
                              remote_logits: np.ndarray,
                              targets: np.ndarray,
                              policy_grid: Sequence[ExitPolicy]) -> List[Dict]:
    """Rows of {threshold, accuracy, local_fraction} for a policy sweep.

    This is the measurement behind benches E5/E7: as the threshold rises,
    fewer items exit locally, accuracy approaches the server model's, and
    network traffic rises.
    """
    local_logits = np.asarray(local_logits)
    remote_logits = np.asarray(remote_logits)
    targets = np.asarray(targets)
    rows = []
    for policy in policy_grid:
        mask = policy.should_exit(local_logits)
        predictions = np.where(mask,
                               local_logits.argmax(axis=-1),
                               remote_logits.argmax(axis=-1))
        rows.append({
            "threshold": policy.threshold,
            "accuracy": float((predictions == targets).mean()),
            "local_fraction": float(mask.mean()),
        })
    return rows
