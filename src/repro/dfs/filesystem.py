"""NameNode / DataNode block storage with replication and recovery.

Storage traffic is reported through the shared runtime registry
(``dfs.files_created``, ``dfs.bytes_written``, ``dfs.bytes_read``,
``dfs.replicas_created``, gauge ``dfs.bytes_stored``); datanode
crash/recover transitions land in the structured event log
(``dfs.datanode_failed`` / ``dfs.datanode_recovered``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.runtime import get_runtime


class DFSError(Exception):
    """Base error for the distributed file system."""


class FileNotFound(DFSError):
    """Raised when a path does not exist in the namespace."""


class FileAlreadyExists(DFSError):
    """Raised when creating a path that already exists."""


class NotEnoughReplicas(DFSError):
    """Raised when fewer live datanodes exist than the replication factor
    requires, or when every replica of a block is dead."""


@dataclass
class FileStatus:
    """Metadata for one file."""

    path: str
    size: int
    block_ids: List[int]
    replication: int


@dataclass
class BlockReport:
    """Replication health of one block."""

    block_id: int
    live_replicas: int
    expected_replicas: int

    @property
    def under_replicated(self) -> bool:
        return self.live_replicas < self.expected_replicas

    @property
    def lost(self) -> bool:
        return self.live_replicas == 0


class DataNode:
    """Stores block payloads in memory; ``alive`` models crashes."""

    def __init__(self, name: str, capacity_bytes: Optional[int] = None):
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.alive = True
        self._blocks: Dict[int, bytes] = {}

    @property
    def used_bytes(self) -> int:
        return sum(len(data) for data in self._blocks.values())

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def store(self, block_id: int, data: bytes) -> None:
        if not self.alive:
            raise DFSError(f"datanode {self.name} is down")
        if (self.capacity_bytes is not None
                and self.used_bytes + len(data) > self.capacity_bytes):
            raise DFSError(f"datanode {self.name} is full")
        self._blocks[block_id] = data

    def read(self, block_id: int) -> bytes:
        if not self.alive:
            raise DFSError(f"datanode {self.name} is down")
        try:
            return self._blocks[block_id]
        except KeyError:
            raise DFSError(
                f"datanode {self.name} has no block {block_id}") from None

    def drop(self, block_id: int) -> None:
        self._blocks.pop(block_id, None)

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks


class NameNode:
    """Namespace plus block-location map; picks replication targets."""

    def __init__(self, replication: int = 3, block_size: int = 64 * 1024):
        if replication < 1:
            raise ValueError(f"replication must be >= 1: {replication}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1: {block_size}")
        self.replication = replication
        self.block_size = block_size
        self._files: Dict[str, FileStatus] = {}
        self._locations: Dict[int, Set[str]] = {}
        self._datanodes: Dict[str, DataNode] = {}
        self._block_counter = itertools.count()

    # -- membership ---------------------------------------------------------
    def register_datanode(self, node: DataNode) -> None:
        if node.name in self._datanodes:
            raise ValueError(f"duplicate datanode: {node.name}")
        self._datanodes[node.name] = node

    def datanode(self, name: str) -> DataNode:
        try:
            return self._datanodes[name]
        except KeyError:
            raise KeyError(f"unknown datanode: {name}") from None

    def live_datanodes(self) -> List[DataNode]:
        return [n for n in self._datanodes.values() if n.alive]

    # -- namespace ------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def stat(self, path: str) -> FileStatus:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def listdir(self, prefix: str = "/") -> List[str]:
        if not prefix.endswith("/"):
            prefix = prefix + "/"
        return sorted(p for p in self._files
                      if p.startswith(prefix) or p == prefix.rstrip("/"))

    def allocate_block(self) -> int:
        return next(self._block_counter)

    def choose_targets(self, count: int,
                       exclude: Sequence[str] = ()) -> List[DataNode]:
        """Least-loaded live datanodes, excluding ``exclude``."""
        candidates = [n for n in self.live_datanodes() if n.name not in exclude]
        if len(candidates) < count:
            raise NotEnoughReplicas(
                f"need {count} datanodes, only {len(candidates)} live")
        candidates.sort(key=lambda n: (n.used_bytes, n.name))
        return candidates[:count]

    def record_file(self, status: FileStatus) -> None:
        self._files[status.path] = status

    def record_replica(self, block_id: int, datanode_name: str) -> None:
        self._locations.setdefault(block_id, set()).add(datanode_name)

    def forget_replica(self, block_id: int, datanode_name: str) -> None:
        self._locations.get(block_id, set()).discard(datanode_name)

    def replicas(self, block_id: int) -> Set[str]:
        return set(self._locations.get(block_id, set()))

    def live_replicas(self, block_id: int) -> List[DataNode]:
        return [self._datanodes[name] for name in self.replicas(block_id)
                if self._datanodes[name].alive]

    def remove_file(self, path: str) -> FileStatus:
        status = self.stat(path)
        del self._files[path]
        return status

    def block_reports(self) -> List[BlockReport]:
        reports = []
        for status in self._files.values():
            for block_id in status.block_ids:
                reports.append(BlockReport(
                    block_id=block_id,
                    live_replicas=len(self.live_replicas(block_id)),
                    expected_replicas=status.replication))
        return reports


class DistributedFileSystem:
    """Client facade: create / read / append / delete plus recovery.

    Example
    -------
    >>> dfs = DistributedFileSystem.with_datanodes(4, replication=2)
    >>> dfs.create("/videos/cam0.dat", b"frame-bytes" * 100)
    >>> dfs.read("/videos/cam0.dat")[:11]
    b'frame-bytes'
    """

    def __init__(self, namenode: NameNode, runtime=None):
        self.namenode = namenode
        self.runtime = runtime or get_runtime()
        registry = self.runtime.registry
        self._files_created = registry.counter("dfs.hdfs.files_created")
        self._files_deleted = registry.counter("dfs.hdfs.files_deleted")
        self._bytes_written = registry.counter("dfs.hdfs.bytes_written")
        self._bytes_read = registry.counter("dfs.hdfs.bytes_read")
        self._replicas_created = registry.counter("dfs.hdfs.replicas_created")
        self._stored_gauge = registry.gauge("dfs.hdfs.bytes_stored")

    @classmethod
    def with_datanodes(cls, count: int, replication: int = 3,
                       block_size: int = 64 * 1024,
                       capacity_bytes: Optional[int] = None
                       ) -> "DistributedFileSystem":
        if count < replication:
            raise ValueError(
                f"{count} datanodes cannot satisfy replication {replication}")
        namenode = NameNode(replication=replication, block_size=block_size)
        for index in range(count):
            namenode.register_datanode(
                DataNode(f"datanode-{index}", capacity_bytes=capacity_bytes))
        return cls(namenode)

    @property
    def datanodes(self) -> List[DataNode]:
        return list(self.namenode._datanodes.values())

    # -- file operations ---------------------------------------------------------
    def create(self, path: str, data: bytes,
               replication: Optional[int] = None) -> FileStatus:
        if self.namenode.exists(path):
            raise FileAlreadyExists(path)
        replication = replication or self.namenode.replication
        block_ids = []
        for start in range(0, max(len(data), 1), self.namenode.block_size):
            chunk = data[start:start + self.namenode.block_size]
            block_id = self.namenode.allocate_block()
            targets = self.namenode.choose_targets(replication)
            for node in targets:
                node.store(block_id, chunk)
                self.namenode.record_replica(block_id, node.name)
            block_ids.append(block_id)
        status = FileStatus(path=path, size=len(data),
                            block_ids=block_ids, replication=replication)
        self.namenode.record_file(status)
        self._files_created.inc()
        self._bytes_written.inc(len(data))
        self._stored_gauge.set(self.total_bytes_stored())
        return status

    def read(self, path: str) -> bytes:
        status = self.namenode.stat(path)
        parts = []
        for block_id in status.block_ids:
            live = self.namenode.live_replicas(block_id)
            if not live:
                raise NotEnoughReplicas(
                    f"all replicas of block {block_id} ({path}) are dead")
            parts.append(live[0].read(block_id))
        payload = b"".join(parts)
        self._bytes_read.inc(len(payload))
        return payload

    def append(self, path: str, data: bytes) -> FileStatus:
        """Append by writing new blocks (no partial-block fill, like HDFS v1)."""
        status = self.namenode.stat(path)
        for start in range(0, len(data), self.namenode.block_size):
            chunk = data[start:start + self.namenode.block_size]
            block_id = self.namenode.allocate_block()
            targets = self.namenode.choose_targets(status.replication)
            for node in targets:
                node.store(block_id, chunk)
                self.namenode.record_replica(block_id, node.name)
            status.block_ids.append(block_id)
        status.size += len(data)
        self._bytes_written.inc(len(data))
        self._stored_gauge.set(self.total_bytes_stored())
        return status

    def delete(self, path: str) -> None:
        status = self.namenode.remove_file(path)
        for block_id in status.block_ids:
            for name in self.namenode.replicas(block_id):
                self.namenode.datanode(name).drop(block_id)
                self.namenode.forget_replica(block_id, name)
        self._files_deleted.inc()
        self._stored_gauge.set(self.total_bytes_stored())

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def stat(self, path: str) -> FileStatus:
        return self.namenode.stat(path)

    def listdir(self, prefix: str = "/") -> List[str]:
        return self.namenode.listdir(prefix)

    # -- failure handling -----------------------------------------------------------
    def fail_datanode(self, name: str) -> None:
        self.namenode.datanode(name).alive = False
        self.runtime.events.emit("dfs.datanode_failed", node=name)

    def recover_datanode(self, name: str) -> None:
        self.namenode.datanode(name).alive = True
        self.runtime.events.emit("dfs.datanode_recovered", node=name)

    def under_replicated(self) -> List[BlockReport]:
        return [r for r in self.namenode.block_reports() if r.under_replicated]

    def re_replicate(self) -> int:
        """Copy every under-replicated block to fresh datanodes.

        Returns the number of new replicas created.  Blocks with zero live
        replicas are unrecoverable and skipped (surfaced by
        :meth:`under_replicated`).
        """
        created = 0
        for report in self.under_replicated():
            live = self.namenode.live_replicas(report.block_id)
            if not live:
                continue
            source = live[0]
            data = source.read(report.block_id)
            existing = {n.name for n in live}
            missing = report.expected_replicas - len(live)
            try:
                targets = self.namenode.choose_targets(missing, exclude=existing)
            except NotEnoughReplicas:
                continue
            for node in targets:
                node.store(report.block_id, data)
                self.namenode.record_replica(report.block_id, node.name)
                created += 1
        if created:
            self._replicas_created.inc(created)
            self._stored_gauge.set(self.total_bytes_stored())
        return created

    def total_bytes_stored(self) -> int:
        return sum(node.used_bytes for node in self.datanodes)
