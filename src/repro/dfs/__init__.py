"""HDFS-like distributed file system (Sec. II-C-2).

The paper stores raw and annotated city data in HDFS; this package is a
from-scratch functional equivalent: a :class:`NameNode` tracks the namespace
and block locations, :class:`DataNode` instances hold replicated blocks, and
:class:`DistributedFileSystem` is the client facade.  Replication tolerates
datanode failures: when a node dies, under-replicated blocks are re-copied
from surviving replicas, exactly the property benchmark E13 measures.
"""

from repro.dfs.filesystem import (
    BlockReport,
    DataNode,
    DFSError,
    DistributedFileSystem,
    FileNotFound,
    FileStatus,
    NameNode,
    NotEnoughReplicas,
)

__all__ = [
    "DistributedFileSystem",
    "NameNode",
    "DataNode",
    "FileStatus",
    "BlockReport",
    "DFSError",
    "FileNotFound",
    "NotEnoughReplicas",
]
