"""NoSQL substrates (Sec. II-C-2): wide-column and document stores.

- :mod:`repro.nosql.hbase` — an HBase-style wide-column store layered on
  :mod:`repro.dfs`: an in-memory memstore flushes immutable sorted HFiles to
  the DFS; reads merge memstore and HFiles; compaction folds files together
  and drops tombstones.  Supports efficient random reads/writes, which plain
  DFS files do not — the exact contrast the paper draws.
- :mod:`repro.nosql.mongo` — a MongoDB-style document store with a query
  operator subset, secondary hash indexes, and a 2-D grid geo index used by
  the geospatial city queries.
"""

from repro.nosql.hbase import Cell, HBaseError, HTable
from repro.nosql.mongo import Collection, DocumentStore, MongoError

__all__ = ["HTable", "Cell", "HBaseError",
           "DocumentStore", "Collection", "MongoError"]
