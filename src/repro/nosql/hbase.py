"""HBase-style wide-column store over the distributed file system.

Data model: ``table[row_key][(family, qualifier)] -> (value, timestamp)``.
Writes land in a sorted in-memory *memstore*; when it exceeds a threshold it
is flushed as an immutable, sorted *HFile* into :mod:`repro.dfs`.  Reads
merge the memstore with HFiles newest-first.  Deletes write tombstones;
*compaction* merges all HFiles, keeping only the newest version per cell and
dropping tombstoned cells.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dfs import DistributedFileSystem
from repro.runtime import get_runtime


class HBaseError(Exception):
    """Raised for invalid table operations."""


@dataclass(frozen=True)
class Cell:
    """One versioned cell."""

    row: str
    family: str
    qualifier: str
    value: bytes
    timestamp: int
    tombstone: bool = False

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.row, self.family, self.qualifier)


def _encode_cells(cells: Sequence[Cell]) -> bytes:
    """Length-prefixed binary encoding of a sorted cell run."""
    parts = [struct.pack(">I", len(cells))]
    for cell in cells:
        row = cell.row.encode()
        family = cell.family.encode()
        qualifier = cell.qualifier.encode()
        parts.append(struct.pack(">HHHIQB", len(row), len(family),
                                 len(qualifier), len(cell.value),
                                 cell.timestamp, int(cell.tombstone)))
        parts.extend([row, family, qualifier, cell.value])
    return b"".join(parts)


def _decode_cells(data: bytes) -> List[Cell]:
    (count,) = struct.unpack_from(">I", data, 0)
    offset = 4
    cells = []
    for _ in range(count):
        row_len, fam_len, qual_len, val_len, timestamp, tombstone = \
            struct.unpack_from(">HHHIQB", data, offset)
        offset += struct.calcsize(">HHHIQB")
        row = data[offset:offset + row_len].decode()
        offset += row_len
        family = data[offset:offset + fam_len].decode()
        offset += fam_len
        qualifier = data[offset:offset + qual_len].decode()
        offset += qual_len
        value = data[offset:offset + val_len]
        offset += val_len
        cells.append(Cell(row, family, qualifier, value, timestamp,
                          bool(tombstone)))
    return cells


class HTable:
    """One wide-column table with declared column families.

    Example
    -------
    >>> dfs = DistributedFileSystem.with_datanodes(3, replication=2)
    >>> table = HTable("crimes", dfs, families=("info", "geo"))
    >>> table.put("incident-001", "info", "type", b"robbery")
    >>> table.get("incident-001")[("info", "type")]
    b'robbery'
    """

    def __init__(self, name: str, dfs: DistributedFileSystem,
                 families: Sequence[str],
                 memstore_flush_cells: int = 1000,
                 runtime=None):
        if not families:
            raise HBaseError("a table needs at least one column family")
        if memstore_flush_cells < 1:
            raise HBaseError("memstore_flush_cells must be >= 1")
        self.name = name
        self.dfs = dfs
        self.families = tuple(families)
        self.memstore_flush_cells = memstore_flush_cells
        self._memstore: Dict[Tuple[str, str, str], Cell] = {}
        self._hfile_paths: List[str] = []   # oldest first
        self._hfile_cache: Dict[str, List[Cell]] = {}
        self._clock = 0
        self._flush_count = 0
        self.runtime = runtime or get_runtime()
        registry = self.runtime.registry
        self._puts = registry.counter("nosql.hbase.puts")
        self._deletes = registry.counter("nosql.hbase.deletes")
        self._flushes = registry.counter("nosql.hbase.flushes")
        self._compactions = registry.counter("nosql.hbase.compactions")
        self._memstore_gauge = registry.gauge("nosql.hbase.memstore_cells")
        self._hfile_gauge = registry.gauge("nosql.hbase.hfiles")

    def _observe_sizes(self) -> None:
        self._memstore_gauge.set(len(self._memstore), table=self.name)
        self._hfile_gauge.set(len(self._hfile_paths), table=self.name)

    # -- write path -----------------------------------------------------------
    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _check_family(self, family: str) -> None:
        if family not in self.families:
            raise HBaseError(
                f"unknown column family {family!r}; declared: {self.families}")

    def put(self, row: str, family: str, qualifier: str, value: bytes,
            timestamp: Optional[int] = None) -> None:
        self._check_family(family)
        if not isinstance(value, bytes):
            raise HBaseError(f"values must be bytes, got {type(value).__name__}")
        cell = Cell(row, family, qualifier, value,
                    timestamp if timestamp is not None else self._tick())
        self._memstore[cell.key] = cell
        self._puts.inc(table=self.name)
        if len(self._memstore) >= self.memstore_flush_cells:
            self.flush()
        else:
            self._observe_sizes()

    def delete(self, row: str, family: str, qualifier: str) -> None:
        self._check_family(family)
        cell = Cell(row, family, qualifier, b"", self._tick(), tombstone=True)
        self._memstore[cell.key] = cell
        self._deletes.inc(table=self.name)
        if len(self._memstore) >= self.memstore_flush_cells:
            self.flush()
        else:
            self._observe_sizes()

    def flush(self) -> Optional[str]:
        """Write the memstore to a new HFile in the DFS; returns its path."""
        if not self._memstore:
            return None
        with self.runtime.tracer.span("nosql.hbase.flush", table=self.name):
            cells = sorted(self._memstore.values(), key=lambda c: c.key)
            path = f"/hbase/{self.name}/hfile-{self._flush_count:06d}"
            self._flush_count += 1
            self.dfs.create(path, _encode_cells(cells))
            self._hfile_paths.append(path)
            self._hfile_cache[path] = cells
            self._memstore.clear()
        self._flushes.inc(table=self.name)
        self._observe_sizes()
        return path

    # -- read path --------------------------------------------------------------
    def _hfile_cells(self, path: str) -> List[Cell]:
        if path not in self._hfile_cache:
            self._hfile_cache[path] = _decode_cells(self.dfs.read(path))
        return self._hfile_cache[path]

    def _latest_cells_for_row(self, row: str) -> Dict[Tuple[str, str], Cell]:
        """Newest non-tombstone version per (family, qualifier) for ``row``."""
        winners: Dict[Tuple[str, str], Cell] = {}

        def consider(cell: Cell):
            key = (cell.family, cell.qualifier)
            current = winners.get(key)
            if current is None or cell.timestamp > current.timestamp:
                winners[key] = cell

        for path in self._hfile_paths:
            for cell in self._hfile_cells(path):
                if cell.row == row:
                    consider(cell)
        for cell in self._memstore.values():
            if cell.row == row:
                consider(cell)
        return {key: cell for key, cell in winners.items() if not cell.tombstone}

    def get(self, row: str, family: Optional[str] = None
            ) -> Dict[Tuple[str, str], bytes]:
        """Latest values for a row: {(family, qualifier): value}."""
        if family is not None:
            self._check_family(family)
        cells = self._latest_cells_for_row(row)
        return {key: cell.value for key, cell in cells.items()
                if family is None or key[0] == family}

    def get_value(self, row: str, family: str, qualifier: str
                  ) -> Optional[bytes]:
        return self.get(row, family).get((family, qualifier))

    def scan(self, start_row: str = "", stop_row: Optional[str] = None
             ) -> Iterator[Tuple[str, Dict[Tuple[str, str], bytes]]]:
        """Rows in key order within [start_row, stop_row)."""
        rows = set()
        for path in self._hfile_paths:
            rows.update(c.row for c in self._hfile_cells(path))
        rows.update(c.row for c in self._memstore.values())
        for row in sorted(rows):
            if row < start_row:
                continue
            if stop_row is not None and row >= stop_row:
                break
            values = self.get(row)
            if values:
                yield row, values

    def row_count(self) -> int:
        return sum(1 for _ in self.scan())

    # -- maintenance ---------------------------------------------------------------
    @property
    def hfile_count(self) -> int:
        return len(self._hfile_paths)

    @property
    def memstore_size(self) -> int:
        return len(self._memstore)

    def compact(self) -> Optional[str]:
        """Major compaction: merge all HFiles, dropping stale versions and
        tombstones; returns the new file's path (None if nothing to do)."""
        if not self._hfile_paths:
            return None
        with self.runtime.tracer.span("nosql.hbase.compact", table=self.name):
            winners: Dict[Tuple[str, str, str], Cell] = {}
            for path in self._hfile_paths:
                for cell in self._hfile_cells(path):
                    current = winners.get(cell.key)
                    if current is None or cell.timestamp > current.timestamp:
                        winners[cell.key] = cell
            survivors = sorted(
                (c for c in winners.values() if not c.tombstone),
                key=lambda c: c.key)
            for path in self._hfile_paths:
                self.dfs.delete(path)
                self._hfile_cache.pop(path, None)
            self._hfile_paths.clear()
            path = f"/hbase/{self.name}/hfile-{self._flush_count:06d}"
            self._flush_count += 1
            self.dfs.create(path, _encode_cells(survivors))
            self._hfile_paths.append(path)
            self._hfile_cache[path] = survivors
        self._compactions.inc(table=self.name)
        self._observe_sizes()
        return path
