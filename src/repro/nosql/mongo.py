"""MongoDB-style document store with indexes and geospatial queries.

Documents are plain dicts; each gets an integer ``_id``.  The query language
implements the subset the smart-city applications need:

- equality and the comparison operators ``$gt $gte $lt $lte $ne $in $nin``;
- ``$exists``, ``$regex``;
- logical ``$and`` / ``$or``;
- geospatial ``$near`` (with ``$maxDistance``) and ``$geoWithin`` (box),
  both accelerated by a 2-D grid index when one exists on the field;
- dotted field paths (``"location.district"``).

Secondary hash indexes accelerate exact-match queries; the collection
records whether the last query was served by an index so tests and
benchmarks can verify index usage.
"""

from __future__ import annotations

import itertools
import math
import re
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class MongoError(Exception):
    """Raised for invalid store operations or malformed queries."""


_COMPARISONS = {
    "$gt": lambda a, b: a is not None and a > b,
    "$gte": lambda a, b: a is not None and a >= b,
    "$lt": lambda a, b: a is not None and a < b,
    "$lte": lambda a, b: a is not None and a <= b,
    "$ne": lambda a, b: a != b,
    "$in": lambda a, b: a in b,
    "$nin": lambda a, b: a not in b,
}


def _get_path(document: Dict, path: str) -> Any:
    """Resolve a dotted path; returns None when any hop is missing."""
    current: Any = document
    for part in path.split("."):
        if not isinstance(current, dict) or part not in current:
            return None
        current = current[part]
    return current


def _matches_condition(value: Any, condition: Any) -> bool:
    if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
        for op, operand in condition.items():
            if op in _COMPARISONS:
                if not _COMPARISONS[op](value, operand):
                    return False
            elif op == "$exists":
                if bool(value is not None) != bool(operand):
                    return False
            elif op == "$regex":
                if value is None or not re.search(operand, str(value)):
                    return False
            elif op in ("$near", "$maxDistance", "$geoWithin"):
                continue  # handled by the geo planner
            else:
                raise MongoError(f"unsupported operator: {op}")
        return True
    return value == condition


def _geo_distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


class GridIndex:
    """A 2-D grid (bucketed) index over [x, y] points."""

    def __init__(self, cell_size: float = 0.01):
        if cell_size <= 0:
            raise MongoError(f"cell_size must be positive: {cell_size}")
        self.cell_size = cell_size
        self._buckets: Dict[Tuple[int, int], set] = {}

    def _bucket(self, point: Sequence[float]) -> Tuple[int, int]:
        return (int(math.floor(point[0] / self.cell_size)),
                int(math.floor(point[1] / self.cell_size)))

    def add(self, doc_id: int, point: Sequence[float]) -> None:
        self._buckets.setdefault(self._bucket(point), set()).add(doc_id)

    def remove(self, doc_id: int, point: Sequence[float]) -> None:
        bucket = self._buckets.get(self._bucket(point))
        if bucket:
            bucket.discard(doc_id)

    def candidates_near(self, point: Sequence[float], radius: float) -> set:
        """Doc ids in all buckets intersecting the radius ball."""
        span = int(math.ceil(radius / self.cell_size))
        cx, cy = self._bucket(point)
        out: set = set()
        for dx in range(-span, span + 1):
            for dy in range(-span, span + 1):
                out |= self._buckets.get((cx + dx, cy + dy), set())
        return out

    def candidates_in_box(self, low: Sequence[float], high: Sequence[float]) -> set:
        bx0, by0 = self._bucket(low)
        bx1, by1 = self._bucket(high)
        out: set = set()
        for bx in range(bx0, bx1 + 1):
            for by in range(by0, by1 + 1):
                out |= self._buckets.get((bx, by), set())
        return out


class Collection:
    """One document collection with optional secondary indexes."""

    def __init__(self, name: str):
        self.name = name
        self._documents: Dict[int, Dict] = {}
        self._counter = itertools.count(1)
        self._hash_indexes: Dict[str, Dict[Any, set]] = {}
        self._geo_indexes: Dict[str, GridIndex] = {}
        self.last_query_used_index = False

    def __len__(self) -> int:
        return len(self._documents)

    # -- indexes ---------------------------------------------------------------
    def create_index(self, field: str) -> None:
        """Hash index on ``field`` for exact-match acceleration."""
        index: Dict[Any, set] = {}
        for doc_id, document in self._documents.items():
            value = _hashable(_get_path(document, field))
            index.setdefault(value, set()).add(doc_id)
        self._hash_indexes[field] = index

    def create_geo_index(self, field: str, cell_size: float = 0.01) -> None:
        """2-D grid index on a ``[x, y]`` point field."""
        index = GridIndex(cell_size)
        for doc_id, document in self._documents.items():
            point = _get_path(document, field)
            if _is_point(point):
                index.add(doc_id, point)
        self._geo_indexes[field] = index

    def _index_insert(self, doc_id: int, document: Dict) -> None:
        for field, index in self._hash_indexes.items():
            value = _hashable(_get_path(document, field))
            index.setdefault(value, set()).add(doc_id)
        for field, index in self._geo_indexes.items():
            point = _get_path(document, field)
            if _is_point(point):
                index.add(doc_id, point)

    def _index_remove(self, doc_id: int, document: Dict) -> None:
        for field, index in self._hash_indexes.items():
            value = _hashable(_get_path(document, field))
            bucket = index.get(value)
            if bucket:
                bucket.discard(doc_id)
        for field, index in self._geo_indexes.items():
            point = _get_path(document, field)
            if _is_point(point):
                index.remove(doc_id, point)

    # -- writes -------------------------------------------------------------------
    def insert(self, document: Dict) -> int:
        if not isinstance(document, dict):
            raise MongoError(f"documents must be dicts, got {type(document).__name__}")
        doc_id = document.get("_id")
        if doc_id is None:
            doc_id = next(self._counter)
        elif doc_id in self._documents:
            raise MongoError(f"duplicate _id: {doc_id}")
        stored = dict(document)
        stored["_id"] = doc_id
        self._documents[doc_id] = stored
        self._index_insert(doc_id, stored)
        return doc_id

    def insert_many(self, documents: Iterable[Dict]) -> List[int]:
        return [self.insert(doc) for doc in documents]

    def update(self, query: Dict, update: Dict) -> int:
        """Apply ``{"$set": {...}}`` to matching docs; returns count."""
        if set(update) != {"$set"}:
            raise MongoError("only {'$set': {...}} updates are supported")
        count = 0
        for document in self.find(query):
            doc_id = document["_id"]
            stored = self._documents[doc_id]
            self._index_remove(doc_id, stored)
            for path, value in update["$set"].items():
                _set_path(stored, path, value)
            self._index_insert(doc_id, stored)
            count += 1
        return count

    def delete(self, query: Dict) -> int:
        victims = [doc["_id"] for doc in self.find(query)]
        for doc_id in victims:
            stored = self._documents.pop(doc_id)
            self._index_remove(doc_id, stored)
        return len(victims)

    # -- reads ---------------------------------------------------------------------
    def find(self, query: Optional[Dict] = None,
             limit: Optional[int] = None,
             sort: Optional[str] = None,
             descending: bool = False) -> List[Dict]:
        query = query or {}
        candidate_ids = self._plan(query)
        results = []
        for doc_id in candidate_ids:
            document = self._documents.get(doc_id)
            if document is not None and self._matches(document, query):
                results.append(dict(document))
        if sort is not None:
            results.sort(key=lambda d: (_get_path(d, sort) is None,
                                        _get_path(d, sort)),
                         reverse=descending)
        if limit is not None:
            results = results[:limit]
        return results

    def find_one(self, query: Optional[Dict] = None) -> Optional[Dict]:
        matches = self.find(query, limit=1)
        return matches[0] if matches else None

    def count(self, query: Optional[Dict] = None) -> int:
        return len(self.find(query))

    def distinct(self, field: str, query: Optional[Dict] = None) -> List:
        seen = []
        for document in self.find(query):
            value = _get_path(document, field)
            if value not in seen:
                seen.append(value)
        return seen

    # -- query planning -----------------------------------------------------------
    def _plan(self, query: Dict) -> Iterable[int]:
        """Pick candidate ids via an index when possible, else full scan."""
        self.last_query_used_index = False
        for field, condition in query.items():
            if field.startswith("$"):
                continue
            # geo index
            if field in self._geo_indexes and isinstance(condition, dict):
                if "$near" in condition:
                    radius = condition.get("$maxDistance", math.inf)
                    if math.isfinite(radius):
                        self.last_query_used_index = True
                        return self._geo_indexes[field].candidates_near(
                            condition["$near"], radius)
                if "$geoWithin" in condition:
                    box = condition["$geoWithin"]
                    self.last_query_used_index = True
                    return self._geo_indexes[field].candidates_in_box(
                        box["low"], box["high"])
            # hash index (exact match only)
            if field in self._hash_indexes and not isinstance(condition, dict):
                self.last_query_used_index = True
                return set(self._hash_indexes[field].get(_hashable(condition), set()))
        return list(self._documents.keys())

    def _matches(self, document: Dict, query: Dict) -> bool:
        for field, condition in query.items():
            if field == "$and":
                if not all(self._matches(document, sub) for sub in condition):
                    return False
            elif field == "$or":
                if not any(self._matches(document, sub) for sub in condition):
                    return False
            elif field.startswith("$"):
                raise MongoError(f"unsupported top-level operator: {field}")
            elif isinstance(condition, dict) and "$near" in condition:
                point = _get_path(document, field)
                if not _is_point(point):
                    return False
                radius = condition.get("$maxDistance", math.inf)
                if _geo_distance(point, condition["$near"]) > radius:
                    return False
                if not _matches_condition(point, condition):
                    return False
            elif isinstance(condition, dict) and "$geoWithin" in condition:
                point = _get_path(document, field)
                if not _is_point(point):
                    return False
                box = condition["$geoWithin"]
                if not (box["low"][0] <= point[0] <= box["high"][0]
                        and box["low"][1] <= point[1] <= box["high"][1]):
                    return False
            else:
                if not _matches_condition(_get_path(document, field), condition):
                    return False
        return True


class DocumentStore:
    """A named set of collections — the MongoDB database object."""

    def __init__(self, name: str = "smartcity"):
        self.name = name
        self._collections: Dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)

    def collection_names(self) -> List[str]:
        return sorted(self._collections)


def _is_point(value: Any) -> bool:
    return (isinstance(value, (list, tuple)) and len(value) == 2
            and all(isinstance(v, (int, float)) for v in value))


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value


def _set_path(document: Dict, path: str, value: Any) -> None:
    parts = path.split(".")
    current = document
    for part in parts[:-1]:
        current = current.setdefault(part, {})
        if not isinstance(current, dict):
            raise MongoError(f"cannot set {path}: {part} is not a document")
    current[parts[-1]] = value
