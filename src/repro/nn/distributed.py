"""Distributed training simulations: parameter server with staleness.

Sec. II-C-1 picks TensorFlow "because it provides model and data
parallelism and can be easily distributed among multiple nodes and
multiple workers per node".  :class:`repro.nn.data.DataParallelTrainer`
models the synchronous all-reduce regime; this module models the *other*
classic regime — an asynchronous parameter server:

- a :class:`ParameterServer` owns the canonical weights;
- :class:`AsyncWorker` replicas pull weights, compute gradients on their
  shard, and push updates that may be *stale* (computed against an older
  weight version);
- :class:`ParameterServerTrainer` interleaves workers round-robin with a
  configurable pull period, so the staleness ablation (how much async lag
  hurts convergence) is directly measurable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.modules import Module
from repro.nn.tensor import Tensor
from repro.runtime import get_runtime


class ParameterServer:
    """Canonical weights plus an SGD apply rule and a version counter.

    Pushed updates are counted in the runtime registry
    (``nn.ps.updates``) and every gradient's staleness lands in the
    ``nn.ps.staleness`` histogram, so the async-lag ablation shows up in
    the same dump as the rest of the stack.
    """

    def __init__(self, model: Module, lr: float = 0.05, runtime=None):
        if lr <= 0:
            raise ValueError(f"lr must be positive: {lr}")
        self.model = model
        self.lr = lr
        self.version = 0
        self.updates_applied = 0
        self.total_staleness = 0
        self.runtime = runtime or get_runtime()
        registry = self.runtime.registry
        self._updates = registry.counter(
            "nn.ps.updates", "gradient pushes applied")
        self._staleness = registry.histogram(
            "nn.ps.staleness", "gradient staleness in versions")

    def pull(self) -> Tuple[int, Dict[str, np.ndarray]]:
        """Current (version, weights snapshot)."""
        return self.version, {name: param.data.copy()
                              for name, param in self.model.named_parameters()}

    def push(self, gradients: Dict[str, np.ndarray],
             computed_at_version: int) -> int:
        """Apply a (possibly stale) gradient; returns its staleness."""
        staleness = self.version - computed_at_version
        if staleness < 0:
            raise ValueError("gradient from the future")
        own = dict(self.model.named_parameters())
        unknown = set(gradients) - set(own)
        if unknown:
            raise KeyError(f"gradients for unknown parameters: {sorted(unknown)}")
        for name, gradient in gradients.items():
            own[name].data -= self.lr * gradient
        self.version += 1
        self.updates_applied += 1
        self.total_staleness += staleness
        self._updates.inc()
        self._staleness.observe(staleness)
        return staleness

    @property
    def mean_staleness(self) -> float:
        if self.updates_applied == 0:
            return 0.0
        return self.total_staleness / self.updates_applied


class AsyncWorker:
    """One replica: local weights copy + gradient computation on a shard."""

    def __init__(self, name: str, build_model: Callable[[], Module],
                 loss_fn: Callable[[Tensor, np.ndarray], Tensor]):
        self.name = name
        self.model = build_model()
        self.loss_fn = loss_fn
        self.held_version = -1

    def refresh(self, server: ParameterServer) -> None:
        version, weights = server.pull()
        self.model.load_state_dict(weights)
        self.held_version = version

    def compute_gradients(self, inputs: np.ndarray, targets: np.ndarray
                          ) -> Tuple[Dict[str, np.ndarray], float]:
        self.model.zero_grad()
        loss = self.loss_fn(self.model(Tensor(inputs)), targets)
        loss.backward()
        gradients = {name: param.grad.copy()
                     for name, param in self.model.named_parameters()
                     if param.grad is not None}
        return gradients, loss.item()


class ParameterServerTrainer:
    """Round-robin async training over N workers.

    Parameters
    ----------
    pull_period:
        Workers refresh their weights every ``pull_period`` of their own
        steps.  ``pull_period=1`` is fully fresh (equivalent to sequential
        SGD); larger values increase gradient staleness — the ablation
        benchmark E16 sweeps this.
    """

    def __init__(self, build_model: Callable[[], Module],
                 loss_fn: Callable[[Tensor, np.ndarray], Tensor],
                 num_workers: int = 4, lr: float = 0.05,
                 pull_period: int = 1, runtime=None):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1: {num_workers}")
        if pull_period < 1:
            raise ValueError(f"pull_period must be >= 1: {pull_period}")
        self.runtime = runtime or get_runtime()
        self.server = ParameterServer(build_model(), lr=lr,
                                      runtime=self.runtime)
        self.workers = [AsyncWorker(f"worker-{i}", build_model, loss_fn)
                        for i in range(num_workers)]
        self.pull_period = pull_period
        self._worker_steps = [0] * num_workers
        self.losses: List[float] = []

    def run(self, inputs: np.ndarray, targets: np.ndarray,
            steps: int, batch_size: int = 16, seed: int = 0) -> List[float]:
        """Run ``steps`` pushes round-robin across workers."""
        rng = get_runtime().rng.np_child("nn.distributed.batches", seed)
        n = len(inputs)
        for step in range(steps):
            worker_index = step % len(self.workers)
            worker = self.workers[worker_index]
            if self._worker_steps[worker_index] % self.pull_period == 0:
                worker.refresh(self.server)
            self._worker_steps[worker_index] += 1
            batch = rng.integers(0, n, size=min(batch_size, n))
            gradients, loss = worker.compute_gradients(
                inputs[batch], targets[batch])
            self.server.push(gradients, worker.held_version)
            self.losses.append(loss)
            self.runtime.registry.histogram(
                "nn.train.loss", "per-step training losses").observe(
                    loss, trainer="parameter_server")
        return self.losses

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray,
                 metric: Callable[[Tensor, np.ndarray], float]) -> float:
        self.server.model.eval()
        score = metric(self.server.model(Tensor(inputs)), targets)
        self.server.model.train()
        return score
