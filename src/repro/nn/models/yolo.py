"""YOLO-style single-shot grid detectors (Sec. IV-A-1, Figs. 5-6).

The paper's vehicle pipeline runs Tiny YOLO on the local device and, when
the classification score is below a threshold, ships the pre-branch feature
map to the server where the remaining YOLOv2 layers produce the final boxes.
This module implements that family at laptop scale:

- :class:`YoloDetector` — a generic one-box-per-cell grid detector;
- :class:`TinyYolo` — a thin trunk variant;
- :class:`EarlyExitDetector` — shared stem + tiny local branch + deep server
  branch, the exact Fig. 5 topology;
- :class:`YoloLoss` — coordinate + objectness + class loss;
- decoding, non-max suppression, and precision/recall/AP evaluation.

Boxes are (cx, cy, w, h) in image-fraction coordinates, [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.rng import resolve_rng

from repro import nn
from repro.nn import functional as F
from repro.nn.inference import eval_mode, iter_microbatches, observe_inference
from repro.nn.tensor import Tensor


@dataclass(frozen=True)
class GroundTruthBox:
    """A labelled object: center/size in image fractions plus a class id."""

    cx: float
    cy: float
    w: float
    h: float
    class_id: int

    def __post_init__(self):
        for name in ("cx", "cy", "w", "h"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")


@dataclass
class Detection:
    """A decoded detection with confidence score."""

    cx: float
    cy: float
    w: float
    h: float
    class_id: int
    score: float


def box_iou(a, b) -> float:
    """Intersection-over-union of two (cx, cy, w, h) boxes."""
    ax1, ay1 = a.cx - a.w / 2, a.cy - a.h / 2
    ax2, ay2 = a.cx + a.w / 2, a.cy + a.h / 2
    bx1, by1 = b.cx - b.w / 2, b.cy - b.h / 2
    bx2, by2 = b.cx + b.w / 2, b.cy + b.h / 2
    ix = max(0.0, min(ax2, bx2) - max(ax1, bx1))
    iy = max(0.0, min(ay2, by2) - max(ay1, by1))
    inter = ix * iy
    union = a.w * a.h + b.w * b.h - inter
    return inter / union if union > 0 else 0.0


def non_max_suppression(detections: Sequence[Detection],
                        iou_threshold: float = 0.5,
                        class_agnostic: bool = False) -> List[Detection]:
    """Greedy NMS: keep highest-score boxes, drop overlapping lower ones.

    With ``class_agnostic`` set, overlapping boxes suppress each other even
    across classes (one object yields one detection).
    """
    remaining = sorted(detections, key=lambda d: d.score, reverse=True)
    kept: List[Detection] = []
    while remaining:
        best = remaining.pop(0)
        kept.append(best)
        remaining = [d for d in remaining
                     if box_iou(best, d) < iou_threshold
                     or (not class_agnostic and d.class_id != best.class_id)]
    return kept


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


class YoloDetector(nn.Module):
    """One-box-per-cell grid detector.

    The trunk is a stride-2 conv stack taking ``image_size`` down to
    ``grid``; the head is a 1x1 conv producing ``5 + num_classes`` channels:
    (tx, ty, tw, th, objectness, class logits).
    """

    def __init__(self, in_channels: int, image_size: int, num_classes: int,
                 grid: int = 4, widths: Sequence[int] = (8, 16, 16),
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.models.yolo.detector")
        stages = 0
        size = image_size
        while size > grid:
            if size % 2:
                raise ValueError(
                    f"image_size {image_size} cannot reach grid {grid} by halving")
            size //= 2
            stages += 1
        if stages == 0 or size != grid:
            raise ValueError(
                f"image_size {image_size} cannot reach grid {grid} by halving")
        if len(widths) < stages:
            widths = list(widths) + [widths[-1]] * (stages - len(widths))
        layers = []
        current = in_channels
        for stage in range(stages):
            layers += [
                nn.Conv2d(current, widths[stage], 3, stride=2, padding=1, rng=rng),
                nn.BatchNorm2d(widths[stage]),
                nn.LeakyReLU(0.1),
            ]
            current = widths[stage]
        self.trunk = nn.Sequential(*layers)
        self.head = nn.Conv2d(current, 5 + num_classes, 1, rng=rng)
        self.grid = grid
        self.num_classes = num_classes
        self.image_size = image_size
        self.in_channels = in_channels

    def forward(self, x: Tensor) -> Tensor:
        """Raw predictions, shape (N, 5 + C, S, S)."""
        return self.head(self.trunk(x))

    def decode(self, raw: np.ndarray, score_threshold: float = 0.5,
               nms_iou: float = 0.5) -> List[List[Detection]]:
        """Raw output (N, 5+C, S, S) -> per-image NMS-filtered detections."""
        return decode_predictions(raw, self.grid, self.num_classes,
                                  score_threshold, nms_iou)

    def detect(self, x: Tensor, score_threshold: float = 0.5) -> List[List[Detection]]:
        with eval_mode(self), nn.no_grad():
            raw = self.forward(x).data
        return self.decode(raw, score_threshold)

    def estimate_flops(self, input_shape: Tuple[int, ...]):
        from repro.nn.flops import estimate_flops
        flops, shape = estimate_flops(self.trunk, input_shape)
        head, shape = estimate_flops(self.head, shape)
        return flops + head, shape


class TinyYolo(YoloDetector):
    """A thin-trunk detector — the local-device half of the Fig. 5 pipeline."""

    def __init__(self, in_channels: int, image_size: int, num_classes: int,
                 grid: int = 4, rng: Optional[np.random.Generator] = None):
        super().__init__(in_channels, image_size, num_classes, grid=grid,
                         widths=(4, 8, 8), rng=rng)


def decode_predictions(raw: np.ndarray, grid: int, num_classes: int,
                       score_threshold: float = 0.5,
                       nms_iou: float = 0.5) -> List[List[Detection]]:
    """Shared decoding for any (N, 5+C, S, S) prediction volume."""
    raw = np.asarray(raw)
    n = raw.shape[0]
    results: List[List[Detection]] = []
    for image in range(n):
        detections: List[Detection] = []
        for gy in range(grid):
            for gx in range(grid):
                cell = raw[image, :, gy, gx]
                obj = float(_sigmoid(cell[4]))
                class_logits = cell[5:]
                shifted = class_logits - class_logits.max()
                probs = np.exp(shifted)
                probs /= probs.sum()
                class_id = int(probs.argmax())
                score = obj * float(probs[class_id])
                if score < score_threshold:
                    continue
                detections.append(Detection(
                    cx=(gx + float(_sigmoid(cell[0]))) / grid,
                    cy=(gy + float(_sigmoid(cell[1]))) / grid,
                    w=float(_sigmoid(cell[2])),
                    h=float(_sigmoid(cell[3])),
                    class_id=class_id,
                    score=score))
        results.append(non_max_suppression(detections, nms_iou,
                                           class_agnostic=True))
    return results


class YoloLoss:
    """YOLO training loss: coordinates + objectness + classification.

    Each ground-truth box is assigned to the grid cell containing its
    center.  Assigned cells pay a coordinate MSE (in sigmoid space), a
    BCE pushing objectness to 1, and a class cross-entropy; unassigned
    cells pay a down-weighted BCE pushing objectness to 0.
    """

    def __init__(self, grid: int, num_classes: int,
                 lambda_coord: float = 5.0, lambda_noobj: float = 0.5):
        self.grid = grid
        self.num_classes = num_classes
        self.lambda_coord = lambda_coord
        self.lambda_noobj = lambda_noobj

    def build_targets(self, batch_boxes: Sequence[Sequence[GroundTruthBox]]
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(coord_targets, obj_mask, class_targets) numpy volumes."""
        n = len(batch_boxes)
        s = self.grid
        coords = np.zeros((n, 4, s, s))
        obj = np.zeros((n, 1, s, s))
        classes = np.zeros((n, s, s), dtype=int)
        for image, boxes in enumerate(batch_boxes):
            for box in boxes:
                gx = min(int(box.cx * s), s - 1)
                gy = min(int(box.cy * s), s - 1)
                coords[image, 0, gy, gx] = box.cx * s - gx   # offset in cell
                coords[image, 1, gy, gx] = box.cy * s - gy
                coords[image, 2, gy, gx] = box.w
                coords[image, 3, gy, gx] = box.h
                obj[image, 0, gy, gx] = 1.0
                classes[image, gy, gx] = box.class_id
        return coords, obj, classes

    def __call__(self, raw: Tensor,
                 batch_boxes: Sequence[Sequence[GroundTruthBox]]) -> Tensor:
        coords, obj, classes = self.build_targets(batch_boxes)
        pred_xy = raw[:, 0:2, :, :].sigmoid()
        pred_wh = raw[:, 2:4, :, :].sigmoid()
        pred_obj = raw[:, 4:5, :, :]
        pred_cls = raw[:, 5:, :, :]

        obj_mask = Tensor(obj)
        coord_target = Tensor(coords)
        xy_loss = (((pred_xy - coord_target[:, 0:2, :, :]) ** 2) * obj_mask).sum()
        wh_loss = (((pred_wh - coord_target[:, 2:4, :, :]) ** 2) * obj_mask).sum()

        obj_bce = _bce_elementwise(pred_obj, obj)
        obj_loss = (obj_bce * obj_mask).sum()
        noobj_loss = (obj_bce_target_zero(pred_obj) * (1.0 - obj_mask)).sum()

        # classification: cross-entropy over the class logits of object cells
        n, c, s, _ = pred_cls.shape
        flat_logits = pred_cls.transpose(0, 2, 3, 1).reshape(n * s * s, c)
        flat_classes = classes.reshape(-1)
        flat_mask = obj.reshape(-1)
        log_probs = F.log_softmax(flat_logits, axis=-1)
        picked = log_probs[np.arange(n * s * s), flat_classes]
        cls_loss = -(picked * Tensor(flat_mask)).sum()

        # Normalize every term by the batch size, as in the YOLO paper:
        # the no-object BCE then genuinely suppresses empty cells instead
        # of being diluted by the cell count.
        batch = float(raw.shape[0])
        return (self.lambda_coord * (xy_loss + wh_loss)
                + obj_loss
                + self.lambda_noobj * noobj_loss
                + cls_loss) * (1.0 / batch)


def _bce_elementwise(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Per-element BCE-with-logits (no reduction)."""
    t = Tensor(np.asarray(targets), dtype=logits.data.dtype)
    relu_x = logits.relu()
    abs_x = logits.abs()
    softplus = ((-abs_x).exp() + 1.0).log()
    return relu_x - logits * t + softplus


def obj_bce_target_zero(logits: Tensor) -> Tensor:
    """BCE with target 0 for every element: softplus(x)."""
    relu_x = logits.relu()
    abs_x = logits.abs()
    softplus = ((-abs_x).exp() + 1.0).log()
    return relu_x + softplus


class EarlyExitDetector(nn.Module):
    """Shared stem + tiny local branch + deep server branch (Fig. 5).

    ``infer`` runs the stem and the tiny branch; images whose best detection
    score clears the threshold resolve locally, the rest ship the *stem
    feature map* upstream, where the deep branch finishes the job.
    """

    def __init__(self, in_channels: int, image_size: int, num_classes: int,
                 grid: int = 4, stem_width: int = 8,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.models.yolo.earlyexit")
        if image_size % 2:
            raise ValueError("image_size must be even")
        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, stem_width, 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(stem_width),
            nn.LeakyReLU(0.1))
        stem_size = image_size // 2
        # Local (tiny) branch: one strided stage per remaining halving.
        self.local_branch, local_width = _branch(
            stem_width, stem_size, grid, (8, 8), rng)
        self.local_head = nn.Conv2d(local_width, 5 + num_classes, 1, rng=rng)
        # Server (deep) branch: wider stages plus an extra refinement conv.
        self.remote_branch, remote_width = _branch(
            stem_width, stem_size, grid, (16, 32), rng, extra_refine=True)
        self.remote_head = nn.Conv2d(remote_width, 5 + num_classes, 1, rng=rng)
        self.grid = grid
        self.num_classes = num_classes
        self.image_size = image_size
        self.in_channels = in_channels
        self.stem_width = stem_width

    def stem_features(self, x: Tensor) -> Tensor:
        return self.stem(x)

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        features = self.stem(x)
        local = self.local_head(self.local_branch(features))
        remote = self.remote_head(self.remote_branch(features))
        return local, remote

    def joint_loss(self, x: Tensor, batch_boxes, loss_fn: "YoloLoss",
                   local_weight: float = 0.5) -> Tensor:
        local, remote = self.forward(x)
        return (local_weight * loss_fn(local, batch_boxes)
                + (1 - local_weight) * loss_fn(remote, batch_boxes))

    def feature_map_bytes(self) -> int:
        """Per-image bytes of the stem feature map shipped upstream (fp32)."""
        half = self.image_size // 2
        return self.stem_width * half * half * 4

    def raw_frame_bytes(self) -> int:
        """Per-image bytes of the raw frame (uint8 per channel)."""
        return self.in_channels * self.image_size * self.image_size

    def _infer_chunk(self, chunk: np.ndarray, threshold: float,
                     score_floor: float) -> List[dict]:
        """Early-exit one micro-batch; only escalated rows hit the server."""
        features = self.stem(Tensor(chunk))
        local_raw = self.local_head(self.local_branch(features)).data
        local_dets = decode_predictions(local_raw, self.grid, self.num_classes,
                                        score_threshold=score_floor)
        confidences = np.array([_best_score(dets) for dets in local_dets])
        needs_remote = confidences < threshold
        remote_rows = np.flatnonzero(needs_remote)
        remote_dets = {}
        if remote_rows.size:
            remote_in = Tensor(features.data[needs_remote])
            remote_raw = self.remote_head(self.remote_branch(remote_in)).data
            decoded = decode_predictions(remote_raw, self.grid, self.num_classes,
                                         score_threshold=score_floor)
            remote_dets = dict(zip(remote_rows.tolist(), decoded))
        results = []
        for i, dets in enumerate(local_dets):
            escalated = i in remote_dets
            results.append({
                "detections": remote_dets[i] if escalated else dets,
                "exit_index": 2 if escalated else 1,
                "confidence": float(confidences[i]),
                "shipped_bytes": self.feature_map_bytes() if escalated else 0,
            })
        return results

    def infer(self, x: Tensor, threshold: float, score_floor: float = 0.2,
              batch_size: Optional[int] = None) -> List[dict]:
        """Early-exit detection for a batch, in micro-batches of
        ``batch_size`` images (all at once if None).

        Returns one dict per image: ``detections`` (final list),
        ``exit_index`` (1 local / 2 server), ``confidence`` (best local
        score), ``shipped_bytes`` (0 if resolved locally, else the stem
        feature-map payload).
        """
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        results: List[dict] = []
        with observe_inference(type(self).__name__, int(data.shape[0])):
            with eval_mode(self), nn.no_grad():
                for chunk in iter_microbatches(data, batch_size):
                    results.extend(
                        self._infer_chunk(chunk, threshold, score_floor))
        return results


def _branch(in_width: int, in_size: int, grid: int, widths, rng,
            extra_refine: bool = False):
    """Strided conv stack from ``in_size`` down to ``grid``.

    Returns (module, output_width).
    """
    stages = 0
    size = in_size
    while size > grid:
        if size % 2:
            raise ValueError(f"size {in_size} cannot reach grid {grid} by halving")
        size //= 2
        stages += 1
    if size != grid:
        raise ValueError(f"size {in_size} cannot reach grid {grid} by halving")
    widths = list(widths) + [widths[-1]] * max(0, stages - len(widths))
    layers = []
    current = in_width
    for stage in range(stages):
        layers += [
            nn.Conv2d(current, widths[stage], 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(widths[stage]),
            nn.LeakyReLU(0.1),
        ]
        current = widths[stage]
    if extra_refine:
        layers += [
            nn.Conv2d(current, current, 3, padding=1, rng=rng),
            nn.BatchNorm2d(current),
            nn.LeakyReLU(0.1),
        ]
    return nn.Sequential(*layers), current


def _best_score(detections: Sequence[Detection]) -> float:
    return max((d.score for d in detections), default=0.0)


def evaluate_detections(predicted: Sequence[Sequence[Detection]],
                        truth: Sequence[Sequence[GroundTruthBox]],
                        iou_threshold: float = 0.5) -> dict:
    """Precision / recall / F1 / mean-IoU over a batch at one IoU cut.

    A prediction matches at most one ground-truth box of the same class with
    IoU >= threshold (greedy by score).
    """
    if len(predicted) != len(truth):
        raise ValueError("predicted and truth batch sizes differ")
    tp = fp = fn = 0
    matched_ious = []
    class_correct = 0
    localized = 0
    for dets, boxes in zip(predicted, truth):
        unmatched = list(boxes)
        for det in sorted(dets, key=lambda d: d.score, reverse=True):
            best_iou, best_box = 0.0, None
            for box in unmatched:
                iou = box_iou(det, box)
                if iou > best_iou:
                    best_iou, best_box = iou, box
            if best_box is not None and best_iou >= iou_threshold:
                unmatched.remove(best_box)
                localized += 1
                matched_ious.append(best_iou)
                if det.class_id == best_box.class_id:
                    tp += 1
                    class_correct += 1
                else:
                    fp += 1
            else:
                fp += 1
        fn += len(unmatched)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "mean_iou": float(np.mean(matched_ious)) if matched_ious else 0.0,
        "classification_accuracy": class_correct / localized if localized else 0.0,
        "true_positives": tp,
        "false_positives": fp,
        "false_negatives": fn,
    }
