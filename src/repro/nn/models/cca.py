"""Canonical correlation analysis — the second fusion method of Sec. III-C.

Classical linear CCA fit in closed form from covariance matrices.  Given two
views X (n x p) and Y (n x q), finds projection matrices maximizing the
correlation between projected pairs.  The projected, concatenated views are
the fused multimodal features.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.dtypes import ensure_float
from scipy import linalg


class CCA:
    """Linear canonical correlation analysis.

    Parameters
    ----------
    n_components:
        Number of canonical pairs to keep.
    regularization:
        Ridge term added to each view's covariance for numerical stability.
    """

    def __init__(self, n_components: int = 2, regularization: float = 1e-6):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1: {n_components}")
        if regularization < 0:
            raise ValueError(f"regularization must be >= 0: {regularization}")
        self.n_components = n_components
        self.regularization = regularization
        self.weights_x: Optional[np.ndarray] = None
        self.weights_y: Optional[np.ndarray] = None
        self.mean_x: Optional[np.ndarray] = None
        self.mean_y: Optional[np.ndarray] = None
        self.correlations: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "CCA":
        x = ensure_float(x)
        y = ensure_float(y)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"views disagree on sample count: {x.shape[0]} vs {y.shape[0]}")
        n, p = x.shape
        q = y.shape[1]
        k = min(self.n_components, p, q)
        self.mean_x = x.mean(axis=0)
        self.mean_y = y.mean(axis=0)
        xc = x - self.mean_x
        yc = y - self.mean_y
        cxx = xc.T @ xc / (n - 1) + self.regularization * np.eye(p)
        cyy = yc.T @ yc / (n - 1) + self.regularization * np.eye(q)
        cxy = xc.T @ yc / (n - 1)
        # Whitened cross-covariance SVD formulation.
        cxx_inv_sqrt = _inv_sqrt(cxx)
        cyy_inv_sqrt = _inv_sqrt(cyy)
        t = cxx_inv_sqrt @ cxy @ cyy_inv_sqrt
        u, singular_values, vt = np.linalg.svd(t)
        self.weights_x = cxx_inv_sqrt @ u[:, :k]
        self.weights_y = cyy_inv_sqrt @ vt.T[:, :k]
        self.correlations = np.clip(singular_values[:k], 0.0, 1.0)
        return self

    def transform(self, x: Optional[np.ndarray] = None,
                  y: Optional[np.ndarray] = None
                  ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Project one or both views into canonical space."""
        if self.weights_x is None:
            raise RuntimeError("CCA must be fit before transform")
        out_x = out_y = None
        if x is not None:
            out_x = (ensure_float(x) - self.mean_x) @ self.weights_x
        if y is not None:
            out_y = (ensure_float(y) - self.mean_y) @ self.weights_y
        return out_x, out_y

    def fused_features(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Concatenated canonical projections — the fused representation."""
        px, py = self.transform(x, y)
        return np.concatenate([px, py], axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-component empirical correlations on held-out data."""
        px, py = self.transform(x, y)
        corrs = []
        for component in range(px.shape[1]):
            a, b = px[:, component], py[:, component]
            denom = a.std() * b.std()
            corrs.append(float(((a - a.mean()) * (b - b.mean())).mean() / denom)
                         if denom > 0 else 0.0)
        return np.array(corrs)


def _inv_sqrt(matrix: np.ndarray) -> np.ndarray:
    """Inverse matrix square root via eigendecomposition."""
    values, vectors = linalg.eigh(matrix)
    values = np.clip(values, 1e-12, None)
    return vectors @ np.diag(values ** -0.5) @ vectors.T
