"""Plain convolutional classifiers — the baseline CNN modules of Sec. III-A."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from repro.runtime.rng import resolve_rng

from repro import nn


class SimpleCNN(nn.Module):
    """Conv-BN-ReLU-pool stack followed by a linear classifier.

    Parameters
    ----------
    in_channels / image_size:
        Input geometry, (C, H, W) with H == W == image_size.
    num_classes:
        Output classes.
    channels:
        Channel widths per conv stage; each stage halves the spatial size.
    """

    def __init__(self, in_channels: int, image_size: int, num_classes: int,
                 channels: Sequence[int] = (8, 16),
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.models.cnn")
        if image_size % (2 ** len(channels)) != 0:
            raise ValueError(
                f"image_size {image_size} not divisible by 2^{len(channels)}")
        layers = []
        current = in_channels
        for width in channels:
            layers += [
                nn.Conv2d(current, width, kernel_size=3, padding=1, rng=rng),
                nn.BatchNorm2d(width),
                nn.ReLU(),
                nn.MaxPool2d(2),
            ]
            current = width
        self.features = nn.Sequential(*layers)
        final_size = image_size // (2 ** len(channels))
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(current * final_size * final_size, num_classes, rng=rng))
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes

    def forward(self, x):
        return self.classifier(self.features(x))

    def estimate_flops(self, input_shape: Tuple[int, ...]):
        from repro.nn.flops import estimate_flops
        flops, shape = estimate_flops(self.features, input_shape)
        head, shape = estimate_flops(self.classifier, shape)
        return flops + head, shape
