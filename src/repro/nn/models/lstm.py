"""LSTM sequence classifiers — the RNN module family of Sec. III-B."""

from __future__ import annotations

from typing import Optional

import numpy as np
from repro.runtime.rng import resolve_rng

from repro import nn
from repro.nn.tensor import Tensor


class LSTMClassifier(nn.Module):
    """Stacked LSTM over (N, T, F) sequences, classifying from the last state.

    Used standalone for time-series (crime-rate sequences, tweet-volume
    series) and as the temporal half of the Fig. 7 action-recognition model.
    """

    def __init__(self, input_size: int, hidden_size: int, num_classes: int,
                 num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.models.lstm")
        self.lstm = nn.LSTM(input_size, hidden_size, num_layers=num_layers, rng=rng)
        self.head = nn.Linear(hidden_size, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.lstm.last_hidden(x))

    def hidden_sequence(self, x: Tensor) -> Tensor:
        """Full (N, T, H) hidden sequence for downstream temporal pooling."""
        return self.lstm(x)
