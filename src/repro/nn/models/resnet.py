"""ResNet blocks with the paper's conv-shortcut variant (Fig. 8).

Fig. 8 of the paper shows the ResNet block used by the suspicious-behaviour
model: two 3x3 conv + batch-norm stages on the main path, and — deliberately
— a *convolutional* shortcut path "instead of [the] max pooling layer mostly
used in ResNet block architecture".  :class:`ResNetBlock` implements all
three shortcut options so benchmark E8 can run the ablation:

- ``"conv"``     — 1x1 strided convolution + BN (the paper's choice);
- ``"maxpool"``  — strided max-pool with zero channel padding (the common
  parameter-free alternative the paper calls out);
- ``"identity"`` — plain residual (only valid when shapes already match).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.runtime.rng import resolve_rng

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor, concatenate

SHORTCUTS = ("conv", "maxpool", "identity")


class ResNetBlock(nn.Module):
    """Two 3x3 conv stages plus a configurable shortcut path."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 shortcut: str = "conv",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if shortcut not in SHORTCUTS:
            raise ValueError(f"shortcut must be one of {SHORTCUTS}: {shortcut!r}")
        if shortcut == "identity" and (stride != 1 or in_channels != out_channels):
            raise ValueError(
                "identity shortcut requires stride=1 and matching channels")
        rng = resolve_rng(rng, "nn.models.resnet.block")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.shortcut_kind = shortcut

        self.conv1 = nn.Conv2d(in_channels, out_channels, 3,
                               stride=stride, padding=1, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if shortcut == "conv":
            self.shortcut_conv = nn.Conv2d(in_channels, out_channels, 1,
                                           stride=stride, bias=False, rng=rng)
            self.shortcut_bn = nn.BatchNorm2d(out_channels)

    def _shortcut(self, x: Tensor) -> Tensor:
        if self.shortcut_kind == "identity":
            return x
        if self.shortcut_kind == "conv":
            return self.shortcut_bn(self.shortcut_conv(x))
        # maxpool: spatially downsample, then zero-pad channels if widened.
        out = F.max_pool2d(x, kernel=self.stride, stride=self.stride) \
            if self.stride > 1 else x
        extra = self.out_channels - self.in_channels
        if extra < 0:
            raise ValueError(
                "maxpool shortcut cannot shrink channels "
                f"({self.in_channels} -> {self.out_channels})")
        if extra > 0:
            n, _, h, w = out.shape
            pad = Tensor(np.zeros((n, extra, h, w), dtype=out.data.dtype))
            out = concatenate([out, pad], axis=1)
        return out

    def forward(self, x: Tensor) -> Tensor:
        main = self.bn1(self.conv1(x)).relu()
        main = self.bn2(self.conv2(main))
        return (main + self._shortcut(x)).relu()

    def estimate_flops(self, input_shape: Tuple[int, ...]):
        """Forward-pass FLOPs for one sample, matching the plan compiler.

        Counts everything the eval forward executes: both conv/BN pairs,
        the interior ReLU, the full shortcut (conv *and* its BatchNorm —
        the latter used to be skipped, under-reporting conv-shortcut
        blocks), the strided-maxpool shortcut, and the residual add+ReLU.
        """
        from repro.nn.flops import estimate_flops
        total, shape = estimate_flops(self.conv1, input_shape)
        flops, shape = estimate_flops(self.bn1, shape)
        total += flops
        numel = shape[0] * shape[1] * shape[2]
        total += float(numel)  # interior ReLU
        for layer in (self.conv2, self.bn2):
            flops, shape = estimate_flops(layer, shape)
            total += flops
        if self.shortcut_kind == "conv":
            flops, short_shape = estimate_flops(self.shortcut_conv, input_shape)
            total += flops
            flops, _ = estimate_flops(self.shortcut_bn, short_shape)
            total += flops
        elif self.shortcut_kind == "maxpool" and self.stride > 1:
            c, h, w = input_shape
            out_h = (h - self.stride) // self.stride + 1
            out_w = (w - self.stride) // self.stride + 1
            total += float(c * out_h * out_w * self.stride ** 2)
        out_numel = shape[0] * shape[1] * shape[2]
        total += 2.0 * out_numel  # residual add + final ReLU
        return total, shape


class SmallResNet(nn.Module):
    """A compact ResNet classifier: stem conv, N blocks, global pool, linear.

    The stack of blocks mirrors the "stack of multiple ResNet blocks" that is
    the CNN module of the Fig. 7 action-recognition architecture.
    """

    def __init__(self, in_channels: int, num_classes: int,
                 widths: Sequence[int] = (8, 16), shortcut: str = "conv",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not widths:
            raise ValueError("need at least one block width")
        rng = resolve_rng(rng, "nn.models.resnet")
        self.stem = nn.Conv2d(in_channels, widths[0], 3, padding=1, rng=rng)
        self.stem_bn = nn.BatchNorm2d(widths[0])
        self.blocks = []
        current = widths[0]
        for index, width in enumerate(widths):
            stride = 1 if index == 0 else 2
            kind = shortcut
            if kind == "identity" and (stride != 1 or current != width):
                kind = "conv"  # identity impossible at stage boundaries
            block = ResNetBlock(current, width, stride=stride,
                                shortcut=kind, rng=rng)
            setattr(self, f"block{index}", block)
            self.blocks.append(block)
            current = width
        self.pool = nn.GlobalAvgPool2d()
        self.head = nn.Linear(current, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem(x)).relu()
        for block in self.blocks:
            out = block(out)
        return self.head(self.pool(out))

    def features(self, x: Tensor) -> Tensor:
        """Pre-classifier feature vector (N, C) — RNN input in Fig. 7."""
        out = self.stem_bn(self.stem(x)).relu()
        for block in self.blocks:
            out = block(out)
        return self.pool(out)

    def estimate_flops(self, input_shape: Tuple[int, ...]):
        from repro.nn.flops import estimate_flops
        total, shape = estimate_flops(self.stem, input_shape)
        flops, shape = estimate_flops(self.stem_bn, shape)
        total += flops
        total += float(shape[0] * shape[1] * shape[2])  # stem ReLU
        for block in self.blocks:
            flops, shape = block.estimate_flops(shape)
            total += flops
        flops, shape = estimate_flops(self.pool, shape)
        total += flops
        flops, shape = estimate_flops(self.head, shape)
        return total + flops, shape
