"""The paper's model families (Sec. III), built on :mod:`repro.nn`.

- :mod:`repro.nn.models.cnn` — plain CNN modules (Sec. III-A).
- :mod:`repro.nn.models.resnet` — ResNet blocks with the paper's
  conv-shortcut variant (Fig. 8) plus maxpool/identity ablations.
- :mod:`repro.nn.models.inception` — inception-style modules (GoogLeNet
  family, Sec. III-A).
- :mod:`repro.nn.models.lstm` — LSTM sequence classifiers (Sec. III-B).
- :mod:`repro.nn.models.earlyexit` — two-exit networks with score/entropy
  confidence, the core of Figs. 5 and 7.
- :mod:`repro.nn.models.yolo` — YOLO-style single-shot grid detectors with
  a tiny/full split sharing a stem (Fig. 5).
- :mod:`repro.nn.models.autoencoder` — deep autoencoders and multimodal
  fusion autoencoders (Sec. III-C).
- :mod:`repro.nn.models.cca` — canonical correlation analysis (Sec. III-C).
"""

from repro.nn.models.cnn import SimpleCNN
from repro.nn.models.resnet import ResNetBlock, SmallResNet
from repro.nn.models.inception import InceptionModule, MiniInceptionNet
from repro.nn.models.lstm import LSTMClassifier
from repro.nn.models.earlyexit import EarlyExitNetwork, ExitDecision, entropy_confidence, score_confidence
from repro.nn.models.yolo import (
    Detection,
    EarlyExitDetector,
    GroundTruthBox,
    TinyYolo,
    YoloDetector,
    YoloLoss,
    box_iou,
    evaluate_detections,
    non_max_suppression,
)
from repro.nn.models.autoencoder import Autoencoder, MultimodalAutoencoder
from repro.nn.models.cca import CCA

__all__ = [
    "SimpleCNN",
    "ResNetBlock", "SmallResNet",
    "InceptionModule", "MiniInceptionNet",
    "LSTMClassifier",
    "EarlyExitNetwork", "ExitDecision", "entropy_confidence", "score_confidence",
    "YoloDetector", "TinyYolo", "EarlyExitDetector", "YoloLoss",
    "Detection", "GroundTruthBox", "box_iou", "non_max_suppression",
    "evaluate_detections",
    "Autoencoder", "MultimodalAutoencoder",
    "CCA",
]
