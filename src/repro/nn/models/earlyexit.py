"""Two-exit networks: the paper's core inference pattern (Figs. 5 and 7).

An :class:`EarlyExitNetwork` splits a model into a *local* stage (run on an
edge/fog device) and a *remote* stage (run on the analysis server).  The
local stage produces both a cheap classification (exit 1) and a feature map;
when exit 1's confidence clears a threshold the result is accepted locally,
otherwise only the feature map — not the raw frame — is shipped upstream and
refined by the remote stage (exit 2).

Two confidence signals from the paper:

- :func:`score_confidence` — max softmax probability (Fig. 5's "score of the
  classification ... higher than a predefined threshold");
- :func:`entropy_confidence` — negated prediction entropy (Fig. 7's "entropy
  score of Output 1").  Returned as ``-entropy`` so that for both signals
  *larger means more confident* and a single thresholding rule applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.dtypes import ensure_float
from repro.nn.inference import eval_mode, iter_microbatches, observe_inference
from repro.nn.tensor import Tensor

ConfidenceFn = Callable[[np.ndarray], np.ndarray]


def score_confidence(logits: np.ndarray) -> np.ndarray:
    """Max softmax probability per row; in [1/C, 1]."""
    logits = ensure_float(logits)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=-1, keepdims=True)
    return probs.max(axis=-1)


def entropy_confidence(logits: np.ndarray) -> np.ndarray:
    """Negative Shannon entropy of the softmax distribution; <= 0."""
    logits = ensure_float(logits)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=-1, keepdims=True)
    return -F.entropy(probs, axis=-1)


@dataclass
class ExitDecision:
    """Outcome of early-exit inference for one sample."""

    prediction: int
    exit_index: int          # 1 = local, 2 = server
    confidence: float
    local_logits: np.ndarray
    remote_logits: Optional[np.ndarray] = None

    @property
    def exited_locally(self) -> bool:
        return self.exit_index == 1


@dataclass
class BatchExitDecisions:
    """Vectorized outcome of early-exit inference for a whole batch.

    Everything is a column over the batch; ``remote_logits`` holds one row
    per *escalated* sample, with ``remote_rows`` mapping those rows back to
    batch positions.  This is the native result of the fast path — the
    per-sample :class:`ExitDecision` view is a compatibility shim.
    """

    predictions: np.ndarray            # (N,) int
    exit_index: np.ndarray             # (N,) int; 1 = local, 2 = server
    confidence: np.ndarray             # (N,) exit-1 confidence
    local_logits: np.ndarray           # (N, C)
    remote_logits: Optional[np.ndarray]  # (R, C) for escalated rows
    remote_rows: np.ndarray            # (R,) batch indices of escalated rows

    def __len__(self) -> int:
        return int(self.predictions.shape[0])

    @property
    def local_mask(self) -> np.ndarray:
        return self.exit_index == 1

    @property
    def local_fraction(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.local_mask.mean())

    def to_decisions(self) -> List[ExitDecision]:
        """Per-sample :class:`ExitDecision` list (the pre-batching API)."""
        remote_of = {int(row): index
                     for index, row in enumerate(self.remote_rows)}
        decisions = []
        for row in range(len(self)):
            remote = None
            if row in remote_of and self.remote_logits is not None:
                remote = self.remote_logits[remote_of[row]]
            decisions.append(ExitDecision(
                prediction=int(self.predictions[row]),
                exit_index=int(self.exit_index[row]),
                confidence=float(self.confidence[row]),
                local_logits=self.local_logits[row],
                remote_logits=remote))
        return decisions

    @staticmethod
    def concatenate(chunks: "List[BatchExitDecisions]") -> "BatchExitDecisions":
        """Stitch per-micro-batch results into one batch-wide result."""
        if not chunks:
            raise ValueError("cannot concatenate zero chunks")
        if len(chunks) == 1:
            return chunks[0]
        offsets = np.cumsum([0] + [len(c) for c in chunks[:-1]])
        remote_logits = [c.remote_logits for c in chunks
                         if c.remote_logits is not None and len(c.remote_rows)]
        return BatchExitDecisions(
            predictions=np.concatenate([c.predictions for c in chunks]),
            exit_index=np.concatenate([c.exit_index for c in chunks]),
            confidence=np.concatenate([c.confidence for c in chunks]),
            local_logits=np.concatenate([c.local_logits for c in chunks]),
            remote_logits=(np.concatenate(remote_logits)
                           if remote_logits else None),
            remote_rows=np.concatenate(
                [c.remote_rows + offset
                 for c, offset in zip(chunks, offsets)]).astype(int))


class EarlyExitNetwork(nn.Module):
    """A local stage + exit head, and a remote stage + exit head.

    Parameters
    ----------
    local_stage:
        Feature extractor run on the device; output feeds both heads.
    local_head:
        Cheap classifier on the local features (exit 1).
    remote_stage:
        Deeper feature extractor run on the server, consuming the *local
        feature map* (this is the blue line in Fig. 5: the feature map, not
        the raw input, crosses the network).
    remote_head:
        Full classifier on the remote features (exit 2).
    """

    #: submodules that get their own :class:`~repro.nn.plan.PlanCache`.
    PLAN_STAGES = ("local_stage", "local_head", "remote_stage", "remote_head")

    def __init__(self, local_stage: nn.Module, local_head: nn.Module,
                 remote_stage: nn.Module, remote_head: nn.Module):
        super().__init__()
        self.local_stage = local_stage
        self.local_head = local_head
        self.remote_stage = remote_stage
        self.remote_head = remote_head
        self.use_plans = False
        self._plan_caches = {}
        #: optional :class:`repro.fog.codec.ActivationCodec`: escalated
        #: feature maps round-trip through it before the remote stage,
        #: modelling compressed cross-tier activation shipping.  Plain
        #: attribute on purpose — a codec wraps a Module but is not child
        #: state of this network (it must not leak into ``state_dict`` or
        #: the deployment split).
        self.activation_codec = None

    # -- captured plans -------------------------------------------------------
    def enable_plans(self, max_plans: int = 8,
                     validate: bool = True) -> "EarlyExitNetwork":
        """Run inference through captured plans (see :mod:`repro.nn.plan`).

        Each of the four submodules gets an LRU :class:`PlanCache`; the
        first batch of a given geometry captures, later batches (and
        smaller ragged tails) reuse the cached plan's arena.
        """
        from repro.nn.plan import PlanCache
        self.use_plans = True
        self._plan_caches = {
            name: PlanCache(max_plans=max_plans, validate=validate,
                            label=f"{type(self).__name__}.{name}")
            for name in self.PLAN_STAGES}
        return self

    def plan_stats(self) -> dict:
        """Per-stage plan-cache statistics (for gateway observability)."""
        return {name: cache.stats()
                for name, cache in self._plan_caches.items()}

    def _plan_run(self, name: str, data: np.ndarray) -> np.ndarray:
        """Plan-execute a stage; the result is a view into that plan's arena."""
        from repro.nn.plan import PlanCache
        cache = self._plan_caches.get(name)
        if cache is None:
            cache = PlanCache(label=f"{type(self).__name__}.{name}")
            self._plan_caches[name] = cache
        return cache.run(getattr(self, name), data)

    # -- training ------------------------------------------------------------
    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Both exits' logits, for joint training."""
        features = self.local_stage(x)
        local_logits = self.local_head(features)
        remote_logits = self.remote_head(self.remote_stage(features))
        return local_logits, remote_logits

    def joint_loss(self, x: Tensor, targets: np.ndarray,
                   local_weight: float = 0.5) -> Tensor:
        """Weighted sum of both exits' cross-entropy losses."""
        if not 0.0 <= local_weight <= 1.0:
            raise ValueError(f"local_weight must be in [0, 1]: {local_weight}")
        local_logits, remote_logits = self.forward(x)
        return (local_weight * F.cross_entropy(local_logits, targets)
                + (1.0 - local_weight) * F.cross_entropy(remote_logits, targets))

    # -- inference --------------------------------------------------------------
    def local_features(self, x: Tensor) -> Tensor:
        return self.local_stage(x)

    def _infer_chunk(self, chunk: np.ndarray, threshold: float,
                     confidence: ConfidenceFn,
                     use_plans: Optional[bool] = None) -> BatchExitDecisions:
        """Early-exit one micro-batch with boolean masks end to end.

        With ``use_plans`` the four stages run through their captured
        plans: plan outputs are views into per-plan arenas, so anything
        that outlives the next stage call is copied out (the logits) or
        reduced to a fresh array by fancy indexing (the escalated rows).
        """
        plans = self.use_plans if use_plans is None else use_plans
        codec = getattr(self, "activation_codec", None)
        if plans and chunk.shape[0]:
            feats = self._plan_run("local_stage", chunk)
            local_logits = self._plan_run("local_head", feats).copy()
        else:
            plans = False
            features = self.local_stage(Tensor(chunk))
            feats = features.data
            local_logits = self.local_head(features).data
        conf = confidence(local_logits)
        needs_remote = conf < threshold
        predictions = local_logits.argmax(axis=-1).astype(int)
        exit_index = np.where(needs_remote, 2, 1)
        remote_rows = np.flatnonzero(needs_remote)
        remote_logits = None
        if remote_rows.size:
            # An all-true mask selects every row in order: skip the fancy-
            # index copy and hand the stage the features as-is (the plan
            # path copies them into its own arena anyway, and the eager
            # path never mutates its input).
            remote_in = feats if needs_remote.all() else feats[needs_remote]
            if codec is not None:
                remote_in = codec.transfer(remote_in)
            if plans:
                remote_feats = self._plan_run("remote_stage", remote_in)
                remote_logits = self._plan_run("remote_head", remote_feats).copy()
            else:
                remote_logits = self.remote_head(
                    self.remote_stage(Tensor(remote_in))).data
            predictions[remote_rows] = remote_logits.argmax(axis=-1)
        return BatchExitDecisions(
            predictions=predictions,
            exit_index=exit_index,
            confidence=conf,
            local_logits=local_logits,
            remote_logits=remote_logits,
            remote_rows=remote_rows)

    def infer_batch(self, x: Tensor, threshold: float,
                    confidence: ConfidenceFn = score_confidence,
                    batch_size: Optional[int] = None,
                    executor=None,
                    plan: Optional[bool] = None) -> BatchExitDecisions:
        """Batched early-exit inference on the fast path.

        Runs in eval mode with autograd off, processes the input in
        micro-batches of ``batch_size`` rows (all at once if None), and
        emits ``nn.infer.*`` metrics.  Samples whose exit-1 confidence is
        >= ``threshold`` resolve locally; the rest are refined remotely.

        ``plan`` overrides the network's ``use_plans`` flag for this call:
        True runs every stage through captured plans (auto-capturing on
        first use), False forces the eager fast path.  Plan and eager
        execution produce bit-identical decisions (the kernels mirror the
        eager ufunc sequences), so the flag is purely a performance knob.

        With an ``executor`` (a
        :class:`~repro.runtime.parallel.ParallelExecutor`), independent
        micro-batches fan out across pool workers — the forked workers
        inherit the model weights, only activations cross the boundary —
        and the concatenated decisions are bitwise identical to the
        serial path (chunk boundaries don't depend on worker count).
        Plans are per-worker state: each worker recaptures into its own
        arenas, which only the dump-dropped ``nn.plan.*`` counters see.
        """
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        with observe_inference(type(self).__name__, int(data.shape[0])):
            with eval_mode(self), nn.no_grad():
                if data.shape[0] == 0:
                    # Zero rows yield zero micro-batches; run the empty
                    # batch through one chunk so the result still carries
                    # correctly-shaped (0, C) columns.
                    return self._infer_chunk(data, threshold, confidence,
                                             use_plans=plan)
                if executor is not None:
                    chunks = executor.map_ordered(
                        lambda chunk: self._infer_chunk(
                            chunk, threshold, confidence, use_plans=plan),
                        iter_microbatches(data, batch_size),
                        label=f"nn.infer.{type(self).__name__}")
                else:
                    chunks = [self._infer_chunk(chunk, threshold, confidence,
                                                use_plans=plan)
                              for chunk in iter_microbatches(data, batch_size)]
        return BatchExitDecisions.concatenate(chunks)

    def infer(self, x: Tensor, threshold: float,
              confidence: ConfidenceFn = score_confidence,
              batch_size: Optional[int] = None) -> list:
        """Early-exit inference returning per-sample :class:`ExitDecision`s.

        A compatibility view over :meth:`infer_batch` — same decisions,
        materialized one dataclass per row.
        """
        return self.infer_batch(
            x, threshold, confidence=confidence,
            batch_size=batch_size).to_decisions()

    def sweep_thresholds(self, x: Tensor, targets: np.ndarray,
                         thresholds, confidence: ConfidenceFn = score_confidence):
        """Accuracy / local-exit fraction per threshold (one forward pass).

        Returns a list of dicts with keys ``threshold``, ``accuracy``,
        ``local_fraction``.
        """
        with eval_mode(self), nn.no_grad():
            features = self.local_stage(x)
            local_logits = self.local_head(features).data
            remote_logits = self.remote_head(self.remote_stage(features)).data
        conf = confidence(local_logits)
        targets = np.asarray(targets)
        rows = []
        for threshold in thresholds:
            local_mask = conf >= threshold
            predictions = np.where(local_mask,
                                   local_logits.argmax(axis=-1),
                                   remote_logits.argmax(axis=-1))
            rows.append({
                "threshold": float(threshold),
                "accuracy": float((predictions == targets).mean()),
                "local_fraction": float(local_mask.mean()),
            })
        return rows
