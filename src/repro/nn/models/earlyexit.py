"""Two-exit networks: the paper's core inference pattern (Figs. 5 and 7).

An :class:`EarlyExitNetwork` splits a model into a *local* stage (run on an
edge/fog device) and a *remote* stage (run on the analysis server).  The
local stage produces both a cheap classification (exit 1) and a feature map;
when exit 1's confidence clears a threshold the result is accepted locally,
otherwise only the feature map — not the raw frame — is shipped upstream and
refined by the remote stage (exit 2).

Two confidence signals from the paper:

- :func:`score_confidence` — max softmax probability (Fig. 5's "score of the
  classification ... higher than a predefined threshold");
- :func:`entropy_confidence` — negated prediction entropy (Fig. 7's "entropy
  score of Output 1").  Returned as ``-entropy`` so that for both signals
  *larger means more confident* and a single thresholding rule applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

ConfidenceFn = Callable[[np.ndarray], np.ndarray]


def score_confidence(logits: np.ndarray) -> np.ndarray:
    """Max softmax probability per row; in [1/C, 1]."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=-1, keepdims=True)
    return probs.max(axis=-1)


def entropy_confidence(logits: np.ndarray) -> np.ndarray:
    """Negative Shannon entropy of the softmax distribution; <= 0."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=-1, keepdims=True)
    return -F.entropy(probs, axis=-1)


@dataclass
class ExitDecision:
    """Outcome of early-exit inference for one sample."""

    prediction: int
    exit_index: int          # 1 = local, 2 = server
    confidence: float
    local_logits: np.ndarray
    remote_logits: Optional[np.ndarray] = None

    @property
    def exited_locally(self) -> bool:
        return self.exit_index == 1


class EarlyExitNetwork(nn.Module):
    """A local stage + exit head, and a remote stage + exit head.

    Parameters
    ----------
    local_stage:
        Feature extractor run on the device; output feeds both heads.
    local_head:
        Cheap classifier on the local features (exit 1).
    remote_stage:
        Deeper feature extractor run on the server, consuming the *local
        feature map* (this is the blue line in Fig. 5: the feature map, not
        the raw input, crosses the network).
    remote_head:
        Full classifier on the remote features (exit 2).
    """

    def __init__(self, local_stage: nn.Module, local_head: nn.Module,
                 remote_stage: nn.Module, remote_head: nn.Module):
        super().__init__()
        self.local_stage = local_stage
        self.local_head = local_head
        self.remote_stage = remote_stage
        self.remote_head = remote_head

    # -- training ------------------------------------------------------------
    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Both exits' logits, for joint training."""
        features = self.local_stage(x)
        local_logits = self.local_head(features)
        remote_logits = self.remote_head(self.remote_stage(features))
        return local_logits, remote_logits

    def joint_loss(self, x: Tensor, targets: np.ndarray,
                   local_weight: float = 0.5) -> Tensor:
        """Weighted sum of both exits' cross-entropy losses."""
        if not 0.0 <= local_weight <= 1.0:
            raise ValueError(f"local_weight must be in [0, 1]: {local_weight}")
        local_logits, remote_logits = self.forward(x)
        return (local_weight * F.cross_entropy(local_logits, targets)
                + (1.0 - local_weight) * F.cross_entropy(remote_logits, targets))

    # -- inference --------------------------------------------------------------
    def local_features(self, x: Tensor) -> Tensor:
        return self.local_stage(x)

    def infer(self, x: Tensor, threshold: float,
              confidence: ConfidenceFn = score_confidence) -> list:
        """Per-sample early-exit inference.

        Returns a list of :class:`ExitDecision`, one per input row.  Samples
        whose exit-1 confidence is >= ``threshold`` resolve locally; the rest
        are refined by the remote stage.
        """
        self.eval()
        features = self.local_stage(x)
        local_logits = self.local_head(features).data
        conf = confidence(local_logits)
        needs_remote = conf < threshold
        remote_logits = None
        if needs_remote.any():
            remote_in = Tensor(features.data[needs_remote])
            remote_logits = self.remote_head(self.remote_stage(remote_in)).data
        decisions = []
        remote_row = 0
        for row in range(local_logits.shape[0]):
            if needs_remote[row]:
                logits = remote_logits[remote_row]
                decisions.append(ExitDecision(
                    prediction=int(logits.argmax()),
                    exit_index=2,
                    confidence=float(conf[row]),
                    local_logits=local_logits[row],
                    remote_logits=logits))
                remote_row += 1
            else:
                decisions.append(ExitDecision(
                    prediction=int(local_logits[row].argmax()),
                    exit_index=1,
                    confidence=float(conf[row]),
                    local_logits=local_logits[row]))
        self.train()
        return decisions

    def sweep_thresholds(self, x: Tensor, targets: np.ndarray,
                         thresholds, confidence: ConfidenceFn = score_confidence):
        """Accuracy / local-exit fraction per threshold (one forward pass).

        Returns a list of dicts with keys ``threshold``, ``accuracy``,
        ``local_fraction``.
        """
        self.eval()
        features = self.local_stage(x)
        local_logits = self.local_head(features).data
        remote_logits = self.remote_head(self.remote_stage(features)).data
        conf = confidence(local_logits)
        targets = np.asarray(targets)
        rows = []
        for threshold in thresholds:
            local_mask = conf >= threshold
            predictions = np.where(local_mask,
                                   local_logits.argmax(axis=-1),
                                   remote_logits.argmax(axis=-1))
            rows.append({
                "threshold": float(threshold),
                "accuracy": float((predictions == targets).mean()),
                "local_fraction": float(local_mask.mean()),
            })
        self.train()
        return rows
