"""Deep autoencoders and multimodal fusion autoencoders (Sec. III-C).

The paper's multi-modal analysis fuses video and audio (e.g. gunshot
detection) with "fusion based on deep auto-encoders": per-modality encoders
feed a shared representation, from which per-modality decoders reconstruct
the inputs.  The shared code is the fused feature used downstream.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.runtime.rng import resolve_rng

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor, concatenate


def _mlp(sizes: Sequence[int], rng, final_activation: bool = True) -> nn.Sequential:
    layers = []
    for i in range(len(sizes) - 1):
        layers.append(nn.Linear(sizes[i], sizes[i + 1], rng=rng))
        if i < len(sizes) - 2 or final_activation:
            layers.append(nn.ReLU())
    return nn.Sequential(*layers)


class Autoencoder(nn.Module):
    """Symmetric MLP autoencoder: input -> code -> reconstruction."""

    def __init__(self, input_dim: int, hidden_dims: Sequence[int],
                 code_dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if code_dim < 1:
            raise ValueError(f"code_dim must be >= 1: {code_dim}")
        rng = resolve_rng(rng, "nn.models.autoencoder")
        dims = [input_dim, *hidden_dims, code_dim]
        self.encoder = _mlp(dims, rng)
        self.decoder = _mlp(list(reversed(dims)), rng, final_activation=False)
        self.input_dim = input_dim
        self.code_dim = code_dim

    def encode(self, x: Tensor) -> Tensor:
        return self.encoder(x)

    def decode(self, code: Tensor) -> Tensor:
        return self.decoder(code)

    def forward(self, x: Tensor) -> Tensor:
        return self.decode(self.encode(x))

    def reconstruction_loss(self, x: Tensor) -> Tensor:
        return F.mse_loss(self.forward(x), x)


class MultimodalAutoencoder(nn.Module):
    """Two modality encoders -> shared code -> two modality decoders.

    ``fuse`` returns the shared code given both modalities; ``fuse_partial``
    handles a missing modality by zero-filling its encoding, the standard
    multimodal-AE inference trick (Ngiam et al., cited by the paper).
    """

    def __init__(self, dim_a: int, dim_b: int, encoder_dim: int = 16,
                 code_dim: int = 8, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.models.autoencoder.multimodal")
        self.encoder_a = _mlp([dim_a, encoder_dim], rng)
        self.encoder_b = _mlp([dim_b, encoder_dim], rng)
        self.fusion = nn.Linear(2 * encoder_dim, code_dim, rng=rng)
        self.defusion = nn.Linear(code_dim, 2 * encoder_dim, rng=rng)
        self.decoder_a = _mlp([encoder_dim, dim_a], rng, final_activation=False)
        self.decoder_b = _mlp([encoder_dim, dim_b], rng, final_activation=False)
        self.dim_a, self.dim_b = dim_a, dim_b
        self.encoder_dim = encoder_dim
        self.code_dim = code_dim

    def fuse(self, a: Tensor, b: Tensor) -> Tensor:
        joint = concatenate([self.encoder_a(a), self.encoder_b(b)], axis=1)
        return self.fusion(joint).tanh()

    def fuse_partial(self, a: Optional[Tensor] = None,
                     b: Optional[Tensor] = None) -> Tensor:
        """Fused code when one modality is missing (zero-filled encoding)."""
        if a is None and b is None:
            raise ValueError("at least one modality is required")
        if a is not None:
            enc_a = self.encoder_a(a)
            batch = enc_a.shape[0]
        else:
            enc_a = None
        if b is not None:
            enc_b = self.encoder_b(b)
            batch = enc_b.shape[0]
        else:
            enc_b = None
        zero = Tensor(np.zeros((batch, self.encoder_dim)))
        joint = concatenate([enc_a if enc_a is not None else zero,
                             enc_b if enc_b is not None else zero], axis=1)
        return self.fusion(joint).tanh()

    def forward(self, a: Tensor, b: Tensor) -> Tuple[Tensor, Tensor]:
        code = self.fuse(a, b)
        expanded = self.defusion(code).relu()
        half_a = expanded[:, :self.encoder_dim]
        half_b = expanded[:, self.encoder_dim:]
        return self.decoder_a(half_a), self.decoder_b(half_b)

    def reconstruction_loss(self, a: Tensor, b: Tensor) -> Tensor:
        recon_a, recon_b = self.forward(a, b)
        return F.mse_loss(recon_a, a) + F.mse_loss(recon_b, b)
