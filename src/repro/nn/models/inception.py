"""Inception-style modules (the GoogLeNet family named in Sec. III-A)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.runtime.rng import resolve_rng

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor, concatenate


class InceptionModule(nn.Module):
    """Four parallel branches concatenated along the channel axis.

    Branches follow GoogLeNet: 1x1; 1x1 -> 3x3; 1x1 -> 5x5 (as two 3x3s);
    3x3 maxpool -> 1x1 projection.
    """

    def __init__(self, in_channels: int, out_1x1: int, reduce_3x3: int,
                 out_3x3: int, reduce_5x5: int, out_5x5: int, pool_proj: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.models.inception.module")
        self.branch1 = nn.Sequential(
            nn.Conv2d(in_channels, out_1x1, 1, rng=rng), nn.ReLU())
        self.branch2 = nn.Sequential(
            nn.Conv2d(in_channels, reduce_3x3, 1, rng=rng), nn.ReLU(),
            nn.Conv2d(reduce_3x3, out_3x3, 3, padding=1, rng=rng), nn.ReLU())
        self.branch3 = nn.Sequential(
            nn.Conv2d(in_channels, reduce_5x5, 1, rng=rng), nn.ReLU(),
            nn.Conv2d(reduce_5x5, out_5x5, 3, padding=1, rng=rng), nn.ReLU(),
            nn.Conv2d(out_5x5, out_5x5, 3, padding=1, rng=rng), nn.ReLU())
        self.branch4_proj = nn.Sequential(
            nn.Conv2d(in_channels, pool_proj, 1, rng=rng), nn.ReLU())
        self.out_channels = out_1x1 + out_3x3 + out_5x5 + pool_proj

    def forward(self, x: Tensor) -> Tensor:
        pooled = F.max_pool2d(x.pad2d(1), kernel=3, stride=1)
        return concatenate([
            self.branch1(x),
            self.branch2(x),
            self.branch3(x),
            self.branch4_proj(pooled),
        ], axis=1)

    def estimate_flops(self, input_shape: Tuple[int, ...]):
        from repro.nn.flops import estimate_flops
        total = 0.0
        for branch in (self.branch1, self.branch2, self.branch3, self.branch4_proj):
            flops, shape = estimate_flops(branch, input_shape)
            total += flops
        c, h, w = input_shape
        return total, (self.out_channels, h, w)


class MiniInceptionNet(nn.Module):
    """Stem conv + one inception module + classifier, for small city images."""

    def __init__(self, in_channels: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.models.inception")
        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, 8, 3, padding=1, rng=rng), nn.ReLU(),
            nn.MaxPool2d(2))
        self.inception = InceptionModule(8, 4, 4, 8, 2, 4, 4, rng=rng)
        self.pool = nn.GlobalAvgPool2d()
        self.head = nn.Linear(self.inception.out_channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.pool(self.inception(self.stem(x))))
