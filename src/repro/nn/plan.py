"""Graph-captured inference plans: run a module without per-op dispatch.

PR 4's fast path (``no_grad`` + fusion + float32) left two costs on the
table, both visible in ``BENCH_nn_inference.json``: per-op Python/Tensor
dispatch, and allocation churn — every conv allocates a padded input, a
GEMM output, and a bias sum on every forward.  A *plan* removes both:

- :func:`capture_plan` walks a module's structure once and compiles it
  into a linear list of kernel ops over a fixed input geometry.  Each op
  is a plain object holding pre-bound NumPy buffers and parameter views;
  executing the plan is a straight loop of ``out=``-style NumPy calls
  with **zero** Tensor wrapping and **zero** fresh array allocation.
- An :class:`Arena` owns every intermediate buffer.  Buffers are assigned
  by liveness (a slot whose last reader has run is recycled for the next
  same-shape/dtype slot), generalizing the PR 5 im2col scratch cache into
  a plan-owned pool that is reused across micro-batches.
- :class:`PlanCache` keys plans on (rows, sample shape, dtype) with LRU
  eviction and ``nn.plan.*`` counters.  A batch with *fewer* rows than a
  captured plan (the ragged tail of ``iter_microbatches``, or the
  variable escalated-row count of an early-exit remote stage) runs
  *padded* through the nearest larger plan instead of recapturing.

Kernels mirror the eager ops expression-for-expression (same NumPy ufunc
sequence, same dtypes), so on this machine a plan's output is
bit-identical to the eager fast path — early-exit *decisions* therefore
cannot differ between the two.  Capture validates this on the example
batch and records the observed error.

Plans are inference-only snapshots: they hold views of the module's
parameter arrays at capture time.  Every ``run`` cheaply verifies those
arrays are still the module's current ones and raises :class:`PlanError`
if the module was retrained, re-cast, or re-loaded — call
:meth:`PlanCache.clear` (or recapture) after mutating a planned module.

Plan state is deliberately per-process: :class:`PlanCache` pickles as an
*empty* cache (workers of a ``ParallelExecutor`` recapture on first use)
and its counters live under the ``nn.plan.`` metric prefix, which
``deterministic_dump`` drops — capture counts depend on worker placement
and must not leak into merged telemetry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn import modules as M
from repro.nn.functional import _conv_output_size
from repro.nn.grad_mode import no_grad
from repro.nn.tensor import Tensor
from repro.runtime import get_runtime

#: metric namespace for plan-cache counters; dropped from deterministic
#: dumps (see ``repro.runtime.parallel``) because plans are per-worker.
PLAN_METRIC_PREFIX = "nn.plan."


class PlanError(RuntimeError):
    """Capture failed or a captured plan no longer matches its module."""


# --------------------------------------------------------------------------
# Build-time slot bookkeeping
# --------------------------------------------------------------------------

class _Slot:
    """A logical buffer: shape + dtype, possibly aliasing another slot."""

    __slots__ = ("shape", "dtype", "base", "exclusive")

    def __init__(self, shape, dtype, base=None, exclusive=False):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.base = base          # root slot id when this is a reshape view
        self.exclusive = exclusive  # never recycled (holds persistent zeros)


class _PlanBuilder:
    """Accumulates slots and ops while a module tree is being compiled."""

    def __init__(self, rows: int, sample_shape: Tuple[int, ...], dtype):
        self.rows = rows
        self.slots: List[_Slot] = []
        self.ops: List["_PlanOp"] = []
        self.flops = 0.0
        self.fallback_ops = 0
        self.watched: List[Tuple[object, str, np.ndarray]] = []
        self.input_slot = self.new_slot((rows,) + tuple(sample_shape), dtype)

    def new_slot(self, shape, dtype, exclusive: bool = False) -> int:
        self.slots.append(_Slot(shape, dtype, exclusive=exclusive))
        return len(self.slots) - 1

    def alias_slot(self, slot: int, shape) -> int:
        """A reshape view over ``slot``'s storage (contiguous buffers only)."""
        root = self.root(slot)
        self.slots.append(_Slot(shape, self.slots[slot].dtype, base=root))
        return len(self.slots) - 1

    def root(self, slot: int) -> int:
        base = self.slots[slot].base
        return slot if base is None else base

    def add_op(self, op: "_PlanOp") -> None:
        self.ops.append(op)

    def watch(self, owner: object, attr: str, array: np.ndarray) -> None:
        """Record that the plan embeds ``owner.<attr>`` (a parameter view)."""
        self.watched.append((owner, attr, array))

    def watch_param(self, module: M.Module, name: str) -> np.ndarray:
        """Embed ``module.<name>.data`` and watch both rebind levels.

        Staleness has two shapes: ``param.data = new_array`` (optimizer
        step, ``astype``) and ``module.weight = Parameter(...)`` (reload,
        re-quantization).  Watching only the parameter object misses the
        second, so both links are recorded.
        """
        param = getattr(module, name)
        self.watch(module, name, param)
        self.watch(param, "data", param.data)
        return param.data

    def watch_buffer(self, module: M.Module, name: str) -> np.ndarray:
        array = getattr(module, name)
        self.watch(module, name, array)
        return array


class _PlanOp:
    """One step of a plan.  Subclasses bind buffers once, then ``run``.

    ``reads``/``writes`` list slot ids for liveness analysis; ``bind``
    receives the physical buffer per slot and stores direct references so
    ``run`` does no indexing or allocation (lint rule PERF403 enforces the
    no-allocation property on every ``run`` body in this module).

    ``rebind(rows)`` re-slices every working view to the first ``rows``
    batch rows.  This is how a plan serves *smaller* batches (ragged
    micro-batch tails, variable escalation counts) while staying
    bit-identical to eager: each kernel executes on a C-contiguous row
    prefix with exactly the shapes the eager path would see, so BLAS and
    ufunc reduction orders match — zero-padding the batch instead would
    let BLAS pick a different kernel for the larger M and drift by an ulp.
    Rebinding creates views only, never buffers.
    """

    label = "op"
    reads: Tuple[int, ...] = ()
    writes: Tuple[int, ...] = ()

    def bind(self, buffers: Dict[int, np.ndarray]) -> None:
        # Default for single-input, single-output, batch-leading ops;
        # multi-buffer ops (conv, pool, residual) override both methods.
        self._x_full = buffers[self.reads[0]]
        self._out_full = buffers[self.out_slot]

    def rebind(self, rows: int) -> None:
        self._x = self._x_full[:rows]
        self._out = self._out_full[:rows]

    def run(self) -> None:
        raise NotImplementedError


class _CopyOp(_PlanOp):
    """out[...] = in — materialize an alias or stage a sub-plan input."""

    label = "copy"

    def __init__(self, src: int, dst: int):
        self.reads = (src,)
        self.writes = (dst,)

    def bind(self, buffers):
        self._src_full = buffers[self.reads[0]]
        self._dst_full = buffers[self.writes[0]]

    def rebind(self, rows):
        self._src = self._src_full[:rows]
        self._dst = self._dst_full[:rows]

    def run(self):
        self._dst[...] = self._src


class _ConvOp(_PlanOp):
    """Conv2d as im2col + GEMM, mirroring ``F.conv2d`` bit for bit.

    Slots: optional padded input (exclusive: the zero border is written
    once at materialize time and never recycled), the *transposed* flat
    column matrix, the GEMM output, and the (N, F, H', W') result.

    The column matrix is stored K-major — shape (C·K·K, N·H'·W'),
    C-contiguous — so the per-(ky, kx) unfold writes land directly in
    their final positions and the eager path's second transpose-copy
    pass disappears.  The full-batch GEMM is then *channel-major*:
    W_flat @ flat_t produces (F, N·H'·W') with both operands C-order,
    the bias adds along contiguous rows, and the NCHW result is a block
    transpose (per-sample H'·W' planes move as contiguous runs) instead
    of an element-strided gather — measurably cheaper on every
    benchmarked geometry.  Each output element is still the same
    dot-product-plus-bias as eager's cols @ W.T call; capture-time
    validation checks the whole plan bit-for-bit against eager and
    flips ``force_compact`` if this BLAS build ever disagrees.
    Row-prefix runs (ragged tails, escalation subsets) *always* compact
    the prefix into a C-order buffer first and run eager's own GEMM
    orientation with the bias folded into the NCHW transpose: a
    column-sliced operand hands BLAS a foreign leading dimension, which
    is exactly the case where its micro-kernel choice (and the low bit)
    can drift from eager.
    """

    label = "conv2d"

    #: compute every GEMM from the C-order compacted operand (set by
    #: capture-time validation when the F-order fast path is not
    #: bit-identical to eager on this geometry/BLAS build)
    force_compact = False

    def __init__(self, builder: _PlanBuilder, conv: M.Conv2d, in_slot: int):
        n, c, h, w = builder.slots[in_slot].shape
        k, stride, padding = conv.kernel_size, conv.stride, conv.padding
        out_h = _conv_output_size(h, k, stride, padding)
        out_w = _conv_output_size(w, k, stride, padding)
        f = conv.out_channels
        weight = builder.watch_param(conv, "weight")
        dtype = np.result_type(builder.slots[in_slot].dtype, weight.dtype)
        self._w_flat = weight.reshape(f, -1)
        self._w_flat_t = self._w_flat.T
        self._bias_4d = None
        self._bias_col = None
        if conv.bias is not None:
            bias = builder.watch_param(conv, "bias")
            self._bias_4d = bias.reshape(1, f, 1, 1)
            self._bias_col = bias.reshape(f, 1)
        self.kernel, self.stride, self.padding = k, stride, padding
        self.geometry = (n, c, h, w, f, out_h, out_w)

        self._pad_slot = None
        if padding > 0:
            self._pad_slot = builder.new_slot(
                (n, c, h + 2 * padding, w + 2 * padding), dtype, exclusive=True)
        flat_t_slot = builder.new_slot((c * k * k, n * out_h * out_w), dtype)
        flat_c_slot = builder.new_slot((n * out_h * out_w, c * k * k), dtype)
        gemm_slot = builder.new_slot((n * out_h * out_w, f), dtype)
        gemm_t_slot = builder.new_slot((f, n * out_h * out_w), dtype)
        self.out_slot = builder.new_slot((n, f, out_h, out_w), dtype)
        self.reads = (in_slot,)
        scratch = (flat_t_slot, flat_c_slot, gemm_slot, gemm_t_slot)
        if self._pad_slot is not None:
            scratch = (self._pad_slot,) + scratch
        self.writes = scratch + (self.out_slot,)
        self._slots = (in_slot, flat_t_slot, flat_c_slot, gemm_slot,
                       gemm_t_slot, self.out_slot)
        builder.flops += 2.0 * n * f * out_h * out_w * c * k * k

    def bind(self, buffers):
        (in_slot, flat_t_slot, flat_c_slot, gemm_slot, gemm_t_slot,
         out_slot) = self._slots
        n, c, _, _, f, out_h, out_w = self.geometry
        k = self.kernel
        self._x_full = buffers[in_slot]
        self._pad_full = (buffers[self._pad_slot]
                          if self._pad_slot is not None else None)
        self._flat_t_full = buffers[flat_t_slot]
        self._flat_c_full = buffers[flat_c_slot]
        # 6-D destination for the unfold: (C, K, K, N, H', W').  Batch is
        # axis 3, so a row prefix is a (strided) slice there — the views
        # below are rebuilt per rebind, the reshape happens once here.
        self._flat_t_view_full = self._flat_t_full.reshape(
            c, k, k, n, out_h, out_w)
        self._gemm_full = buffers[gemm_slot]
        self._gemm_t_full = buffers[gemm_t_slot]
        # Channel-major GEMM result read back as NCHW: a transpose of the
        # two leading axes, i.e. contiguous (H'·W')-plane moves.  Full-row
        # runs only, so the full-batch view is built once here.
        self._out_from_t = self._gemm_t_full.reshape(
            f, n, out_h, out_w).transpose(1, 0, 2, 3)
        self._out_full = buffers[out_slot]

    def rebind(self, rows):
        _, c, _, _, f, out_h, out_w = self.geometry
        k = self.kernel
        self._x = self._x_full[:rows]
        self._x_t = self._x.transpose(1, 0, 2, 3)
        # Batch-prefix views.  The flat column matrix is K-major, so the
        # prefix is a *column* slice; BLAS reads its transpose through the
        # untouched leading dimension, copy-free.
        self._flat_t = self._flat_t_full[:, :rows * out_h * out_w]
        self._flat = self._flat_t.T
        self._flat_c = self._flat_c_full[:rows * out_h * out_w]
        self._full_rows = rows == self.geometry[0]
        self._flat_t_view = self._flat_t_view_full[:, :, :, :rows]
        self._gemm = self._gemm_full[:rows * out_h * out_w]
        self._gemm_view = self._gemm.reshape(rows, out_h, out_w, f)
        self._out = self._out_full[:rows]
        if self._pad_full is not None:
            p = self.padding
            self._pad = self._pad_full[:rows]
            self._pad_interior = self._pad[:, :, p:-p, p:-p]
            self._pad_t = self._pad.transpose(1, 0, 2, 3)
        else:
            self._pad = None

    def run(self):
        k, stride = self.kernel, self.stride
        _, _, _, _, _, out_h, out_w = self.geometry
        if self._pad is not None:
            self._pad_interior[...] = self._x
            x_t = self._pad_t
        else:
            x_t = self._x_t
        flat_t_view = self._flat_t_view
        for ky in range(k):
            y_end = ky + stride * out_h
            for kx in range(k):
                x_end = kx + stride * out_w
                flat_t_view[:, ky, kx] = x_t[:, :, ky:y_end:stride,
                                             kx:x_end:stride]
        if self._full_rows and not self.force_compact:
            np.matmul(self._w_flat, self._flat_t, out=self._gemm_t_full)
            if self._bias_col is not None:
                np.add(self._gemm_t_full, self._bias_col,
                       out=self._gemm_t_full)
            self._out[...] = self._out_from_t
        else:
            self._flat_c[...] = self._flat
            np.matmul(self._flat_c, self._w_flat_t, out=self._gemm)
            if self._bias_4d is not None:
                np.add(self._gemm_view.transpose(0, 3, 1, 2), self._bias_4d,
                       out=self._out)
            else:
                self._out[...] = self._gemm_view.transpose(0, 3, 1, 2)


class _LinearOp(_PlanOp):
    """y = x @ W.T + b via a single BLAS call into the arena."""

    label = "linear"

    def __init__(self, builder: _PlanBuilder, linear: M.Linear, in_slot: int):
        in_shape = builder.slots[in_slot].shape
        if len(in_shape) != 2 or in_shape[1] != linear.in_features:
            raise PlanError(
                f"linear layer expects (N, {linear.in_features}), "
                f"plan slot has {in_shape}")
        weight = builder.watch_param(linear, "weight")
        dtype = np.result_type(builder.slots[in_slot].dtype, weight.dtype)
        self._w_t = weight.T
        self._bias = (builder.watch_param(linear, "bias")
                      if linear.bias is not None else None)
        self.out_slot = builder.new_slot((in_shape[0], linear.out_features), dtype)
        self.reads = (in_slot,)
        self.writes = (self.out_slot,)
        builder.flops += 2.0 * in_shape[0] * linear.in_features * linear.out_features

    def bind(self, buffers):
        self._x_full = buffers[self.reads[0]]
        self._out_full = buffers[self.out_slot]

    def rebind(self, rows):
        self._x = self._x_full[:rows]
        self._out = self._out_full[:rows]

    def run(self):
        np.matmul(self._x, self._w_t, out=self._out)
        if self._bias is not None:
            self._out += self._bias


class _BatchNormOp(_PlanOp):
    """Eval-mode BatchNorm as four in-place broadcast passes.

    Replicates the eager expression ``(x - mean) / (var + eps) ** 0.5 *
    gamma + beta`` ufunc for ufunc; the denominator is precomputed at
    capture with the same dtype arithmetic, so results stay bit-identical
    to the unfused eager path.
    """

    label = "batchnorm"

    def __init__(self, builder: _PlanBuilder, bn: M.BatchNorm2d, in_slot: int):
        in_shape = builder.slots[in_slot].shape
        view = (1, -1, 1, 1) if len(in_shape) == 4 else (1, -1)
        gamma = builder.watch_param(bn, "gamma")
        beta = builder.watch_param(bn, "beta")
        mean = builder.watch_buffer(bn, "_buffer_running_mean")
        var = builder.watch_buffer(bn, "_buffer_running_var")
        dtype = np.result_type(builder.slots[in_slot].dtype, gamma.dtype)
        self._mean = mean.reshape(view)
        eps = np.asarray(bn.eps, dtype=var.dtype)
        self._denom = (var.reshape(view) + eps) ** 0.5
        self._gamma = gamma.reshape(view)
        self._beta = beta.reshape(view)
        self.out_slot = builder.new_slot(in_shape, dtype)
        self.reads = (in_slot,)
        self.writes = (self.out_slot,)
        numel = 1
        for dim in in_shape:
            numel *= dim
        builder.flops += 4.0 * numel

    def run(self):
        out = self._out
        np.subtract(self._x, self._mean, out=out)
        out /= self._denom
        out *= self._gamma
        out += self._beta


class _ReluOp(_PlanOp):
    label = "relu"

    def __init__(self, builder: _PlanBuilder, in_slot: int):
        shape = builder.slots[in_slot].shape
        self.out_slot = builder.new_slot(shape, builder.slots[in_slot].dtype)
        self.reads = (in_slot,)
        self.writes = (self.out_slot,)
        numel = 1
        for dim in shape:
            numel *= dim
        builder.flops += float(numel)

    def run(self):
        # Same expression as Tensor.relu (data * (data > 0)): preserves the
        # eager path's signed-zero behaviour, unlike np.maximum.
        np.multiply(self._x, self._x > 0, out=self._out)


class _LeakyReluOp(_PlanOp):
    label = "leaky_relu"

    def __init__(self, builder: _PlanBuilder, slope: float, in_slot: int):
        shape = builder.slots[in_slot].shape
        self._slope = slope
        self._dtype = builder.slots[in_slot].dtype
        self.out_slot = builder.new_slot(shape, self._dtype)
        self.reads = (in_slot,)
        self.writes = (self.out_slot,)
        numel = 1
        for dim in shape:
            numel *= dim
        builder.flops += float(numel)

    def run(self):
        scale = np.where(self._x > 0, 1.0, self._slope).astype(
            self._dtype, copy=False)
        np.multiply(self._x, scale, out=self._out)


class _TanhOp(_PlanOp):
    label = "tanh"

    def __init__(self, builder: _PlanBuilder, in_slot: int):
        shape = builder.slots[in_slot].shape
        self.out_slot = builder.new_slot(shape, builder.slots[in_slot].dtype)
        self.reads = (in_slot,)
        self.writes = (self.out_slot,)
        numel = 1
        for dim in shape:
            numel *= dim
        builder.flops += float(numel)

    def run(self):
        np.tanh(self._x, out=self._out)


class _SigmoidOp(_PlanOp):
    label = "sigmoid"

    def __init__(self, builder: _PlanBuilder, in_slot: int):
        shape = builder.slots[in_slot].shape
        self.out_slot = builder.new_slot(shape, builder.slots[in_slot].dtype)
        self.reads = (in_slot,)
        self.writes = (self.out_slot,)
        numel = 1
        for dim in shape:
            numel *= dim
        builder.flops += float(numel)

    def run(self):
        # Mirrors Tensor.sigmoid: 1 / (1 + exp(-clip(x, -60, 60))).
        out = self._out
        np.clip(self._x, -60, 60, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)


class _PoolOp(_PlanOp):
    """Max/avg pooling via the same (N*C, 1, H, W) unfold as the eager op."""

    def __init__(self, builder: _PlanBuilder, kind: str, kernel: int,
                 stride: Optional[int], in_slot: int):
        n, c, h, w = builder.slots[in_slot].shape
        stride = kernel if stride is None else stride
        out_h = _conv_output_size(h, kernel, stride, 0)
        out_w = _conv_output_size(w, kernel, stride, 0)
        dtype = builder.slots[in_slot].dtype
        self.kind = kind
        self.label = f"{kind}_pool"
        self.kernel, self.stride = kernel, stride
        self.geometry = (n, c, h, w, out_h, out_w)
        rows = n * c * out_h * out_w
        cols_slot = builder.new_slot((n * c, 1, kernel, kernel, out_h, out_w), dtype)
        flat_slot = builder.new_slot((rows, kernel * kernel), dtype)
        self.out_slot = builder.new_slot((n, c, out_h, out_w), dtype)
        self.reads = (in_slot,)
        self.writes = (cols_slot, flat_slot, self.out_slot)
        self._slots = (in_slot, cols_slot, flat_slot, self.out_slot)
        self._arange = np.arange(rows) if kind == "max" else None
        self._argmax = np.empty(rows, dtype=np.intp) if kind == "max" else None
        builder.flops += float(c * out_h * out_w * kernel * kernel) * n

    def bind(self, buffers):
        in_slot, cols_slot, flat_slot, out_slot = self._slots
        n, c, h, w, _, _ = self.geometry
        self._x_full = buffers[in_slot].reshape(n * c, 1, h, w)
        self._cols_full = buffers[cols_slot]
        self._flat_full = buffers[flat_slot]
        self._out_full = buffers[out_slot]

    def rebind(self, rows):
        _, c, _, _, out_h, out_w = self.geometry
        k = self.kernel
        self._x = self._x_full[:rows * c]
        self._cols = self._cols_full[:rows * c]
        flat_rows = rows * c * out_h * out_w
        self._flat = self._flat_full[:flat_rows]
        self._flat_view = self._flat.reshape(rows * c, out_h, out_w, 1, k, k)
        self._out_flat = self._out_full[:rows].reshape(flat_rows)
        if self.kind == "max":
            self._arange_r = self._arange[:flat_rows]
            self._argmax_r = self._argmax[:flat_rows]

    def run(self):
        _, _, _, _, out_h, out_w = self.geometry
        k, stride = self.kernel, self.stride
        cols = self._cols
        x = self._x
        for ky in range(k):
            y_end = ky + stride * out_h
            for kx in range(k):
                x_end = kx + stride * out_w
                cols[:, :, ky, kx, :, :] = x[:, :, ky:y_end:stride, kx:x_end:stride]
        self._flat_view[...] = cols.transpose(0, 4, 5, 1, 2, 3)
        if self.kind == "max":
            np.argmax(self._flat, axis=1, out=self._argmax_r)
            self._out_flat[...] = self._flat[self._arange_r, self._argmax_r]
        else:
            np.mean(self._flat, axis=1, out=self._out_flat)


class _GlobalAvgPoolOp(_PlanOp):
    label = "global_avg_pool"

    def __init__(self, builder: _PlanBuilder, in_slot: int):
        n, c, h, w = builder.slots[in_slot].shape
        dtype = builder.slots[in_slot].dtype
        # Tensor.mean is sum * (1 / count) with the scalar cast to the
        # tensor dtype; replicate exactly rather than calling np.mean,
        # which divides by the count and can round differently.
        self._scale = np.asarray(1.0 / (h * w), dtype=dtype)
        self.out_slot = builder.new_slot((n, c), dtype)
        self.reads = (in_slot,)
        self.writes = (self.out_slot,)
        builder.flops += float(n * c * h * w)

    def run(self):
        np.sum(self._x, axis=(2, 3), out=self._out)
        self._out *= self._scale


class _AddReluOp(_PlanOp):
    """(a + b).relu() — the residual join of a ResNet block."""

    label = "add_relu"

    def __init__(self, builder: _PlanBuilder, a_slot: int, b_slot: int,
                 relu: bool = True):
        shape = builder.slots[a_slot].shape
        if shape != builder.slots[b_slot].shape:
            raise PlanError(
                f"residual shape mismatch: {shape} vs {builder.slots[b_slot].shape}")
        self._relu = relu
        dtype = np.result_type(builder.slots[a_slot].dtype,
                               builder.slots[b_slot].dtype)
        self.out_slot = builder.new_slot(shape, dtype)
        self.reads = (a_slot, b_slot)
        self.writes = (self.out_slot,)
        numel = 1
        for dim in shape:
            numel *= dim
        builder.flops += float(numel) * (2.0 if relu else 1.0)

    def bind(self, buffers):
        self._a_full = buffers[self.reads[0]]
        self._b_full = buffers[self.reads[1]]
        self._out_full = buffers[self.out_slot]

    def rebind(self, rows):
        self._a = self._a_full[:rows]
        self._b = self._b_full[:rows]
        self._out = self._out_full[:rows]

    def run(self):
        out = self._out
        np.add(self._a, self._b, out=out)
        if self._relu:
            np.multiply(out, out > 0, out=out)


class _PadChannelsOp(_PlanOp):
    """Zero-pad channels (the widened maxpool shortcut).

    The output buffer is exclusive: the zero channels are written once at
    materialize time, only the live channels are copied per run.
    """

    label = "pad_channels"

    def __init__(self, builder: _PlanBuilder, in_slot: int, out_channels: int):
        n, c, h, w = builder.slots[in_slot].shape
        dtype = builder.slots[in_slot].dtype
        self._in_channels = c
        self.out_slot = builder.new_slot((n, out_channels, h, w), dtype,
                                         exclusive=True)
        self.reads = (in_slot,)
        self.writes = (self.out_slot,)

    def bind(self, buffers):
        self._x_full = buffers[self.reads[0]]
        self._out_full = buffers[self.out_slot]

    def rebind(self, rows):
        self._x = self._x_full[:rows]
        self._out_head = self._out_full[:rows, :self._in_channels]

    def run(self):
        self._out_head[...] = self._x


class _EagerOp(_PlanOp):
    """Fallback for modules without a registered builder.

    Correct but not fast: wraps the input buffer in a Tensor and calls the
    module's eager forward (eval semantics, grad off), copying the result
    into the arena.  ``InferencePlan.fallback_ops`` counts these so tests
    and benchmarks can assert a model compiled fully.
    """

    label = "eager"

    def __init__(self, builder: _PlanBuilder, module: M.Module, in_slot: int):
        self._module = module
        in_shape = builder.slots[in_slot].shape
        dtype = builder.slots[in_slot].dtype
        probe = np.zeros(in_shape, dtype=dtype)  # repro: noqa[PERF403]
        with no_grad():
            was_training = [(m, m.training) for m in module.modules()]
            module.eval()
            try:
                out = module(Tensor(probe))
            finally:
                for sub, training in was_training:
                    sub.training = training
        if not isinstance(out, Tensor):
            raise PlanError(
                f"cannot plan {type(module).__name__}: forward returned "
                f"{type(out).__name__}, not a Tensor")
        for param in module.parameters():
            builder.watch(param, "data", param.data)
        self.out_slot = builder.new_slot(out.data.shape, out.data.dtype)
        self.reads = (in_slot,)
        self.writes = (self.out_slot,)
        builder.fallback_ops += 1

    def run(self):
        module = self._module
        with no_grad():
            was_training = [(m, m.training) for m in module.modules()]
            module.eval()
            try:
                self._out[...] = module(Tensor(self._x)).data
            finally:
                for sub, training in was_training:
                    sub.training = training


# --------------------------------------------------------------------------
# Builder registry
# --------------------------------------------------------------------------

_PLAN_BUILDERS: Dict[type, Callable] = {}


def plan_builder(*types):
    """Register a capture rule for one or more module classes.

    Dispatch walks the module's MRO, so a subclass with its own builder
    (e.g. a quantized layer) wins over its base class rule.
    """

    def decorate(fn):
        for cls in types:
            _PLAN_BUILDERS[cls] = fn
        return fn

    return decorate


def _builder_for(module: M.Module):
    for cls in type(module).__mro__:
        fn = _PLAN_BUILDERS.get(cls)
        if fn is not None:
            return fn
    return None


def _build(builder: _PlanBuilder, module: M.Module, in_slot: int) -> int:
    fn = _builder_for(module)
    if fn is not None:
        return fn(builder, module, in_slot)
    op = _EagerOp(builder, module, in_slot)
    builder.add_op(op)
    return op.out_slot


def _build_simple(builder, op):
    builder.add_op(op)
    return op.out_slot


@plan_builder(M.Identity)
def _build_identity(builder, module, in_slot):
    return in_slot


@plan_builder(M.Dropout)
def _build_dropout(builder, module, in_slot):
    # Plans encode eval semantics; eval-mode dropout is the identity.
    return in_slot


@plan_builder(M.Sequential)
def _build_sequential(builder, module, in_slot):
    slot = in_slot
    for layer in module.layers:
        slot = _build(builder, layer, slot)
    return slot


@plan_builder(M.Conv2d)
def _build_conv(builder, module, in_slot):
    return _build_simple(builder, _ConvOp(builder, module, in_slot))


@plan_builder(M.Linear)
def _build_linear(builder, module, in_slot):
    return _build_simple(builder, _LinearOp(builder, module, in_slot))


@plan_builder(M.BatchNorm2d)
def _build_batchnorm(builder, module, in_slot):
    return _build_simple(builder, _BatchNormOp(builder, module, in_slot))


@plan_builder(M.ReLU)
def _build_relu(builder, module, in_slot):
    return _build_simple(builder, _ReluOp(builder, in_slot))


@plan_builder(M.LeakyReLU)
def _build_leaky_relu(builder, module, in_slot):
    return _build_simple(
        builder, _LeakyReluOp(builder, module.negative_slope, in_slot))


@plan_builder(M.Tanh)
def _build_tanh(builder, module, in_slot):
    return _build_simple(builder, _TanhOp(builder, in_slot))


@plan_builder(M.Sigmoid)
def _build_sigmoid(builder, module, in_slot):
    return _build_simple(builder, _SigmoidOp(builder, in_slot))


@plan_builder(M.Flatten)
def _build_flatten(builder, module, in_slot):
    shape = builder.slots[in_slot].shape
    flattened = 1
    for dim in shape[1:]:
        flattened *= dim
    return builder.alias_slot(in_slot, (shape[0], flattened))


@plan_builder(M.MaxPool2d)
def _build_max_pool(builder, module, in_slot):
    return _build_simple(builder, _PoolOp(
        builder, "max", module.kernel_size, module.stride, in_slot))


@plan_builder(M.AvgPool2d)
def _build_avg_pool(builder, module, in_slot):
    return _build_simple(builder, _PoolOp(
        builder, "avg", module.kernel_size, module.stride, in_slot))


@plan_builder(M.GlobalAvgPool2d)
def _build_global_avg_pool(builder, module, in_slot):
    return _build_simple(builder, _GlobalAvgPoolOp(builder, in_slot))


def _register_model_builders():
    """ResNet builders live here to keep module import order acyclic."""
    from repro.nn.models.resnet import ResNetBlock, SmallResNet

    @plan_builder(ResNetBlock)
    def _build_resnet_block(builder, module, in_slot):
        main = _build(builder, module.conv1, in_slot)
        main = _build(builder, module.bn1, main)
        main = _build_simple(builder, _ReluOp(builder, main))
        main = _build(builder, module.conv2, main)
        main = _build(builder, module.bn2, main)
        if module.shortcut_kind == "identity":
            shortcut = in_slot
        elif module.shortcut_kind == "conv":
            shortcut = _build(builder, module.shortcut_conv, in_slot)
            shortcut = _build(builder, module.shortcut_bn, shortcut)
        else:  # maxpool
            shortcut = in_slot
            if module.stride > 1:
                shortcut = _build_simple(builder, _PoolOp(
                    builder, "max", module.stride, module.stride, shortcut))
            if module.out_channels > module.in_channels:
                shortcut = _build_simple(builder, _PadChannelsOp(
                    builder, shortcut, module.out_channels))
        return _build_simple(builder, _AddReluOp(builder, main, shortcut))

    @plan_builder(SmallResNet)
    def _build_small_resnet(builder, module, in_slot):
        slot = _build(builder, module.stem, in_slot)
        slot = _build(builder, module.stem_bn, slot)
        slot = _build_simple(builder, _ReluOp(builder, slot))
        for block in module.blocks:
            slot = _build(builder, block, slot)
        slot = _build(builder, module.pool, slot)
        return _build(builder, module.head, slot)


_register_model_builders()


# --------------------------------------------------------------------------
# Arena: liveness-based physical buffer assignment
# --------------------------------------------------------------------------

class Arena:
    """Physical buffers for a plan, recycled by slot liveness.

    Two logical slots share storage when the earlier one's last reader has
    already run by the time the later one is written — the plan-level
    generalization of the PR 5 im2col scratch pair.  Exclusive slots
    (padded conv inputs, channel-padded shortcuts) opt out: their zero
    regions are written once here and must survive every run.
    """

    def __init__(self, slots: List[_Slot], ops: List[_PlanOp],
                 input_slot: int, output_slot: int):
        root = {i: (s.base if s.base is not None else i)
                for i, s in enumerate(slots)}
        # first_def/last_use per root slot, in op index space; the input
        # buffer is written before op 0 and the output is read after the
        # last op, so neither ever re-enters the free pool mid-plan.
        last_use: Dict[int, int] = {root[input_slot]: len(ops)}
        first_def: Dict[int, int] = {root[input_slot]: -1}
        for index, op in enumerate(ops):
            for slot in op.reads + op.writes:
                r = root[slot]
                last_use[r] = index
                first_def.setdefault(r, index)
        last_use[root[output_slot]] = len(ops)

        defs_at: Dict[int, List[int]] = {}
        for r, index in first_def.items():
            defs_at.setdefault(index, []).append(r)
        frees_at: Dict[int, List[int]] = {}
        for r, index in last_use.items():
            if not slots[r].exclusive and index < len(ops):
                frees_at.setdefault(index, []).append(r)

        physical: Dict[int, np.ndarray] = {}
        free: Dict[Tuple[Tuple[int, ...], np.dtype], List[np.ndarray]] = {}
        reused = 0
        for index in range(-1, len(ops)):
            for r in defs_at.get(index, ()):
                slot = slots[r]
                pool = free.get((slot.shape, slot.dtype))
                if pool and not slot.exclusive:
                    physical[r] = pool.pop()
                    reused += 1
                else:
                    buf = np.empty(slot.shape, dtype=slot.dtype)
                    if slot.exclusive:
                        buf.fill(0)
                    physical[r] = buf
            # A slot last touched by op ``index`` is dead once that op has
            # run: its storage is available to any slot defined later.
            for r in frees_at.get(index, ()):
                slot = slots[r]
                free.setdefault((slot.shape, slot.dtype),
                                []).append(physical[r])

        self.buffers: Dict[int, np.ndarray] = {}
        for i, slot in enumerate(slots):
            base = physical[root[i]]
            self.buffers[i] = (base if slot.base is None
                               else base.reshape(slot.shape))
        self.slots = slots
        self.reused_slots = reused
        unique = {id(b): b for b in physical.values()}
        self.num_buffers = len(unique)
        self.total_bytes = sum(b.nbytes for b in unique.values())


# --------------------------------------------------------------------------
# The plan itself
# --------------------------------------------------------------------------

class InferencePlan:
    """A compiled forward pass over a fixed (rows, sample shape, dtype).

    Created by :func:`capture_plan`; executed with :meth:`run`.  The
    returned array is a **view into the arena** — it is overwritten by the
    next ``run``, so callers that keep it must copy (exactly the contract
    of the im2col scratch cache).
    """

    def __init__(self, module: M.Module, builder: _PlanBuilder,
                 output_slot: int, label: str):
        self.rows = builder.rows
        self.sample_shape = builder.slots[builder.input_slot].shape[1:]
        self.dtype = builder.slots[builder.input_slot].dtype
        self.label = label
        self.flops = builder.flops
        self.fallback_ops = builder.fallback_ops
        self.num_ops = len(builder.ops)
        self.max_validation_error = 0.0
        self.bit_exact: Optional[bool] = None
        self._ops = builder.ops
        self._watched = builder.watched
        self.arena = Arena(builder.slots, builder.ops,
                           builder.input_slot, output_slot)
        for op in self._ops:
            op.bind(self.arena.buffers)
            op.rebind(self.rows)
        self._bound_rows = self.rows
        self._input = self.arena.buffers[builder.input_slot]
        self._output = self.arena.buffers[output_slot]
        self.output_shape = self._output.shape

    @property
    def flops_per_item(self) -> float:
        return self.flops / self.rows if self.rows else 0.0

    def _check_weights(self) -> None:
        for owner, attr, array in self._watched:
            if getattr(owner, attr) is not array:
                raise PlanError(
                    f"plan '{self.label}' is stale: {type(owner).__name__}."
                    f"{attr} was replaced after capture (retraining, astype, "
                    "or load_state_dict); clear the plan cache and recapture")

    def run(self, data: np.ndarray) -> np.ndarray:
        """Execute the plan; returns a (rows, ...) view into the arena.

        ``data`` may have *fewer* rows than the plan was captured with —
        every op re-binds to a row-prefix slice of its buffers, so ragged
        micro-batches and variable escalation counts reuse the plan's
        arena while each kernel still sees exactly the eager shapes
        (which keeps even padded runs bit-identical to eager; see
        :class:`_PlanOp`).
        """
        rows = data.shape[0]
        if rows > self.rows:
            raise PlanError(
                f"plan '{self.label}' captured for {self.rows} rows, "
                f"got {rows}")
        if data.shape[1:] != self.sample_shape or data.dtype != self.dtype:
            raise PlanError(
                f"plan '{self.label}' expects {self.sample_shape} "
                f"{self.dtype} samples, got {data.shape[1:]} {data.dtype}")
        self._check_weights()
        with no_grad():
            if rows != self._bound_rows:
                for op in self._ops:
                    op.rebind(rows)
                self._bound_rows = rows
            self._input[:rows] = data
            for op in self._ops:
                op.run()
        if rows == self.rows:
            return self._output
        return self._output[:rows]

    def __repr__(self):
        return (f"InferencePlan({self.label!r}, rows={self.rows}, "
                f"sample={self.sample_shape}, dtype={self.dtype}, "
                f"ops={self.num_ops}, fallbacks={self.fallback_ops}, "
                f"arena_bytes={self.arena.total_bytes})")

    # Plans hold live buffer/parameter views; they are per-process state
    # and must never cross a pickle boundary (see PlanCache.__getstate__).
    def __reduce__(self):
        raise TypeError("InferencePlan is not picklable; pickle the module "
                        "and recapture (PlanCache does this automatically)")


def capture_plan(module: M.Module, example: np.ndarray, *,
                 validate: bool = True, label: Optional[str] = None) -> InferencePlan:
    """Compile ``module``'s eval-mode forward for ``example``'s geometry.

    With ``validate=True`` (default) the example batch is also run through
    the eager fast path and compared; a mismatch beyond float tolerance
    raises :class:`PlanError`.  Validation requires at least one row.
    """
    example = np.asarray(example)
    if example.ndim < 1 or example.shape[0] < 1:
        raise PlanError("capture needs an example batch with >= 1 row")
    if not np.issubdtype(example.dtype, np.floating):
        raise PlanError(f"plans cover float inputs, got {example.dtype}")
    label = label or type(module).__name__
    builder = _PlanBuilder(example.shape[0], example.shape[1:], example.dtype)
    output_slot = _build(builder, module, builder.input_slot)
    if output_slot == builder.input_slot:
        # A pure pass-through (Identity chains): copy so run() returns a
        # stable output buffer rather than the input staging buffer.
        output_slot = builder.new_slot(builder.slots[builder.input_slot].shape,
                                       builder.slots[builder.input_slot].dtype)
        builder.add_op(_CopyOp(builder.input_slot, output_slot))
    plan = InferencePlan(module, builder, output_slot, label)
    if validate:
        from repro.nn.inference import eval_mode
        with eval_mode(module), no_grad():
            expected = module(Tensor(example)).data
        got = plan.run(example)
        if expected.shape != got.shape or expected.dtype != got.dtype:
            raise PlanError(
                f"plan '{label}' disagrees with eager forward: "
                f"{got.shape}/{got.dtype} vs {expected.shape}/{expected.dtype}")
        if not np.array_equal(got, expected):
            # The F-order full-batch GEMM is normally bit-identical to
            # eager's C-order call, but that is a property of the BLAS
            # build, not of IEEE arithmetic.  If this geometry drifts,
            # fall back to compacted C-order operands — same buffers,
            # one extra copy pass, guaranteed eager-equal — and check
            # again.
            convs = [op for op in plan._ops if isinstance(op, _ConvOp)]
            if convs:
                for op in convs:
                    op.force_compact = True
                got = plan.run(example)
        tolerance = 1e-5 if plan.dtype == np.float32 else 1e-10
        error = float(np.max(np.abs(got - expected))) if got.size else 0.0
        if not error <= tolerance:
            raise PlanError(
                f"plan '{label}' numerically diverges from eager forward: "
                f"max abs error {error:.3e} > {tolerance:.0e}")
        plan.max_validation_error = error
        plan.bit_exact = bool(np.array_equal(got, expected))
    return plan


# --------------------------------------------------------------------------
# Plan cache
# --------------------------------------------------------------------------

class PlanCache:
    """LRU cache of :class:`InferencePlan` keyed (rows, sample, dtype).

    Lookups accept any batch whose row count is <= a cached plan with the
    same sample shape and dtype — the smallest such plan runs padded.
    Pickling drops the plans (they embed process-local buffers); executor
    workers recapture on first use, which the ``nn.plan.capture``
    counters make visible (and ``deterministic_dump`` drops, since the
    counts depend on worker placement).
    """

    def __init__(self, max_plans: int = 8, validate: bool = True,
                 label: Optional[str] = None):
        if max_plans < 1:
            raise ValueError(f"max_plans must be >= 1: {max_plans}")
        self.max_plans = max_plans
        self.validate = validate
        self.label = label
        self._plans: "OrderedDict[tuple, InferencePlan]" = OrderedDict()
        self.hits = 0
        self.padded_hits = 0
        self.misses = 0
        self.evictions = 0

    # -- pickling / copying: plans are per-process ----------------------------
    def __getstate__(self):
        return {"max_plans": self.max_plans, "validate": self.validate,
                "label": self.label}

    def __setstate__(self, state):
        self.__init__(**state)

    def __deepcopy__(self, memo):
        return PlanCache(max_plans=self.max_plans, validate=self.validate,
                         label=self.label)

    def __len__(self):
        return len(self._plans)

    def clear(self) -> None:
        self._plans.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "padded_hits": self.padded_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "arena_bytes": sum(p.arena.total_bytes
                               for p in self._plans.values()),
        }

    def _count(self, metric: str, label: str) -> None:
        get_runtime().registry.counter(
            PLAN_METRIC_PREFIX + metric,
            help="plan cache events (per-process; dropped from "
                 "deterministic dumps)").inc(1, cache=label)

    def plan_for(self, module: M.Module, data: np.ndarray) -> InferencePlan:
        """A plan fitting ``data``: cached, padded-cached, or captured."""
        rows = int(data.shape[0])
        sample = tuple(data.shape[1:])
        dtype = np.dtype(data.dtype)
        label = self.label or type(module).__name__
        best_key = None
        for key in self._plans:
            if key[1] == sample and key[2] == dtype and key[0] >= rows:
                if best_key is None or key[0] < best_key[0]:
                    best_key = key
        if best_key is not None:
            self._plans.move_to_end(best_key)
            self.hits += 1
            self._count("cache_hits", label)
            if best_key[0] > rows:
                self.padded_hits += 1
            return self._plans[best_key]
        self.misses += 1
        self._count("cache_misses", label)
        plan = capture_plan(module, data, validate=self.validate, label=label)
        self._count("captures", label)
        self._plans[(rows, sample, dtype)] = plan
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)
            self.evictions += 1
            self._count("cache_evictions", label)
        return plan

    def run(self, module: M.Module, data: np.ndarray) -> np.ndarray:
        """Plan-execute ``data`` through ``module``; returns an arena view."""
        return self.plan_for(module, data).run(data)
