"""Gradient-descent optimizers.

Every optimizer reports through the shared runtime registry: counter
``nn.optim.steps`` (labeled by optimizer class) and histogram
``nn.optim.grad_norm`` for observed pre-clip gradient norms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.tensor import Tensor
from repro.runtime import get_runtime


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Sequence[Tensor], lr: float, runtime=None):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        self.parameters = parameters
        self.lr = lr
        self.runtime = runtime or get_runtime()
        registry = self.runtime.registry
        self._steps = registry.counter(
            "nn.optim.steps", "optimizer steps taken")
        self._grad_norm = registry.histogram(
            "nn.optim.grad_norm", "pre-clip global gradient L2 norms")

    def _record_step(self) -> None:
        self._steps.inc(opt=type(self).__name__)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most ``max_norm``."""
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float((param.grad ** 2).sum())
        norm = float(np.sqrt(total))
        self._grad_norm.observe(norm, opt=type(self).__name__)
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 runtime=None):
        super().__init__(parameters, lr, runtime=runtime)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1): {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._record_step()
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(self, parameters: Sequence[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, runtime=None):
        super().__init__(parameters, lr, runtime=runtime)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._record_step()
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad ** 2
            self._m[key], self._v[key] = m, v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiplies the optimizer's learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1: {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        self.optimizer.runtime.registry.gauge(
            "nn.optim.lr", "current learning rate").set(
                self.optimizer.lr, opt=type(self.optimizer).__name__)
