"""Dataset/DataLoader utilities and a tiny training loop.

``repro.nn`` mirrors the data-parallel training workflow the paper runs on
TensorFlow: mini-batch iteration with shuffling, plus a
:class:`DataParallelTrainer` that simulates synchronous data-parallel SGD
across N workers (gradient averaging), which is how the analysis servers
train models over multiple nodes (Sec. II-C-1).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.modules import Module
from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor
from repro.runtime.rng import resolve_rng


class ArrayDataset:
    """Paired (inputs, targets) arrays with len/indexing."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray):
        inputs = np.asarray(inputs)
        targets = np.asarray(targets)
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs and targets disagree on length: {len(inputs)} vs {len(targets)}")
        self.inputs = inputs
        self.targets = targets

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]

    def split(self, fraction: float, rng: Optional[np.random.Generator] = None
              ) -> Tuple["ArrayDataset", "ArrayDataset"]:
        """Shuffled train/test split; ``fraction`` goes to the first part."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1): {fraction}")
        rng = resolve_rng(rng, "nn.data.split")
        order = rng.permutation(len(self))
        cut = int(len(self) * fraction)
        head, tail = order[:cut], order[cut:]
        return (ArrayDataset(self.inputs[head], self.targets[head]),
                ArrayDataset(self.inputs[tail], self.targets[tail]))


class DataLoader:
    """Mini-batch iterator with optional shuffling."""

    def __init__(self, dataset: ArrayDataset, batch_size: int = 32,
                 shuffle: bool = False, rng: Optional[np.random.Generator] = None,
                 drop_last: bool = False):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = resolve_rng(rng, "nn.data.loader")

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                return
            yield self.dataset.inputs[batch], self.dataset.targets[batch]


def train_epoch(model: Module, loader: DataLoader, optimizer: Optimizer,
                loss_fn: Callable[[Tensor, np.ndarray], Tensor],
                max_grad_norm: Optional[float] = None) -> float:
    """One epoch of training; returns the mean batch loss."""
    model.train()
    losses: List[float] = []
    for inputs, targets in loader:
        optimizer.zero_grad()
        logits = model(Tensor(inputs))
        loss = loss_fn(logits, targets)
        loss.backward()
        if max_grad_norm is not None:
            optimizer.clip_grad_norm(max_grad_norm)
        optimizer.step()
        losses.append(loss.item())
    return float(np.mean(losses)) if losses else 0.0


def evaluate(model: Module, loader: DataLoader,
             metric: Callable[[Tensor, np.ndarray], float]) -> float:
    """Mean metric over the loader with the model in eval mode."""
    model.eval()
    scores: List[float] = []
    weights: List[int] = []
    for inputs, targets in loader:
        logits = model(Tensor(inputs))
        scores.append(metric(logits, targets))
        weights.append(len(targets))
    model.train()
    if not scores:
        return 0.0
    return float(np.average(scores, weights=weights))


class DataParallelTrainer:
    """Synchronous data-parallel SGD across ``num_workers`` logical workers.

    Each step shards the batch, computes per-shard gradients on the shared
    model parameters, averages them (the all-reduce), and applies one
    optimizer step.  Numerically this matches large-batch single-worker
    training; the point is to exercise and measure the paper's distributed
    training workflow on the simulated cluster.
    """

    def __init__(self, model: Module, optimizer: Optimizer,
                 loss_fn: Callable[[Tensor, np.ndarray], Tensor],
                 num_workers: int = 2):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1: {num_workers}")
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.num_workers = num_workers

    def step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        shards_x = np.array_split(inputs, self.num_workers)
        shards_y = np.array_split(targets, self.num_workers)
        parameters = self.model.parameters()
        grad_sums = [None] * len(parameters)
        total_loss = 0.0
        used = 0
        for shard_x, shard_y in zip(shards_x, shards_y):
            if len(shard_x) == 0:
                continue
            self.model.zero_grad()
            loss = self.loss_fn(self.model(Tensor(shard_x)), shard_y)
            loss.backward()
            total_loss += loss.item() * len(shard_x)
            used += len(shard_x)
            for index, param in enumerate(parameters):
                if param.grad is None:
                    continue
                if grad_sums[index] is None:
                    grad_sums[index] = param.grad * len(shard_x)
                else:
                    grad_sums[index] += param.grad * len(shard_x)
        # all-reduce: weighted average over shards
        for param, grad in zip(parameters, grad_sums):
            param.grad = None if grad is None else grad / max(used, 1)
        self.optimizer.step()
        self.model.zero_grad()
        return total_loss / max(used, 1)
