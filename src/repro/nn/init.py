"""Weight initialization schemes."""

from __future__ import annotations

from typing import Optional

import numpy as np


def _fans(shape) -> tuple:
    """(fan_in, fan_out) for dense or convolutional weight shapes."""
    if len(shape) == 2:           # (out, in) dense
        return shape[1], shape[0]
    if len(shape) == 4:           # (out_c, in_c, kh, kw) conv
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He initialization for ReLU networks (the paper's CNN stacks)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot initialization for tanh/sigmoid layers (LSTM gates)."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return np.zeros(shape)


def ones(shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return np.ones(shape)
