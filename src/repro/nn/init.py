"""Weight initialization schemes.

Every initializer honors the framework dtype policy: pass ``dtype``
explicitly or inherit :func:`repro.nn.dtypes.get_default_dtype` (float64
unless scoped otherwise), so models built under
``with nn.default_dtype(np.float32):`` come out single-precision end to end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.dtypes import get_default_dtype


def _resolve(dtype) -> np.dtype:
    return np.dtype(dtype) if dtype is not None else get_default_dtype()


def _fans(shape) -> tuple:
    """(fan_in, fan_out) for dense or convolutional weight shapes."""
    if len(shape) == 2:           # (out, in) dense
        return shape[1], shape[0]
    if len(shape) == 4:           # (out_c, in_c, kh, kw) conv
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def kaiming_uniform(shape, rng: np.random.Generator, dtype=None) -> np.ndarray:
    """He initialization for ReLU networks (the paper's CNN stacks)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(_resolve(dtype), copy=False)


def xavier_uniform(shape, rng: np.random.Generator, dtype=None) -> np.ndarray:
    """Glorot initialization for tanh/sigmoid layers (LSTM gates)."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(_resolve(dtype), copy=False)


def zeros(shape, rng: Optional[np.random.Generator] = None, dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=_resolve(dtype))


def ones(shape, rng: Optional[np.random.Generator] = None, dtype=None) -> np.ndarray:
    return np.ones(shape, dtype=_resolve(dtype))
