"""Model checkpointing — save/load state dicts as ``.npz`` archives.

In the paper's pipeline (Fig. 5 / Fig. 7) the same trained weights are
deployed to two tiers: the first stage's layers run on the local device and
the rest run on the analysis server.  Checkpointing a state dict and loading
disjoint halves onto two module instances is exactly what the fog layer does.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.modules import Module

PathLike = Union[str, Path]


def save_state(module: Module, path: PathLike) -> None:
    """Write a module's state dict to an ``.npz`` archive."""
    state = module.state_dict()
    np.savez(str(path), **state)


def load_state(module: Module, path: PathLike) -> None:
    """Load an ``.npz`` archive produced by :func:`save_state`."""
    with np.load(str(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)


def state_to_bytes(module: Module) -> bytes:
    """Serialize a state dict to bytes (what the fog tier ships upstream)."""
    buffer = io.BytesIO()
    np.savez(buffer, **module.state_dict())
    return buffer.getvalue()


def state_from_bytes(module: Module, payload: bytes) -> None:
    """Inverse of :func:`state_to_bytes`."""
    with np.load(io.BytesIO(payload)) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)


def state_size_bytes(module: Module) -> int:
    """Total parameter payload size in bytes (float64)."""
    return sum(value.nbytes for value in module.state_dict().values())
