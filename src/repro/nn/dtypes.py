"""The framework dtype policy: one knob instead of hard-coded float64.

Historically :class:`repro.nn.tensor.Tensor` force-cast every input to
``float64``, which doubles memory traffic on the inference fast path for no
accuracy benefit.  This module owns the policy:

- the *default dtype* is what non-float data (ints, bools, Python lists)
  is promoted to when it becomes a tensor, and what fresh parameters are
  initialized as.  It stays ``float64`` out of the box so every training
  path, optimizer and gradcheck remains byte-for-byte identical;
- float arrays keep their own dtype — a ``float32`` array stays ``float32``
  through the whole op chain, which is what lets
  :func:`repro.nn.fuse.fuse_for_inference` produce genuinely single-precision
  deployment copies;
- :func:`default_dtype` scopes a different default (typically ``float32``
  for building inference-only models) to a block and restores the previous
  policy on exit.

This file is one of the linter's sanctioned homes for explicit float64
casts (rule PERF401): everything else must preserve input dtype or go
through :func:`ensure_float`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

import numpy as np

DTypeLike = Union[np.dtype, type]

#: dtypes accepted as a framework default
_ALLOWED = (np.float32, np.float64)

_default_dtype = np.dtype(np.float64)


def get_default_dtype() -> np.dtype:
    """The dtype non-float data is promoted to (float64 unless changed)."""
    return _default_dtype


def set_default_dtype(dtype: DTypeLike) -> np.dtype:
    """Install a new default dtype; returns the previous one."""
    global _default_dtype
    resolved = np.dtype(dtype)
    if resolved not in [np.dtype(d) for d in _ALLOWED]:
        raise ValueError(
            f"default dtype must be float32 or float64, got {resolved}")
    previous = _default_dtype
    _default_dtype = resolved
    return previous


@contextmanager
def default_dtype(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Scope a default dtype to a block (exception-safe restore)::

        with nn.default_dtype(np.float32):
            model = SmallResNet(1, 4)     # float32 parameters throughout
    """
    previous = set_default_dtype(dtype)
    try:
        yield get_default_dtype()
    finally:
        set_default_dtype(previous)


def ensure_float(value, dtype: Optional[DTypeLike] = None) -> np.ndarray:
    """``np.asarray`` under the dtype policy.

    With ``dtype`` given, casts to it.  Otherwise float32/float64 arrays
    pass through untouched (no silent upcast — the PERF401 invariant) and
    anything else (ints, bools, lists, float16) is promoted to the current
    default dtype.
    """
    if dtype is not None:
        return np.asarray(value, dtype=dtype)
    array = np.asarray(value)
    if array.dtype.kind == "f" and array.dtype.itemsize >= 4:
        return array
    return array.astype(get_default_dtype())
