"""The inference fast path: eval-scoped, no-grad, micro-batched forwards.

Everything the fog tier needs to run a trained model cheaply lives here:

- :func:`eval_mode` — scope a module (and children) to eval mode and
  restore each submodule's previous training flag on exit;
- :func:`iter_microbatches` — slice a batch into configurable micro-batches
  so memory stays bounded while NumPy still amortizes per-op overhead;
- :func:`observe_inference` — time a block on the runtime clock and emit
  ``nn.infer.latency_s`` / ``nn.infer.throughput_items_s``;
- :func:`batched_forward` — the composition of all three: run a module
  over an input batch with no autograd recording and return the raw
  output array.

Combined with :func:`repro.nn.fuse.fuse_for_inference` and a float32 cast
this is the path the perf harness (``benchmarks/perf/``) measures.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

import numpy as np

from repro.nn.grad_mode import no_grad
from repro.nn.modules import Module
from repro.nn.tensor import Tensor
from repro.runtime import get_runtime


@contextmanager
def eval_mode(module: Module) -> Iterator[Module]:
    """Run a block with ``module`` in eval mode, then restore prior modes.

    Unlike a bare ``module.eval()`` this remembers each submodule's own
    ``training`` flag, so a model that was mid-training (or a child that
    was deliberately frozen in eval) comes back exactly as it was — even
    when the block raises.
    """
    previous = [(m, m.training) for m in module.modules()]
    module.eval()
    try:
        yield module
    finally:
        for submodule, training in previous:
            submodule.training = training


def iter_microbatches(data: np.ndarray,
                      batch_size: Optional[int] = None) -> Iterator[np.ndarray]:
    """Yield ``data`` in row-chunks of ``batch_size`` (all rows if None)."""
    if batch_size is None:
        yield data
        return
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1: {batch_size}")
    for start in range(0, data.shape[0], batch_size):
        yield data[start:start + batch_size]


@contextmanager
def observe_inference(model: str, items: int, runtime=None) -> Iterator[None]:
    """Time a block and emit the inference metrics for ``items`` samples.

    ``nn.infer.items`` is a deterministic counter; ``nn.infer.latency_s``
    and ``nn.infer.throughput_items_s`` carry runtime-clock readings —
    virtual time inside a DES simulation, *wall time* otherwise, so under
    a wall clock those two (and only those two) vary between
    identically-seeded runs.
    """
    rt = runtime or get_runtime()
    start = rt.now()
    try:
        yield
    finally:
        elapsed = rt.now() - start
        registry = rt.registry
        registry.counter(
            "nn.infer.items",
            help="samples processed by inference calls").inc(
                items, model=model)
        registry.histogram(
            "nn.infer.latency_s",
            help="wall/sim seconds per inference call").observe(
                elapsed, model=model)
        if elapsed > 0:
            registry.gauge(
                "nn.infer.throughput_items_s",
                help="samples per second of the latest inference call").set(
                    items / elapsed, model=model)


def batched_forward(module: Module, x: Union[Tensor, np.ndarray],
                    batch_size: Optional[int] = None,
                    model: Optional[str] = None,
                    runtime=None,
                    plan=None) -> np.ndarray:
    """Forward ``x`` through ``module`` on the fast path; returns an array.

    Eval mode, no autograd recording, micro-batched over the leading axis,
    and metered through ``nn.infer.*``.  The per-micro-batch outputs are
    concatenated, so callers see one array regardless of ``batch_size``.

    ``plan`` switches chunks onto the graph-captured executor
    (:mod:`repro.nn.plan`): ``True`` lazily attaches a
    :class:`~repro.nn.plan.PlanCache` to the module (as
    ``module._plan_cache``) and auto-captures per micro-batch geometry; a
    ``PlanCache`` instance is used directly (callers share one across
    modules of the same shape family at their own peril — keys include
    only geometry and dtype).  Plan output is bit-identical to the eager
    path, so the flag is purely a performance knob.
    """
    data = x.data if isinstance(x, Tensor) else np.asarray(x)
    label = model or type(module).__name__
    cache = None
    if plan is not None and plan is not False:
        if plan is True:
            cache = getattr(module, "_plan_cache", None)
            if cache is None:
                from repro.nn.plan import PlanCache
                cache = PlanCache(label=label)
                module._plan_cache = cache
        else:
            cache = plan
    outputs = []
    with observe_inference(label, int(data.shape[0]), runtime=runtime):
        with eval_mode(module), no_grad():
            if data.shape[0] == 0:
                # A zero-row batch yields no micro-batches, and
                # ``np.concatenate([])`` raises; one forward of the empty
                # batch lets the module itself report the output shape
                # (a gateway draining an empty coalescing window hits
                # this path).  Plans require >= 1 row, so this stays eager.
                return module(Tensor(data)).data
            for chunk in iter_microbatches(data, batch_size):
                if cache is not None:
                    # Plan output is a view into the plan's arena; the next
                    # same-geometry chunk overwrites it, so detach now.
                    outputs.append(cache.run(module, chunk).copy())
                else:
                    outputs.append(module(Tensor(chunk)).data)
    if len(outputs) == 1:
        return outputs[0]
    return np.concatenate(outputs, axis=0)
