"""Functional neural-network operations: convolution, pooling, losses.

Convolution uses im2col/col2im so the inner loop is a single matmul — the
standard trick that keeps a NumPy CNN usable at the small image sizes this
reproduction trains on.  All functions take and return
:class:`repro.nn.tensor.Tensor` and participate in autograd.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.dtypes import ensure_float, get_default_dtype
from repro.nn.grad_mode import is_grad_enabled
from repro.nn.tensor import Tensor, as_tensor


# --------------------------------------------------------------------------
# im2col / col2im
# --------------------------------------------------------------------------

def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}")
    return out


#: scratch buffers reused by :func:`im2col` under ``no_grad()``, keyed on
#: the full unfold geometry + dtype.  Bounded: a sweep over many input
#: shapes clears the cache instead of hoarding one buffer pair per shape.
_IM2COL_SCRATCH: dict = {}
_IM2COL_SCRATCH_MAX = 32


def _im2col_scratch(key, cols_shape: Tuple[int, ...],
                    out_shape: Tuple[int, int], dtype) -> Tuple[np.ndarray, np.ndarray]:
    entry = _IM2COL_SCRATCH.get(key)
    if entry is None:
        if len(_IM2COL_SCRATCH) >= _IM2COL_SCRATCH_MAX:
            _IM2COL_SCRATCH.clear()
        entry = (np.empty(cols_shape, dtype=dtype),
                 np.empty(out_shape, dtype=dtype))
        _IM2COL_SCRATCH[key] = entry
    return entry


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> Tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N * out_h * out_w, C * kernel * kernel).

    Under ``no_grad()`` the unfold and output buffers come from a
    shape-keyed scratch cache: the next same-geometry call *reuses* (and
    overwrites) them, eliminating the two large allocations per conv in
    the inference hot loop.  Callers must therefore consume the returned
    array before unfolding the same geometry again — every caller in
    this module reduces it to a fresh array immediately.  With autograd
    on, backward closures retain the columns, so that path always
    allocates fresh buffers.
    """
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel, stride, padding)
    out_w = _conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols_shape = (n, c, kernel, kernel, out_h, out_w)
    reuse = not is_grad_enabled()
    if reuse:
        cols, out = _im2col_scratch(
            (cols_shape, stride, padding, x.dtype.str), cols_shape,
            (n * out_h * out_w, c * kernel * kernel), x.dtype)
    else:
        cols = np.empty(cols_shape, dtype=x.dtype)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = x[:, :, ky:y_end:stride, kx:x_end:stride]
    if reuse:
        # Write the column layout straight into the flat scratch buffer:
        # the reshape view makes the transpose copy land in `out`, where
        # a plain transpose().reshape() would allocate a second array.
        out.reshape(n, out_h, out_w, c, kernel, kernel)[...] = (
            cols.transpose(0, 4, 5, 1, 2, 3))
        return out, out_h, out_w
    # Explicit column count: with a zero-row batch ``reshape(0, -1)``
    # cannot infer the trailing dimension and raises.
    return (cols.transpose(0, 4, 5, 1, 2, 3)
            .reshape(n * out_h * out_w, c * kernel * kernel)), out_h, out_w


def col2im(cols: np.ndarray, x_shape: Tuple[int, ...], kernel: int,
           stride: int, padding: int) -> np.ndarray:
    """Fold column gradients back to the (N, C, H, W) input gradient."""
    n, c, h, w = x_shape
    out_h = _conv_output_size(h, kernel, stride, padding)
    out_w = _conv_output_size(w, kernel, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += cols[:, :, ky, kx, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# --------------------------------------------------------------------------
# Convolution and pooling primitives
# --------------------------------------------------------------------------

def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution: x (N,C,H,W) * weight (F,C,K,K) -> (N,F,H',W')."""
    x, weight = as_tensor(x), as_tensor(weight)
    n, c, h, w = x.data.shape
    f, wc, kh, kw = weight.data.shape
    if wc != c:
        raise ValueError(f"channel mismatch: input {c}, weight {wc}")
    if kh != kw:
        raise ValueError("only square kernels are supported")
    cols, out_h, out_w = im2col(x.data, kh, stride, padding)
    w_flat = weight.data.reshape(f, -1)
    out = cols @ w_flat.T
    if bias is not None:
        out = out + bias.data.reshape(1, f)
    out = out.reshape(n, out_h, out_w, f).transpose(0, 3, 1, 2)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, f)
        weight._accumulate((grad_flat.T @ cols).reshape(weight.data.shape))
        if bias is not None:
            bias._accumulate(grad_flat.sum(axis=0))
        x._accumulate(col2im(grad_flat @ w_flat, x.data.shape, kh, stride, padding))

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over (N, C, H, W) with square windows."""
    x = as_tensor(x)
    stride = kernel if stride is None else stride
    n, c, h, w = x.data.shape
    reshaped = x.data.reshape(n * c, 1, h, w)
    cols, out_h, out_w = im2col(reshaped, kernel, stride, 0)
    argmax = cols.argmax(axis=1)
    out = cols[np.arange(cols.shape[0]), argmax]
    out = out.reshape(n, c, out_h, out_w)

    def backward(grad):
        grad_cols = np.zeros_like(cols)
        grad_cols[np.arange(cols.shape[0]), argmax] = grad.reshape(-1)
        grad_x = col2im(grad_cols, reshaped.shape, kernel, stride, 0)
        x._accumulate(grad_x.reshape(x.data.shape))

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling over (N, C, H, W)."""
    x = as_tensor(x)
    stride = kernel if stride is None else stride
    n, c, h, w = x.data.shape
    reshaped = x.data.reshape(n * c, 1, h, w)
    cols, out_h, out_w = im2col(reshaped, kernel, stride, 0)
    out = cols.mean(axis=1).reshape(n, c, out_h, out_w)

    def backward(grad):
        grad_cols = np.repeat(grad.reshape(-1, 1), kernel * kernel, axis=1)
        grad_cols /= kernel * kernel
        grad_x = col2im(grad_cols, reshaped.shape, kernel, stride, 0)
        x._accumulate(grad_x.reshape(x.data.shape))

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """(N, C, H, W) -> (N, C) by spatial averaging.

    Conv outputs arrive as transposed views; NumPy's pairwise summation
    order depends on memory layout, so reducing the view directly gives a
    layout-dependent rounding.  Under ``no_grad()`` — the inference fast
    path — the input is normalized to C-contiguous first, which makes
    the reduction faster *and* bit-identical to the captured-plan
    executor (:mod:`repro.nn.plan`), whose arena buffers are contiguous.
    The training forward keeps the layout (and therefore the exact
    rounding) it always had.
    """
    x = as_tensor(x)
    if not is_grad_enabled() and not x.data.flags["C_CONTIGUOUS"]:
        x = Tensor(np.ascontiguousarray(x.data))
    return x.mean(axis=(2, 3))


# --------------------------------------------------------------------------
# Softmax family
# --------------------------------------------------------------------------

def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax with a custom gradient."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    softmax_vals = np.exp(out)

    def backward(grad):
        x._accumulate(grad - softmax_vals * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def entropy(probabilities: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Shannon entropy (nats) of a probability distribution.

    This is the confidence signal for the Fig. 7 early-exit policy: a low
    entropy classification on the local device skips the server hop.
    """
    p = np.clip(ensure_float(probabilities), eps, 1.0)
    return -(p * np.log(p)).sum(axis=axis)


# --------------------------------------------------------------------------
# Losses
# --------------------------------------------------------------------------

def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits (N, C) and integer targets (N,)."""
    logits = as_tensor(logits)
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError(f"targets must be 1-D class indices, got shape {targets.shape}")
    n = logits.data.shape[0]
    if targets.shape[0] != n:
        raise ValueError(f"batch mismatch: {n} logits vs {targets.shape[0]} targets")
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(n), targets.astype(int)]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    prediction, target = as_tensor(prediction), as_tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def bce_with_logits(logits: Tensor, targets: Tensor) -> Tensor:
    """Binary cross-entropy on logits, numerically stable."""
    logits, targets = as_tensor(logits), as_tensor(targets)
    t = targets.detach()
    # max(x, 0) - x*t + log(1 + exp(-|x|))
    relu_x = logits.relu()
    abs_x = logits.abs()
    softplus = ((-abs_x).exp() + 1.0).log()
    return (relu_x - logits * t + softplus).mean()


def smooth_l1_loss(prediction: Tensor, target: Tensor, beta: float = 1.0) -> Tensor:
    """Huber-style loss used for YOLO bounding-box regression."""
    prediction, target = as_tensor(prediction), as_tensor(target)
    diff = prediction - target.detach()
    abs_diff = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear = abs_diff - 0.5 * beta
    from repro.nn.tensor import where
    return where(abs_diff.data < beta, quadratic, linear).mean()


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer class indices -> one-hot float matrix."""
    indices = np.asarray(indices, dtype=int)
    if indices.min(initial=0) < 0 or (indices.size and indices.max() >= num_classes):
        raise ValueError("class index out of range")
    out = np.zeros((indices.shape[0], num_classes), dtype=get_default_dtype())
    out[np.arange(indices.shape[0]), indices] = 1.0
    return out


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    predictions = np.asarray(logits.data if isinstance(logits, Tensor) else logits)
    return float((predictions.argmax(axis=-1) == np.asarray(targets)).mean())
