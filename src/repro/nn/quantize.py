"""Post-training int8 quantization for edge-tier inference.

The reconfigurable video-surveillance CPS line of work motivates
shrinking the *edge* half of an early-exit deployment: the local stage
and exit head run on constrained devices and their weights dominate the
deployment payload.  This module implements the standard PTQ recipe:

- **weights**: per-output-channel symmetric int8 (scale = max|W_c|/127,
  zero-point 0) — stored as int8 buffers for payload accounting, with a
  dequantized float copy kept as the live parameter;
- **activations**: per-tensor asymmetric int8 fake-quant, with scale and
  zero-point calibrated from the min/max of a representative batch
  (:func:`quantize_for_inference` records each layer's actual input
  during one calibration forward).

Compute stays in float32 BLAS: NumPy has no int8 GEMM kernel, so an
integer matmul would be *slower* than float — the honest wins on this
backend are the 4x smaller serialized payload (see
:func:`quantized_state_bytes`) and a measured accuracy-parity bound
(:func:`measure_quantization_drop`), not raw speed.  Quantized layers
register plan builders, so a planned deployment fake-quants activations
inside the arena with no extra allocation.

Quantized modules are inference-only: their forward raises if autograd
is recording (training through a fake-quant without a straight-through
estimator would silently compute wrong gradients).
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import plan as plan_mod
from repro.nn.fuse import patch_list_references
from repro.nn.grad_mode import is_grad_enabled
from repro.nn.modules import Conv2d, Linear, Module, Parameter
from repro.nn.tensor import Tensor

INT8_LEVELS = 255
QPARAM_OVERHEAD_BYTES = 16  # serialized scale + zero-point per tensor


def quantize_weight_per_channel(weight: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8: returns (int8 weights, scales).

    Channel c maps through ``w / scale_c`` with ``scale_c = max|W_c| / 127``;
    an all-zero channel gets scale 1 so dequantization is well defined.
    """
    flat = weight.reshape(weight.shape[0], -1)
    amax = np.abs(flat).max(axis=1)
    scale = np.where(amax > 0, amax / 127.0, 1.0)
    view = scale.reshape((-1,) + (1,) * (weight.ndim - 1))
    q = np.clip(np.round(weight / view), -127, 127).astype(np.int8)
    return q, scale


def dequantize_weight(q: np.ndarray, scale: np.ndarray, dtype) -> np.ndarray:
    view = scale.reshape((-1,) + (1,) * (q.ndim - 1))
    return (q * view).astype(dtype)


def calibrate_activation(values: np.ndarray) -> Tuple[float, float]:
    """Asymmetric per-tensor qparams (scale, zero_point) from observed data.

    The range always includes zero (so padding and ReLU zeros map to a
    representable level), split across the 255 usable int8 steps.
    """
    lo = min(float(values.min()), 0.0) if values.size else 0.0
    hi = max(float(values.max()), 0.0) if values.size else 0.0
    scale = (hi - lo) / INT8_LEVELS
    if scale == 0.0:
        return 1.0, 0.0
    zero_point = round(-128.0 - lo / scale)
    return scale, float(np.clip(zero_point, -128, 127))


def fake_quant(values: np.ndarray, scale: float, zero_point: float) -> np.ndarray:
    """Round-trip ``values`` through the int8 grid, staying in float.

    ``clip(round(x / s) + z, -128, 127)`` lands exactly on integer grid
    points in float arithmetic, so this matches a true int8 round-trip
    while keeping the BLAS-friendly dtype.
    """
    q = np.clip(np.round(values / scale) + zero_point, -128, 127)
    return (q - zero_point) * scale


class _QuantizedMixin:
    """Shared int8 state: quantized weight buffers + activation qparams."""

    def _quantize_from(self, layer) -> None:
        weight = layer.weight.data
        q, scale = quantize_weight_per_channel(weight)
        self._buffer_weight_q = q
        self._buffer_weight_scale = scale.astype(np.float32)
        self.weight = Parameter(dequantize_weight(q, scale, weight.dtype))
        self.bias = (Parameter(layer.bias.data.copy())
                     if layer.bias is not None else None)
        self.act_scale = 1.0
        self.act_zero_point = 0.0

    def set_activation_qparams(self, scale: float, zero_point: float) -> None:
        self.act_scale = float(scale)
        self.act_zero_point = float(zero_point)

    def _fake_quant_input(self, x: Tensor) -> Tensor:
        if is_grad_enabled():
            raise RuntimeError(
                f"{type(self).__name__} is inference-only: run it under "
                "no_grad() (fake-quant has no gradient defined)")
        return Tensor(fake_quant(x.data, self.act_scale, self.act_zero_point))


class QuantizedConv2d(_QuantizedMixin, Conv2d):
    """Conv2d with int8 weights and fake-quantized input activations."""

    @classmethod
    def from_float(cls, conv: Conv2d) -> "QuantizedConv2d":
        q = cls.__new__(cls)
        Module.__init__(q)
        q.in_channels = conv.in_channels
        q.out_channels = conv.out_channels
        q.kernel_size = conv.kernel_size
        q.stride = conv.stride
        q.padding = conv.padding
        q._quantize_from(conv)
        return q

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(self._fake_quant_input(x), self.weight, self.bias,
                        stride=self.stride, padding=self.padding)


class QuantizedLinear(_QuantizedMixin, Linear):
    """Linear with int8 weights and fake-quantized input activations."""

    @classmethod
    def from_float(cls, linear: Linear) -> "QuantizedLinear":
        q = cls.__new__(cls)
        Module.__init__(q)
        q.in_features = linear.in_features
        q.out_features = linear.out_features
        q._quantize_from(linear)
        return q

    def forward(self, x: Tensor) -> Tensor:
        out = self._fake_quant_input(x) @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


# -- plan integration --------------------------------------------------------

class _FakeQuantOp(plan_mod._PlanOp):
    """Arena fake-quant, ufunc-for-ufunc identical to :func:`fake_quant`."""

    label = "fake_quant"

    def __init__(self, builder, scale: float, zero_point: float, in_slot: int):
        shape = builder.slots[in_slot].shape
        self._scale = scale
        self._zero_point = zero_point
        self.out_slot = builder.new_slot(shape, builder.slots[in_slot].dtype)
        self.reads = (in_slot,)
        self.writes = (self.out_slot,)
        numel = 1
        for dim in shape:
            numel *= dim
        builder.flops += 4.0 * numel

    def run(self):
        # bind/rebind: inherited single-input default (batch-leading).
        out = self._out
        np.divide(self._x, self._scale, out=out)
        np.round(out, out=out)
        out += self._zero_point
        np.clip(out, -128, 127, out=out)
        out -= self._zero_point
        out *= self._scale


@plan_mod.plan_builder(QuantizedConv2d)
def _build_quantized_conv(builder, module, in_slot):
    op = _FakeQuantOp(builder, module.act_scale, module.act_zero_point, in_slot)
    builder.add_op(op)
    return plan_mod._build_conv(builder, module, op.out_slot)


@plan_mod.plan_builder(QuantizedLinear)
def _build_quantized_linear(builder, module, in_slot):
    op = _FakeQuantOp(builder, module.act_scale, module.act_zero_point, in_slot)
    builder.add_op(op)
    return plan_mod._build_linear(builder, module, op.out_slot)


# -- whole-module quantization ----------------------------------------------

def _record_layer_inputs(module: Module, targets: List[Module],
                         calibration: np.ndarray) -> Dict[int, Tuple[float, float]]:
    """One eval forward of ``calibration``, capturing each target's input."""
    observed: Dict[int, Tuple[float, float]] = {}
    patched = []

    def recorder_for(layer: Module) -> Callable:
        forward = type(layer).forward

        def recorder(x, *args, **kwargs):
            data = x.data if isinstance(x, Tensor) else np.asarray(x)
            lo, hi = observed.get(id(layer), (np.inf, -np.inf))
            if data.size:
                observed[id(layer)] = (min(lo, float(data.min())),
                                       max(hi, float(data.max())))
            return forward(layer, x, *args, **kwargs)

        return recorder

    from repro.nn.grad_mode import no_grad
    from repro.nn.inference import eval_mode
    try:
        for layer in targets:
            recorder = recorder_for(layer)
            object.__setattr__(layer, "forward", recorder)
            patched.append(layer)
        with eval_mode(module), no_grad():
            module(Tensor(calibration))
    finally:
        for layer in patched:
            if "forward" in layer.__dict__:
                del layer.__dict__["forward"]
    qparams = {}
    for layer in targets:
        lo, hi = observed.get(id(layer), (0.0, 0.0))
        span = np.array([lo, hi]) if np.isfinite(lo) else np.array([0.0])
        qparams[id(layer)] = calibrate_activation(span)
    return qparams


def quantize_for_inference(module: Module, calibration: np.ndarray) -> Module:
    """Return a deep copy of ``module`` with conv/dense layers int8-quantized.

    ``calibration`` is a representative input batch; it is run through the
    copy once (eval mode, no grad) to calibrate per-layer activation
    ranges.  Fuse *before* quantizing — a folded graph has no BatchNorm
    between a layer and its activation observer.  The copy carries
    ``quantized_layers`` (count) for telemetry.
    """
    calibration = np.asarray(calibration)
    if calibration.ndim < 2 or calibration.shape[0] < 1:
        raise ValueError("calibration needs a batch with >= 1 row")
    if isinstance(module, (Conv2d, Linear)):
        raise ValueError(
            "quantize_for_inference needs a container module; wrap a bare "
            "layer in Sequential")
    quantized = copy.deepcopy(module)
    targets = [m for m in quantized.modules()
               if isinstance(m, (Conv2d, Linear))
               and not isinstance(m, _QuantizedMixin)]
    qparams = _record_layer_inputs(quantized, targets, calibration)
    replaced: Dict[int, Module] = {}
    for parent in list(quantized.modules()):
        for name, child in list(parent._modules.items()):
            if id(child) not in qparams:
                continue
            maker = (QuantizedConv2d if isinstance(child, Conv2d)
                     else QuantizedLinear)
            qlayer = maker.from_float(child)
            qlayer.set_activation_qparams(*qparams[id(child)])
            setattr(parent, name, qlayer)
            replaced[id(child)] = qlayer
    patch_list_references(quantized, replaced)
    quantized.eval()
    quantized.quantized_layers = len(replaced)
    return quantized


def quantized_state_bytes(module: Module) -> int:
    """Serialized size of the module's weights in int8 transport form.

    Quantized layers ship int8 weights + per-channel scales + activation
    qparams; everything else (biases, unquantized parameters, buffers
    that are not the float shadow of an int8 tensor) ships at its native
    width.  Compare with the float ``payload_bytes`` a
    :class:`~repro.fog.deployment.TwoTierDeployment` reports to get the
    edge-tier savings.
    """
    total = 0
    for sub in module.modules():
        if isinstance(sub, _QuantizedMixin):
            total += sub._buffer_weight_q.nbytes
            total += sub._buffer_weight_scale.nbytes
            total += QPARAM_OVERHEAD_BYTES
            if sub.bias is not None:
                total += sub.bias.data.nbytes
        else:
            for param in sub._parameters.values():
                total += param.data.nbytes
            for name, value in sub.__dict__.items():
                if name.startswith("_buffer_") and isinstance(value, np.ndarray):
                    total += value.nbytes
    return total


def measure_quantization_drop(model: Module, quantized: Module,
                              inputs: np.ndarray, targets: np.ndarray,
                              forward: Optional[Callable] = None) -> Dict[str, float]:
    """Accuracy of float vs quantized on held-out data, and the drop.

    ``forward`` maps (module, inputs) -> logits array; defaults to the
    batched inference fast path.  Returns ``{"float_accuracy",
    "quantized_accuracy", "drop", "agreement"}`` — ``agreement`` is the
    fraction of samples where both models predict the same class, the
    parity bound the edge tier is gated on.
    """
    from repro.nn.inference import batched_forward
    run = forward or (lambda module, x: batched_forward(module, x))
    targets = np.asarray(targets)
    float_logits = np.asarray(run(model, inputs))
    quant_logits = np.asarray(run(quantized, inputs))
    float_pred = float_logits.argmax(axis=-1)
    quant_pred = quant_logits.argmax(axis=-1)
    float_acc = float((float_pred == targets).mean())
    quant_acc = float((quant_pred == targets).mean())
    return {
        "float_accuracy": float_acc,
        "quantized_accuracy": quant_acc,
        "drop": float_acc - quant_acc,
        "agreement": float((float_pred == quant_pred).mean()),
    }
