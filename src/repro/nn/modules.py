"""Layer/module system: the ``repro.nn`` equivalent of ``tf.keras`` layers.

A :class:`Module` owns :class:`Parameter` tensors and child modules, exposes
``parameters()`` / ``state_dict()`` / ``load_state_dict()`` and a train/eval
mode switch (needed by batch-norm and dropout).  Every layer family used by
the paper's models is here: dense, convolution, batch-norm, pooling, dropout,
LSTM, and ``Sequential`` composition.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.dtypes import get_default_dtype
from repro.nn.tensor import Tensor, concatenate, stack
from repro.runtime.rng import resolve_rng


class Parameter(Tensor):
    """A tensor registered as trainable state of a module."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- attribute registration ------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- mode ----------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # -- state ---------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, module in self._named_buffers():
            state[name] = module.copy()
        return state

    def _named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, value in self.__dict__.items():
            if name.startswith("_buffer_"):
                yield prefix + name[len("_buffer_"):], value
        for name, module in self._modules.items():
            yield from module._named_buffers(prefix + name + ".")

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        buffers = {name: (holder, attr) for name, holder, attr in self._buffer_holders()}
        for name, value in state.items():
            if name in own:
                if own[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{own[name].data.shape} vs {value.shape}")
                own[name].data = value.copy()
            elif name in buffers:
                holder, attr = buffers[name]
                setattr(holder, "_buffer_" + attr, value.copy())
            else:
                raise KeyError(f"unexpected key in state_dict: {name}")
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"missing keys in state_dict: {sorted(missing)}")

    def _buffer_holders(self, prefix: str = ""):
        for name in self.__dict__:
            if name.startswith("_buffer_"):
                yield prefix + name[len("_buffer_"):], self, name[len("_buffer_"):]
        for name, module in self._modules.items():
            yield from module._buffer_holders(prefix + name + ".")

    def astype(self, dtype) -> "Module":
        """Cast every parameter and buffer in-place to ``dtype``.

        Used by the inference fast path to turn a trained float64 module
        into a float32 deployment copy; gradients are dropped because a
        cast module is not meant to be trained further.  Non-float state
        (e.g. the int8 weight buffers of a quantized layer) is left
        untouched — casting it to float would destroy the quantization.
        """
        resolved = np.dtype(dtype)
        for module in self.modules():
            for param in module._parameters.values():
                if np.issubdtype(param.data.dtype, np.floating):
                    param.data = param.data.astype(resolved, copy=False)
                param.grad = None
            for name, value in list(module.__dict__.items()):
                if (name.startswith("_buffer_") and isinstance(value, np.ndarray)
                        and np.issubdtype(value.dtype, np.floating)):
                    object.__setattr__(
                        module, name, value.astype(resolved, copy=False))
        return self

    # -- call ------------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Identity(Module):
    """Pass-through module (what a folded BatchNorm collapses into)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Fully-connected layer: y = x @ W.T + b."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.modules.linear")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution layer over (N, C, H, W) inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.modules.conv2d")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(init.kaiming_uniform(
            (out_channels, in_channels, kernel_size, kernel_size), rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of (N, C, H, W)."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self._buffer_running_mean = init.zeros((num_features,))
        self._buffer_running_var = init.ones((num_features,))

    def forward(self, x: Tensor) -> Tensor:
        axes = (0, 2, 3) if x.ndim == 4 else (0,)
        view = (1, -1, 1, 1) if x.ndim == 4 else (1, -1)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            self._buffer_running_mean = (
                (1 - self.momentum) * self._buffer_running_mean
                + self.momentum * mean.data.reshape(-1))
            self._buffer_running_var = (
                (1 - self.momentum) * self._buffer_running_var
                + self.momentum * var.data.reshape(-1))
        else:
            mean = Tensor(self._buffer_running_mean.reshape(view))
            var = Tensor(self._buffer_running_var.reshape(view))
        normalized = (x - mean) / ((var + self.eps) ** 0.5)
        return normalized * self.gamma.reshape(view) + self.beta.reshape(view)


class BatchNorm1d(BatchNorm2d):
    """Batch normalization over (N, F) inputs."""


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self._rng = resolve_rng(rng, "nn.modules.dropout")

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask.astype(x.data.dtype, copy=False))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.1):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Sequential(Module):
    """Compose modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)


class LSTMCell(Module):
    """Single LSTM cell with the standard four-gate parameterization."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.modules.lstm_cell")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((4 * hidden_size, input_size), rng))
        self.weight_hh = Parameter(init.xavier_uniform((4 * hidden_size, hidden_size), rng))
        bias = init.zeros((4 * hidden_size,))
        bias[hidden_size:2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.weight_ih.T + h_prev @ self.weight_hh.T + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs:1 * hs].sigmoid()
        f = gates[:, 1 * hs:2 * hs].sigmoid()
        g = gates[:, 2 * hs:3 * hs].tanh()
        o = gates[:, 3 * hs:4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size),
                         dtype=self.weight_ih.data.dtype)
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Multi-layer LSTM over (N, T, F) sequences.

    Returns the full hidden sequence of the top layer, shape (N, T, H).
    This is the RNN module family of Sec. III-B.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1: {num_layers}")
        rng = resolve_rng(rng, "nn.modules.lstm")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = []
        for layer in range(num_layers):
            cell = LSTMCell(input_size if layer == 0 else hidden_size,
                            hidden_size, rng=rng)
            setattr(self, f"cell{layer}", cell)
            self.cells.append(cell)

    def forward(self, x: Tensor) -> Tensor:
        batch, steps, _ = x.shape
        layer_input = [x[:, t, :] for t in range(steps)]
        for cell in self.cells:
            h, c = cell.initial_state(batch)
            outputs = []
            for step_input in layer_input:
                h, c = cell(step_input, (h, c))
                outputs.append(h)
            layer_input = outputs
        return stack(layer_input, axis=1)

    def last_hidden(self, x: Tensor) -> Tensor:
        """Convenience: hidden state at the final time step, shape (N, H)."""
        sequence = self.forward(x)
        return sequence[:, sequence.shape[1] - 1, :]


class Embedding(Module):
    """Token-id -> dense vector lookup table (for the NLP pipeline)."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng, "nn.modules.embedding")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0, 0.1, (num_embeddings, embedding_dim))
                                .astype(get_default_dtype(), copy=False))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=int)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise ValueError("embedding index out of range")
        return self.weight[indices]
