"""Static FLOP estimation for modules.

The fog placement policy (Sec. II-B-1) decides which layers run on which
tier by comparing layer cost to tier compute rates.  This module estimates
multiply-accumulate counts per layer for a given input shape, mirroring the
standard conventions (2 FLOPs per MAC).
"""

from __future__ import annotations

from typing import Tuple

from repro.nn import modules as M


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def estimate_flops(module: M.Module, input_shape: Tuple[int, ...]) -> Tuple[float, Tuple[int, ...]]:
    """Estimate FLOPs for one forward pass and return (flops, output_shape).

    ``input_shape`` excludes the batch dimension: (C, H, W) for conv stacks
    or (F,) for dense layers.  Composite modules recurse over children in
    the order :class:`repro.nn.modules.Sequential` applies them.

    A captured :class:`repro.nn.plan.InferencePlan` is also accepted: the
    plan compiler already summed per-op FLOPs over its exact geometry
    (including what actually executes — eval-mode Dropout compiles to
    nothing, fused models have no BatchNorm passes left), so the plan is
    the ground truth the static estimate is checked against in tests.
    """
    if hasattr(module, "flops_per_item") and hasattr(module, "sample_shape"):
        if tuple(input_shape) != tuple(module.sample_shape):
            raise ValueError(
                f"plan was captured for {tuple(module.sample_shape)} samples, "
                f"asked about {tuple(input_shape)}")
        return module.flops_per_item, tuple(module.output_shape[1:])
    if isinstance(module, M.Sequential):
        total = 0.0
        shape = input_shape
        for layer in module:
            flops, shape = estimate_flops(layer, shape)
            total += flops
        return total, shape
    if isinstance(module, M.Conv2d):
        c, h, w = input_shape
        out_h = _conv_out(h, module.kernel_size, module.stride, module.padding)
        out_w = _conv_out(w, module.kernel_size, module.stride, module.padding)
        macs = (module.out_channels * out_h * out_w
                * c * module.kernel_size * module.kernel_size)
        return 2.0 * macs, (module.out_channels, out_h, out_w)
    if isinstance(module, M.Linear):
        flattened = 1
        for dim in input_shape:
            flattened *= dim
        if flattened != module.in_features:
            raise ValueError(
                f"linear layer expects {module.in_features} features, "
                f"input shape {input_shape} provides {flattened}")
        return 2.0 * module.in_features * module.out_features, (module.out_features,)
    if isinstance(module, (M.MaxPool2d, M.AvgPool2d)):
        c, h, w = input_shape
        stride = module.stride or module.kernel_size
        out_h = _conv_out(h, module.kernel_size, stride, 0)
        out_w = _conv_out(w, module.kernel_size, stride, 0)
        return float(c * out_h * out_w * module.kernel_size ** 2), (c, out_h, out_w)
    if isinstance(module, M.GlobalAvgPool2d):
        c, h, w = input_shape
        return float(c * h * w), (c,)
    if isinstance(module, M.BatchNorm2d):
        numel = 1
        for dim in input_shape:
            numel *= dim
        return 4.0 * numel, input_shape
    if isinstance(module, M.Identity):
        return 0.0, input_shape
    if isinstance(module, M.Flatten):
        flattened = 1
        for dim in input_shape:
            flattened *= dim
        return 0.0, (flattened,)
    if isinstance(module, M.Dropout):
        # Inference-time identity: placement decisions price the serving
        # forward, where dropout executes nothing.  (It used to be counted
        # like an activation — an over-report pinned by regression test.)
        return 0.0, input_shape
    if isinstance(module, (M.ReLU, M.LeakyReLU, M.Tanh, M.Sigmoid)):
        numel = 1
        for dim in input_shape:
            numel *= dim
        return float(numel), input_shape
    if isinstance(module, M.LSTM):
        steps = input_shape[0] if len(input_shape) == 2 else 1
        feature = input_shape[-1]
        total = 0.0
        in_size = feature
        for _ in range(module.num_layers):
            gate_macs = 4 * module.hidden_size * (in_size + module.hidden_size)
            total += 2.0 * gate_macs * steps
            in_size = module.hidden_size
        return total, (steps, module.hidden_size)
    if hasattr(module, "estimate_flops"):
        return module.estimate_flops(input_shape)
    # Composite user modules: sum over registered children, shape unchanged
    # only if the module declares it; otherwise we cannot infer — fail loudly.
    raise TypeError(f"cannot estimate FLOPs for {type(module).__name__}")


def activation_size_bytes(shape: Tuple[int, ...], dtype_bytes: int = 4) -> int:
    """Bytes of an activation of ``shape`` (per sample) at fp32 transport.

    Used to price sending a feature map upstream (Fig. 5) versus sending the
    raw frame.
    """
    numel = 1
    for dim in shape:
        numel *= dim
    return numel * dtype_bytes
