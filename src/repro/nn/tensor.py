"""Reverse-mode automatic differentiation over NumPy arrays.

This is the foundation of ``repro.nn``, the paper's TensorFlow substitute
(Sec. II-C-1).  A :class:`Tensor` wraps a ``numpy.ndarray`` and records the
operations applied to it; :meth:`Tensor.backward` walks the recorded graph in
reverse topological order accumulating gradients.

Only the operations needed by the paper's model families (CNN / ResNet /
Inception / LSTM / YOLO / autoencoders) are implemented, each with full
broadcasting support where NumPy broadcasts.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.dtypes import get_default_dtype
from repro.nn.grad_mode import is_grad_enabled

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An array with an optional gradient and an autograd tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if dtype is not None:
            array = array.astype(np.dtype(dtype), copy=False)
        elif not (array.dtype.kind == "f" and array.dtype.itemsize >= 4):
            # Ints, bools, lists, float16: promote under the dtype policy.
            # float32/float64 inputs keep their own precision.
            array = array.astype(get_default_dtype())
        self.data = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # -- basic introspection -------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a tensor with exactly one element, "
                f"got shape {self.data.shape} ({self.data.size} elements)")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """A detached copy cast to ``dtype`` (no-op copy avoided)."""
        return Tensor(self.data.astype(np.dtype(dtype), copy=False),
                      requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # -- pickling -------------------------------------------------------------
    def __getstate__(self):
        """Pickle data/grad/flags only: backward closures capture arbitrary
        context (activations, other tensors) and cannot cross a process
        boundary, so a round-trip detaches from the autograd graph while
        preserving values, dtype, accumulated gradient and name."""
        return {"data": self.data, "grad": self.grad,
                "requires_grad": self.requires_grad, "name": self.name}

    def __setstate__(self, state) -> None:
        self.data = state["data"]
        self.grad = state["grad"]
        self.requires_grad = state["requires_grad"]
        self.name = state["name"]
        self._backward = None
        self._parents = ()

    # -- graph construction ---------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        # Under no_grad() the closure and parent tuple are never attached:
        # no graph is retained and intermediate activations die immediately.
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(
            np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise ValueError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar output")
            grad = np.ones_like(self.data)
        # Topological order via iterative DFS.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other, like=self)

        def backward(grad):
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other, like=self))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other, like=self) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other, like=self)

        def backward(grad):
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other, like=self)

        def backward(grad):
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other, like=self) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other, like=self)

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
            elif a.ndim == 1:
                self._accumulate(grad @ np.swapaxes(b, -1, -2))
                other._accumulate(np.outer(a, grad))
            elif b.ndim == 1:
                self._accumulate(np.outer(grad, b) if a.ndim == 2
                                 else grad[..., None] * b)
                other._accumulate(_unbroadcast(
                    (np.swapaxes(a, -1, -2) @ grad[..., None])[..., 0], b.shape))
            else:
                self._accumulate(grad @ np.swapaxes(b, -1, -2))
                other._accumulate(np.swapaxes(a, -1, -2) @ grad)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # -- comparisons (no gradient) ---------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < as_tensor(other).data

    # -- elementwise nonlinearities ---------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad):
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.1) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(
            self.data.dtype, copy=False)

        def backward(grad):
            self._accumulate(grad * scale)

        return Tensor._make(self.data * scale, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad):
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # -- reductions ---------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is None:
                mask = (self.data == self.data.max())
                self._accumulate(g * mask / mask.sum())
            else:
                expanded = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded).astype(self.data.dtype)
                mask /= mask.sum(axis=axis, keepdims=True)
                if not keepdims:
                    g = np.expand_dims(g, axis)
                self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward)

    # -- shape manipulation ----------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(grad):
            self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(grad):
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding < 0:
            raise ValueError(f"negative padding: {padding}")
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [(padding, padding)] * 2
        out_data = np.pad(self.data, pad_width)
        sl = (Ellipsis, slice(padding, -padding), slice(padding, -padding))

        def backward(grad):
            self._accumulate(grad[sl])

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value: ArrayLike, like: Optional[Tensor] = None) -> Tensor:
    """Coerce to :class:`Tensor` without copying when already one.

    With ``like`` given, bare Python/NumPy scalars adopt the companion
    tensor's dtype — under NumPy's promotion rules a 0-d float64 operand
    would otherwise silently upcast a float32 array, defeating the dtype
    policy on expressions like ``x * (1.0 / n)``.
    """
    if isinstance(value, Tensor):
        return value
    if like is not None and np.ndim(value) == 0:
        return Tensor(value, dtype=like.data.dtype)
    return Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        for i, tensor in enumerate(tensors):
            index = [slice(None)] * grad.ndim
            index[axis] = i
            tensor._accumulate(grad[tuple(index)])

    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select with gradients flowing to both branches."""
    a, b = as_tensor(a), as_tensor(b)
    condition = np.asarray(condition, dtype=bool)

    def backward(grad):
        a._accumulate(grad * condition)
        b._accumulate(grad * ~condition)

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)


def zeros(*shape, requires_grad: bool = False, dtype=None) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype or get_default_dtype()),
                  requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False, dtype=None) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype or get_default_dtype()),
                  requires_grad=requires_grad)
