"""Module-level autograd mode: the switch behind the inference fast path.

Training wants every op to record a backward closure and to pin its parent
activations alive; inference wants neither.  :class:`no_grad` flips a
module-level flag that :meth:`repro.nn.tensor.Tensor._make` consults before
wiring an op into the autograd graph — inside the context, ops compute
their forward value and nothing else, so intermediate activations are freed
as soon as NumPy is done with them and no closure objects are allocated on
the hot path.

The flag is process-global (matching the single-threaded execution model of
this reproduction) and exception-safe: both context managers restore the
previous mode on exit no matter how the block terminates.
"""

from __future__ import annotations

import functools

_grad_enabled = True


def is_grad_enabled() -> bool:
    """True while ops should record backward closures."""
    return _grad_enabled


def set_grad_enabled(enabled: bool) -> bool:
    """Set the grad mode; returns the previous mode."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = bool(enabled)
    return previous


class _GradMode:
    """Context manager / decorator that pins grad mode for a block."""

    _target = True

    def __init__(self):
        self._previous = None

    def __enter__(self) -> "_GradMode":
        self._previous = set_grad_enabled(self._target)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        set_grad_enabled(self._previous)

    def __call__(self, fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with type(self)():
                return fn(*args, **kwargs)
        return wrapper


class no_grad(_GradMode):
    """Disable autograd recording for a block (or decorated function).

    ::

        with nn.no_grad():
            logits = model(Tensor(frames))   # no closures, no retained graph
    """

    _target = False


class enable_grad(_GradMode):
    """Re-enable autograd inside an outer :class:`no_grad` block."""

    _target = True
