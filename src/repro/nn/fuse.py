"""Graph folding for deployment: collapse BatchNorm into conv/dense weights.

In eval mode a BatchNorm layer is an affine map with frozen statistics::

    y = gamma * (x - running_mean) / sqrt(running_var + eps) + beta

When ``x`` is the output of a Conv2d or Linear layer, that affine map can
be folded into the layer's own weights once, ahead of deployment::

    scale = gamma / sqrt(running_var + eps)
    W'    = W * scale            (per output channel)
    b'    = (b - running_mean) * scale + beta

so the fused stage does one matmul instead of a matmul plus four
broadcasted elementwise passes over the activation.  This is what
:mod:`repro.fog.deployment` ships to each tier when the fast path is on.

Pair discovery uses child registration order: a BatchNorm is folded into
the Conv2d/Linear registered immediately before it in the same parent
(``conv1``/``bn1``, ``stem``/``stem_bn``, sequential stacks...), which is
how every model family in :mod:`repro.nn.models` lays its layers out.  The
original module is never touched — callers get a fused deep copy, already
in eval mode.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional

import numpy as np

from repro.nn.modules import (
    BatchNorm2d,
    Conv2d,
    Identity,
    Linear,
    Module,
    Parameter,
)


def _out_features(layer: Module) -> Optional[int]:
    if isinstance(layer, Conv2d):
        return layer.out_channels
    if isinstance(layer, Linear):
        return layer.out_features
    return None


def _fold_pair(layer: Module, bn: BatchNorm2d) -> None:
    """Fold ``bn``'s eval-mode affine map into ``layer``'s weights in place."""
    scale = bn.gamma.data / np.sqrt(bn._buffer_running_var + bn.eps)
    shift = bn.beta.data - bn._buffer_running_mean * scale
    weight = layer.weight.data
    if weight.ndim == 4:
        layer.weight.data = weight * scale[:, None, None, None]
    else:
        layer.weight.data = weight * scale[:, None]
    if layer.bias is None:
        layer.bias = Parameter(shift)
    else:
        layer.bias.data = layer.bias.data * scale + shift


def _fold_tree(module: Module, replaced: Dict[int, Module]) -> int:
    """Fold every conv/dense + BN sibling pair under ``module``; recurse."""
    fused = 0
    children = list(module._modules.items())
    for (_, prev), (name, child) in zip(children, children[1:]):
        if (isinstance(child, BatchNorm2d)
                and _out_features(prev) == child.num_features):
            _fold_pair(prev, child)
            identity = Identity()
            setattr(module, name, identity)
            replaced[id(child)] = identity
            fused += 1
    for child in module._modules.values():
        if not isinstance(child, Identity):
            fused += _fold_tree(child, replaced)
    return fused


def patch_list_references(root: Module, replaced: Dict[int, Module]) -> None:
    """Swap replaced modules inside plain-list attributes.

    Containers like ``Sequential.layers`` and ``SmallResNet.blocks`` keep a
    Python list of children alongside the registered attributes; forward()
    iterates the list, so it must point at the stand-ins too.  Shared with
    :mod:`repro.nn.quantize`, which swaps layers for their int8 versions
    the same way fusion swaps BatchNorm for Identity.
    """
    for module in root.modules():
        for value in module.__dict__.values():
            if isinstance(value, list):
                for index, item in enumerate(value):
                    if id(item) in replaced:
                        value[index] = replaced[id(item)]


#: backwards-compatible private alias (pre-quantization callers).
_patch_list_references = patch_list_references


def fuse_for_inference(module: Module, dtype=None) -> Module:
    """Return a deployment copy of ``module`` with BatchNorm folded away.

    The copy is in eval mode (fusion bakes in the *running* statistics, so
    it matches the eval-mode forward of the original, not a training-mode
    one), optionally cast to ``dtype`` (typically ``np.float32``), and
    carries the number of folded layers as ``fused_layers``.
    """
    fused = copy.deepcopy(module)
    replaced: Dict[int, Module] = {}
    count = _fold_tree(fused, replaced)
    patch_list_references(fused, replaced)
    if dtype is not None:
        fused.astype(dtype)
    fused.eval()
    fused.fused_layers = count
    return fused
