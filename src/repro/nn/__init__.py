"""From-scratch NumPy deep-learning framework (the paper's TensorFlow role).

Subpackages:

- :mod:`repro.nn.tensor` — reverse-mode autograd over NumPy arrays.
- :mod:`repro.nn.modules` — layers: Linear, Conv2d, BatchNorm, LSTM, ...
- :mod:`repro.nn.functional` — conv/pool primitives, softmax family, losses.
- :mod:`repro.nn.optim` — SGD, Adam, schedulers.
- :mod:`repro.nn.models` — the paper's model families (CNN, ResNet with the
  Fig. 8 conv-shortcut block, Inception, LSTM classifiers, YOLO-style
  detectors with the Fig. 5 early-exit split, autoencoders, CCA).
- :mod:`repro.nn.flops` — static FLOP estimation for fog placement.
"""

from repro.nn.tensor import Tensor, as_tensor, concatenate, stack, where, zeros, ones
from repro.nn import functional
from repro.nn.dtypes import (
    default_dtype,
    ensure_float,
    get_default_dtype,
    set_default_dtype,
)
from repro.nn.grad_mode import (
    enable_grad,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)
from repro.nn.modules import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    LSTM,
    LSTMCell,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.fuse import fuse_for_inference
from repro.nn.inference import (
    batched_forward,
    eval_mode,
    iter_microbatches,
    observe_inference,
)
from repro.nn.optim import SGD, Adam, Optimizer, StepLR
from repro.nn.data import ArrayDataset, DataLoader, DataParallelTrainer, evaluate, train_epoch
from repro.nn.serialization import (
    load_state,
    save_state,
    state_from_bytes,
    state_size_bytes,
    state_to_bytes,
)
from repro.nn.flops import activation_size_bytes, estimate_flops
from repro.nn.plan import InferencePlan, PlanCache, PlanError, capture_plan
from repro.nn.quantize import (
    QuantizedConv2d,
    QuantizedLinear,
    measure_quantization_drop,
    quantize_for_inference,
    quantized_state_bytes,
)
from repro.nn.distributed import AsyncWorker, ParameterServer, ParameterServerTrainer

__all__ = [
    "Tensor", "as_tensor", "concatenate", "stack", "where", "zeros", "ones",
    "functional",
    "no_grad", "enable_grad", "is_grad_enabled", "set_grad_enabled",
    "default_dtype", "get_default_dtype", "set_default_dtype", "ensure_float",
    "fuse_for_inference",
    "batched_forward", "eval_mode", "iter_microbatches", "observe_inference",
    "Module", "Parameter", "Sequential", "Linear", "Conv2d", "BatchNorm2d",
    "BatchNorm1d", "Dropout", "ReLU", "LeakyReLU", "Tanh", "Sigmoid",
    "Identity", "Flatten", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "LSTM",
    "LSTMCell", "Embedding",
    "Optimizer", "SGD", "Adam", "StepLR",
    "ArrayDataset", "DataLoader", "DataParallelTrainer", "train_epoch", "evaluate",
    "save_state", "load_state", "state_to_bytes", "state_from_bytes",
    "state_size_bytes",
    "estimate_flops", "activation_size_bytes",
    "capture_plan", "InferencePlan", "PlanCache", "PlanError",
    "QuantizedConv2d", "QuantizedLinear", "quantize_for_inference",
    "quantized_state_bytes", "measure_quantization_drop",
    "ParameterServer", "AsyncWorker", "ParameterServerTrainer",
]
